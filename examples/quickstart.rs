//! Quickstart: run one kernel both ways — natively on your machine and on
//! a simulated RISC-V board — and compare the optimization ladder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use membound::core::{
    experiment, transpose_native, SquareMatrix, TransposeConfig, TransposeVariant,
};
use membound::parallel::Pool;
use membound::sim::Device;

fn main() {
    let n = 1024;
    let cfg = TransposeConfig::new(n);
    let pool = Pool::host();

    println!("== membound quickstart ==");
    println!(
        "kernel: in-place transposition of a {n} x {n} f64 matrix ({} MiB)\n",
        cfg.matrix_bytes() >> 20
    );

    // 1. Natively, on this machine.
    println!("native, on this host ({} threads):", pool.threads());
    let mut naive_native = 0.0;
    for variant in TransposeVariant::all() {
        let mut m = SquareMatrix::indexed(n);
        let t = transpose_native(&mut m, variant, cfg, &pool).as_secs_f64();
        if variant == TransposeVariant::Naive {
            naive_native = t;
        }
        println!(
            "  {:16} {:>9.2} ms   speedup x{:.1}",
            variant.label(),
            t * 1e3,
            naive_native / t
        );
    }

    // 2. Simulated, on the Mango Pi MQ-Pro model (XuanTie C906).
    let device = Device::MangoPiMqPro;
    println!("\nsimulated, on the {device} model:");
    let mut naive_sim = 0.0;
    for variant in TransposeVariant::all() {
        let report = experiment::simulate_transpose(&device.spec(), variant, cfg)
            .expect("a 1024x1024 matrix fits in 1 GB");
        if variant == TransposeVariant::Naive {
            naive_sim = report.seconds;
        }
        println!(
            "  {:16} {:>9.2} ms   speedup x{:.1}   bottleneck: {}",
            variant.label(),
            report.seconds * 1e3,
            naive_sim / report.seconds,
            report.phases[0].bottleneck
        );
    }

    println!(
        "\nThe ladder's *shape* transfers: the same memory optimizations that\n\
         help your host help the simulated RISC-V board — the paper's central\n\
         observation."
    );
}
