//! Reuse-distance analysis of the transposition ladder: *why* blocking
//! works, shown without running any simulator at all.
//!
//! Each variant's traced reference stream is fed to a stack-distance
//! histogram; the classic theorem says a fully associative LRU cache of
//! capacity C misses exactly the accesses whose reuse distance is ≥ C.
//! The blocked variants compress the naive column walk's huge distances
//! into block-sized ones — visible here as miss counts at each device's
//! L1 capacity, before any cache model runs.
//!
//! ```sh
//! cargo run --release --example reuse_analysis
//! ```

use membound::core::{TransposeConfig, TransposeTrace, TransposeVariant};
use membound::trace::reuse::ReuseHistogram;
use membound::trace::{MemAccess, TraceSink};

/// A sink that feeds every reference straight into the histogram.
struct HistSink(ReuseHistogram);

impl TraceSink for HistSink {
    fn access(&mut self, access: MemAccess) {
        self.0.record(access.addr);
    }
}

fn main() {
    let n = 512;
    let cfg = TransposeConfig::with_block(n, 32);
    let trace = TransposeTrace::new(cfg);
    println!(
        "== reuse-distance analysis: transpose {n} x {n}, block {} ==\n",
        cfg.block
    );
    println!(
        "{:16} {:>10} {:>12} {:>14} {:>14}",
        "variant", "accesses", "cold misses", "misses @ 512L", "misses @ 32KiB"
    );
    // 512 lines = the paper's 32 KiB L1s; also show a tiny 512-line cache.
    for variant in TransposeVariant::all() {
        let mut sink = HistSink(ReuseHistogram::new(64));
        trace.trace_outer(variant, &mut sink, 0, 0, trace.outer_iterations(variant));
        let h = sink.0;
        println!(
            "{:16} {:>10} {:>12} {:>14} {:>14}",
            variant.label(),
            h.accesses(),
            h.cold_misses(),
            h.misses_for_capacity(512),
            h.misses_for_capacity(32 * 1024 / 64),
        );
    }
    println!(
        "\nreading: the element-wise variants re-touch column lines at\n\
         distances far beyond any L1 (misses >> cold), while the blocked\n\
         variants' distances collapse to the block working set — their miss\n\
         count approaches the compulsory (cold) floor. This is the paper's\n\
         §4.2 effect derived purely from the access pattern."
    );
}
