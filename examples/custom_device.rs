//! Model your own device: build a hypothetical "next-generation RISC-V"
//! board — the C906 upgraded with an L2 cache, a wider pipeline and faster
//! DRAM — and ask whether it would close the gap to the Raspberry Pi 4 on
//! the paper's kernels.
//!
//! This is the forward-looking question the paper's conclusion poses
//! ("the prospects look quite real"); the simulator lets us quantify it.
//!
//! ```sh
//! cargo run --release --example custom_device
//! ```

use membound::core::{
    experiment::{simulate_blur, simulate_transpose},
    BlurConfig, BlurVariant, TransposeConfig, TransposeVariant,
};
use membound::sim::{
    CacheConfig, CoreConfig, Device, DeviceSpec, DramConfig, PageWalk, PrefetcherConfig,
    ReplacementPolicy, TlbConfig,
};

/// A plausible next-generation successor to the Allwinner D1: dual-issue,
/// quad-core, with a shared L2 and twice the DRAM bandwidth.
fn next_gen_riscv() -> DeviceSpec {
    let freq = 1.5;
    DeviceSpec {
        name: "Hypothetical next-gen RISC-V SBC".into(),
        isa: "RV64GCV".into(),
        cores: 4,
        core: CoreConfig::new("next-gen core", freq, 2, 0, 4.0),
        caches: vec![
            CacheConfig::new("L1D", 32 * 1024, 4, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(3)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L2", 1024 * 1024, 16, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(18)
                .bytes_per_cycle(16.0)
                .shared(),
        ],
        prefetchers: vec![PrefetcherConfig::stream(8), PrefetcherConfig::None],
        dtlb: TlbConfig::fully_associative("DTLB", 32),
        l2tlb: Some(TlbConfig::set_associative("L2 TLB", 512, 4).latency(7)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 30,
        },
        dram: DramConfig::from_gbps(180, 4.0, freq, 2),
        dram_capacity_bytes: 4 << 30,
        tlb_enabled: true,
    }
}

fn main() {
    let candidate = next_gen_riscv();
    let contenders: Vec<(String, DeviceSpec)> = vec![
        (
            Device::MangoPiMqPro.label().into(),
            Device::MangoPiMqPro.spec(),
        ),
        (
            Device::RaspberryPi4.label().into(),
            Device::RaspberryPi4.spec(),
        ),
        (candidate.name.clone(), candidate),
    ];

    let tcfg = TransposeConfig::new(2048);
    println!("== transpose, Dynamic variant, 2048 x 2048 ==");
    for (name, spec) in &contenders {
        let r = simulate_transpose(spec, TransposeVariant::Dynamic, tcfg).expect("fits");
        println!("  {name:36} {:>8.1} ms", r.seconds * 1e3);
    }

    let bcfg = BlurConfig::small(507, 636);
    println!("\n== blur, Parallel variant, 636 x 507 ==");
    for (name, spec) in &contenders {
        let r = simulate_blur(spec, BlurVariant::Parallel, bcfg);
        println!("  {name:36} {:>8.1} ms", r.seconds * 1e3);
    }

    println!(
        "\nAn L2 cache, a second issue slot and commodity-grade DRAM take the\n\
         modelled RISC-V board from several times slower than the Raspberry\n\
         Pi 4 to rough parity — the microarchitectural gap, not the ISA, is\n\
         what separates today's boards from ARM."
    );
}
