//! The §4.2 transposition case study end-to-end: run the five-variant
//! ladder on all four simulated devices, compute the paper's two relative
//! metrics, and print Fig. 2 + Fig. 3 style summaries for one size.
//!
//! ```sh
//! cargo run --release --example transpose_study [n]
//! ```

use membound::core::{
    experiment::{simulate_transpose, stream_dram_gbps},
    metrics, TransposeConfig, TransposeVariant,
};
use membound::sim::Device;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("matrix size must be an integer"))
        .unwrap_or(2048);
    let cfg = TransposeConfig::new(n);
    println!("== transposition study: {n} x {n} doubles ==\n");

    for &device in Device::all() {
        let spec = device.spec();
        if !spec.fits_in_memory(cfg.matrix_bytes()) {
            println!("{device}: matrix does not fit in {} GB of memory (the paper's\n  missing 16384 bars)\n", spec.dram_capacity_bytes >> 30);
            continue;
        }
        let stream = stream_dram_gbps(&spec);
        println!("{device} (STREAM DRAM: {stream:.2} GB/s):");
        let mut naive_seconds = 0.0;
        for variant in TransposeVariant::all() {
            let report = simulate_transpose(&spec, variant, cfg).expect("fits");
            if variant == TransposeVariant::Naive {
                naive_seconds = report.seconds;
            }
            let util = metrics::bandwidth_utilization(cfg.nominal_bytes(), report.seconds, stream);
            println!(
                "  {:16} {:>10.1} ms  speedup {:>6}  BW-utilization {:.3}  [{}]",
                variant.label(),
                report.seconds * 1e3,
                format!("x{:.1}", metrics::speedup(naive_seconds, report.seconds)),
                util,
                report.phases[0].bottleneck,
            );
        }
        println!();
    }

    println!(
        "§4.2's conclusions to look for: the optimizations developed for x86\n\
         work on the RISC-V boards; despite much lower STREAM bandwidth the\n\
         boards' best variants reach high relative utilization (Fig. 3)."
    );
}
