//! STREAM survey (the paper's Fig. 1 methodology) on the simulated
//! devices, plus a native STREAM run on the host for reference.
//!
//! ```sh
//! cargo run --release --example stream_survey
//! ```

use membound::core::{experiment, run_native_stream, StreamOp};
use membound::parallel::Pool;
use membound::sim::Device;

fn main() {
    println!("== STREAM survey ==\n");

    // Native host numbers first: real measured bandwidth.
    let pool = Pool::host();
    println!("native host ({} threads, 32 MiB arrays):", pool.threads());
    for op in StreamOp::all() {
        let r = run_native_stream(op, 4 << 20, 5, &pool);
        println!("  {:5}  {:>8.2} GB/s", op.label(), r.gbps);
    }

    // Simulated devices: per-level breakdown.
    for &device in Device::all() {
        let spec = device.spec();
        println!("\n{device} (modelled):");
        for row in experiment::simulate_stream_survey(&spec) {
            let mode = if row.private_scaled {
                format!("sequential x{}", spec.cores)
            } else {
                format!("{} threads", spec.cores)
            };
            println!(
                "  {:5} ({mode:>14})  Copy {:>7.2}  Scale {:>7.2}  Add {:>7.2}  Triad {:>7.2}  GB/s",
                row.level, row.gbps[0], row.gbps[1], row.gbps[2], row.gbps[3]
            );
        }
    }

    println!(
        "\nReading the table like the paper reads Fig. 1: the RISC-V boards'\n\
         memory subsystems trail ARM, which trails the Xeon — the Mango Pi\n\
         lacks an L2 entirely and the StarFive sits behind a narrow DRAM\n\
         channel."
    );
}
