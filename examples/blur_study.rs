//! The §4.3 Gaussian-blur case study: verify the five variants agree on a
//! real image, then run the ladder on every simulated device with the
//! paper's metrics.
//!
//! ```sh
//! cargo run --release --example blur_study
//! ```

use membound::core::{
    blur_native,
    experiment::{simulate_blur, stream_dram_gbps},
    metrics, BlurConfig, BlurVariant,
};
use membound::image::generate;
use membound::parallel::Pool;
use membound::sim::Device;

fn main() {
    // Correctness first, natively: every variant must produce the same
    // filtered image (borders excluded; see blur::native docs).
    let check_cfg = BlurConfig::small(128, 160);
    let src = generate::test_pattern(check_cfg.height, check_cfg.width, check_cfg.channels);
    let pool = Pool::host();
    let (reference, _) = blur_native(&src, BlurVariant::Naive, &check_cfg, &pool);
    println!("== native correctness check (128 x 160, F = 19) ==");
    for variant in BlurVariant::all() {
        let (out, time) = blur_native(&src, variant, &check_cfg, &pool);
        let diff = reference.max_abs_diff_interior(&out, check_cfg.filter_size);
        println!(
            "  {:12} {:>8.2} ms   max interior deviation {:.2e}",
            variant.label(),
            time.as_secs_f64() * 1e3,
            diff
        );
        assert!(diff < 1e-4, "variants must agree");
    }

    // Then the cross-device study at a reduced size.
    let cfg = BlurConfig::small(507, 636);
    println!(
        "\n== simulated study ({} x {} x {}, F = {}) ==\n",
        cfg.height, cfg.width, cfg.channels, cfg.filter_size
    );
    for &device in Device::all() {
        let spec = device.spec();
        let stream = stream_dram_gbps(&spec);
        println!("{device}:");
        let mut naive_seconds = 0.0;
        for variant in BlurVariant::all() {
            let report = simulate_blur(&spec, variant, cfg);
            if variant == BlurVariant::Naive {
                naive_seconds = report.seconds;
            }
            println!(
                "  {:12} {:>10.1} ms  speedup {:>6}  BW-utilization {:.3}",
                variant.label(),
                report.seconds * 1e3,
                format!("x{:.1}", metrics::speedup(naive_seconds, report.seconds)),
                metrics::bandwidth_utilization(cfg.nominal_bytes(), report.seconds, stream),
            );
        }
        println!();
    }

    println!(
        "§4.3's conclusions to look for: separable kernels alone (1D_kernels)\n\
         disappoint relative to their 19x work reduction; restructuring the\n\
         vertical pass (Memory) unlocks the real speedup, dramatically on the\n\
         vectorizing Xeon; parallel gains are bounded by memory channels."
    );
}
