//! `membound-cli` — run any kernel × variant × device combination from
//! the command line, natively or simulated.
//!
//! ```text
//! membound-cli devices
//! membound-cli stream    [--device xeon] [--op triad] [--level dram]
//! membound-cli transpose [--device all] [--variant dynamic] [-n 2048] [--block 64]
//! membound-cli blur      [--device starfive] [--variant memory] [--height 507 --width 636]
//! membound-cli native-stream    [--elements 4194304] [--threads 0]
//! membound-cli native-transpose [-n 1024] [--variant all] [--threads 0]
//! membound-cli native-blur      [--height 317 --width 397] [--variant all]
//! membound-cli cache stats|gc|verify [--cache-dir <dir>]
//! membound-cli serve submit|status|cancel|shutdown --socket <path> [...]
//! ```
//!
//! `--device all` (the default) sweeps the paper's four devices;
//! `--variant all` sweeps a kernel's whole ladder; `--threads 0` means
//! "all host cores". Add `--json` to print machine-readable rows instead
//! of a table.

use membound::core::cache;
use membound::core::experiment::{
    simulate_blur, simulate_gbmv, simulate_gbmv_reference, simulate_stream,
    simulate_stream_survey, simulate_transpose, simulate_transpose_reference, stream_dram_gbps,
};
use membound::core::metrics::{attach_speedups, Measurement};
use membound::core::report::{fmt_seconds, fmt_speedup, to_json, TextTable};
use membound::core::{
    blur_native, run_native_stream, transpose_native, BlurConfig, BlurVariant, GbmvConfig,
    GbmvVariant, SquareMatrix, StreamOp, StreamTrace, TransposeConfig, TransposeVariant,
};
use membound::core::{BlurTrace, TransposeTrace};
use membound::image::generate;
use membound::parallel::{Pool, Schedule};
use membound::sim::{estimate_coverage, Device, Machine};
use membound::trace::{IrStats, RecordingSink, TraceSink};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: membound-cli <command> [options]\n\
         commands:\n\
         \x20 devices                         modelled device inventory\n\
         \x20 stream                          simulated STREAM survey\n\
         \x20 transpose                       simulated transposition ladder\n\
         \x20 blur                            simulated Gaussian-blur ladder\n\
         \x20 native-stream                   STREAM on this host\n\
         \x20 native-transpose                transposition on this host\n\
         \x20 native-blur                     Gaussian blur on this host\n\
         \x20 validate-runlog <path>          check a JSONL run log (accepts schema v1..=v7)\n\
         \x20 strided-gate                    prove batched strided replay matches per-element\n\
         \x20 analytic-gate                   prove analytic fast-forward matches full replay\n\
         \x20 trace-ir transpose|blur|stream  dump a kernel's lowered trace IR and coverage\n\
         \x20 cache stats|gc|verify           inspect or reclaim a persistent result cache\n\
         \x20                                 (--cache-dir <dir>, or MEMBOUND_CACHE_DIR)\n\
         \x20 serve submit|status|cancel|shutdown   talk to a membound-serve daemon\n\
         \x20                                 (--socket <path>; see `serve --help`)\n\
         common options:\n\
         \x20 --device mangopi|starfive|rpi4|xeon|all   (default: all)\n\
         \x20 --variant <ladder variant>|all            (default: all)\n\
         \x20 --threads N                               native thread count (0 = host)\n\
         \x20 --json                                    machine-readable output\n\
         \x20 --analytic / --no-analytic                force the analytic trace-IR executor\n\
         \x20                                           on/off (default: MEMBOUND_ANALYTIC, on)\n\
         kernel options:\n\
         \x20 stream:    --op copy|scale|add|triad|all  --level l1|l2|l3|dram|all\n\
         \x20 transpose: -n SIZE  --block SIZE\n\
         \x20 blur:      --height H --width W --filter F"
    );
    std::process::exit(2);
}

#[derive(Debug)]
struct Opts {
    flags: HashMap<String, String>,
    json: bool,
    /// `--analytic` / `--no-analytic`: process-wide override for the
    /// analytic trace-IR executor (`None` leaves the `MEMBOUND_ANALYTIC`
    /// environment default in force).
    analytic: Option<bool>,
}

impl Opts {
    fn parse(args: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut json = false;
        let mut analytic = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => json = true,
                "--analytic" => analytic = Some(true),
                "--no-analytic" => analytic = Some(false),
                "--no-tlb" => {
                    flags.insert("no-tlb".to_owned(), "1".to_owned());
                }
                "--help" | "-h" => usage(),
                flag if flag.starts_with('-') => {
                    let value = it.next().unwrap_or_else(|| {
                        eprintln!("flag {flag} needs a value");
                        usage()
                    });
                    flags.insert(flag.trim_start_matches('-').to_owned(), value.clone());
                }
                other => {
                    eprintln!("unexpected argument: {other}");
                    usage();
                }
            }
        }
        Self {
            flags,
            json,
            analytic,
        }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                usage()
            }),
        }
    }

    fn devices(&self) -> Vec<Device> {
        match self.get("device").unwrap_or("all") {
            "all" => Device::all().to_vec(),
            "paper" => Device::paper().to_vec(),
            "mangopi" | "mango" | "d1" => vec![Device::MangoPiMqPro],
            "starfive" | "visionfive" | "jh7100" => vec![Device::StarFiveVisionFive],
            "rpi4" | "raspberrypi" | "arm" => vec![Device::RaspberryPi4],
            "xeon" | "x86" => vec![Device::IntelXeon4310T],
            "sg2044" | "sophon" => vec![Device::SophonSG2044],
            "montecimone" | "monte" | "cimone" | "u740" => vec![Device::MonteCimone],
            other => {
                eprintln!("unknown device: {other}");
                usage()
            }
        }
    }

    fn pool(&self) -> Pool {
        match self.num::<u32>("threads", 0) {
            0 => Pool::host(),
            n => Pool::new(n),
        }
    }
}

fn transpose_variants(opts: &Opts) -> Vec<TransposeVariant> {
    match opts.get("variant").unwrap_or("all") {
        "all" => TransposeVariant::all().to_vec(),
        "naive" => vec![TransposeVariant::Naive],
        "parallel" => vec![TransposeVariant::Parallel],
        "blocking" => vec![TransposeVariant::Blocking],
        "manual" | "manual_blocking" => vec![TransposeVariant::ManualBlocking],
        "dynamic" => vec![TransposeVariant::Dynamic],
        other => {
            eprintln!("unknown transpose variant: {other}");
            usage()
        }
    }
}

fn blur_variants(opts: &Opts) -> Vec<BlurVariant> {
    match opts.get("variant").unwrap_or("all") {
        "all" => BlurVariant::all().to_vec(),
        "naive" => vec![BlurVariant::Naive],
        "unit-stride" | "unit_stride" | "unitstride" => vec![BlurVariant::UnitStride],
        "1d" | "1d_kernels" | "onedim" => vec![BlurVariant::OneDimKernels],
        "memory" => vec![BlurVariant::Memory],
        "parallel" => vec![BlurVariant::Parallel],
        other => {
            eprintln!("unknown blur variant: {other}");
            usage()
        }
    }
}

fn emit(opts: &Opts, table: TextTable, rows: &[Measurement]) {
    if opts.json {
        println!("{}", to_json(&rows));
    } else {
        println!("{}", table.render());
    }
}

fn cmd_devices(opts: &Opts) {
    let mut table = TextTable::new(
        ["device", "ISA", "cores", "freq GHz", "DRAM GB/s", "RAM GB"]
            .map(String::from)
            .to_vec(),
    );
    for device in opts.devices() {
        let spec = device.spec();
        table.row(vec![
            device.label().into(),
            spec.isa.clone(),
            spec.cores.to_string(),
            format!("{:.1}", spec.core.freq_ghz),
            format!("{:.1}", spec.dram_gbps()),
            (spec.dram_capacity_bytes >> 30).to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn cmd_stream(opts: &Opts) {
    let level_filter = opts.get("level").unwrap_or("all").to_lowercase();
    let op_filter = opts.get("op").unwrap_or("all").to_lowercase();
    let mut table = TextTable::new(["device", "level", "op", "GB/s"].map(String::from).to_vec());
    for device in opts.devices() {
        let spec = device.spec();
        if level_filter == "all" && op_filter == "all" {
            for row in simulate_stream_survey(&spec) {
                for (op, g) in StreamOp::all().iter().zip(row.gbps) {
                    table.row(vec![
                        device.label().into(),
                        row.level.clone(),
                        op.label().into(),
                        format!("{g:.2}"),
                    ]);
                }
            }
            continue;
        }
        let ops: Vec<StreamOp> = StreamOp::all()
            .into_iter()
            .filter(|o| op_filter == "all" || o.label().to_lowercase() == op_filter)
            .collect();
        if ops.is_empty() {
            eprintln!("unknown op: {op_filter}");
            usage();
        }
        let level = match level_filter.as_str() {
            "dram" => None,
            "l1" | "l1d" => Some(0),
            "l2" => Some(1),
            "l3" => Some(2),
            other => {
                eprintln!("unknown level: {other}");
                usage()
            }
        };
        if let Some(k) = level {
            if k >= spec.caches.len() {
                table.row(vec![
                    device.label().into(),
                    level_filter.to_uppercase(),
                    "-".into(),
                    "level not present".into(),
                ]);
                continue;
            }
        }
        for op in ops {
            let gbps = simulate_stream(&spec, op, level);
            table.row(vec![
                device.label().into(),
                level_filter.to_uppercase(),
                op.label().into(),
                format!("{gbps:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
}

fn cmd_transpose(opts: &Opts) {
    let n: usize = opts.num("n", 2048);
    let block: usize = opts.num("block", 64);
    let cfg = TransposeConfig::with_block(n, block);
    let mut table = TextTable::new(
        ["device", "variant", "threads", "time", "speedup", "BW util"]
            .map(String::from)
            .to_vec(),
    );
    let mut all_rows = Vec::new();
    for device in opts.devices() {
        let spec = device.spec();
        let stream = stream_dram_gbps(&spec);
        let mut ladder = Vec::new();
        for variant in transpose_variants(opts) {
            match simulate_transpose(&spec, variant, cfg) {
                Some(r) => {
                    let mut m =
                        Measurement::new(variant.label(), device.label(), r.threads, r.seconds);
                    m.bandwidth_utilization =
                        Some(r.bandwidth_utilization(cfg.nominal_bytes(), stream));
                    ladder.push(m);
                }
                None => table.row(vec![
                    device.label().into(),
                    variant.label().into(),
                    "-".into(),
                    "does not fit in memory".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        attach_speedups(&mut ladder);
        for m in &ladder {
            table.row(vec![
                m.device.clone(),
                m.variant.clone(),
                m.threads.to_string(),
                fmt_seconds(m.seconds),
                fmt_speedup(m.speedup_vs_naive),
                format!("{:.3}", m.bandwidth_utilization.unwrap_or(0.0)),
            ]);
        }
        all_rows.extend(ladder);
    }
    emit(opts, table, &all_rows);
}

fn cmd_blur(opts: &Opts) {
    let cfg = BlurConfig {
        height: opts.num("height", 507),
        width: opts.num("width", 636),
        channels: 3,
        filter_size: opts.num("filter", 19),
        sigma: None,
    };
    let mut table = TextTable::new(
        ["device", "variant", "threads", "time", "speedup", "BW util"]
            .map(String::from)
            .to_vec(),
    );
    let mut all_rows = Vec::new();
    for device in opts.devices() {
        let spec = device.spec();
        let stream = stream_dram_gbps(&spec);
        let mut ladder = Vec::new();
        for variant in blur_variants(opts) {
            let r = simulate_blur(&spec, variant, cfg);
            let mut m = Measurement::new(variant.label(), device.label(), r.threads, r.seconds);
            m.bandwidth_utilization = Some(r.bandwidth_utilization(cfg.nominal_bytes(), stream));
            ladder.push(m);
        }
        attach_speedups(&mut ladder);
        for m in &ladder {
            table.row(vec![
                m.device.clone(),
                m.variant.clone(),
                m.threads.to_string(),
                fmt_seconds(m.seconds),
                fmt_speedup(m.speedup_vs_naive),
                format!("{:.3}", m.bandwidth_utilization.unwrap_or(0.0)),
            ]);
        }
        all_rows.extend(ladder);
    }
    emit(opts, table, &all_rows);
}

fn cmd_native_stream(opts: &Opts) {
    let elements: usize = opts.num("elements", 4 << 20);
    let pool = opts.pool();
    let mut table = TextTable::new(["op", "GB/s", "best pass"].map(String::from).to_vec());
    for op in StreamOp::all() {
        let r = run_native_stream(op, elements, 5, &pool);
        table.row(vec![
            op.label().into(),
            format!("{:.2}", r.gbps),
            fmt_seconds(r.best_seconds),
        ]);
    }
    println!(
        "host STREAM, {} threads, {} elements/array\n{}",
        pool.threads(),
        elements,
        table.render()
    );
}

fn cmd_native_transpose(opts: &Opts) {
    let n: usize = opts.num("n", 1024);
    let block: usize = opts.num("block", 64);
    let cfg = TransposeConfig::with_block(n, block);
    let pool = opts.pool();
    let mut table = TextTable::new(["variant", "time", "speedup"].map(String::from).to_vec());
    let mut ladder = Vec::new();
    for variant in transpose_variants(opts) {
        let mut m = SquareMatrix::indexed(n);
        let t = transpose_native(&mut m, variant, cfg, &pool);
        ladder.push(Measurement::new(
            variant.label(),
            "host",
            pool.threads(),
            t.as_secs_f64(),
        ));
    }
    attach_speedups(&mut ladder);
    for m in &ladder {
        table.row(vec![
            m.variant.clone(),
            fmt_seconds(m.seconds),
            fmt_speedup(m.speedup_vs_naive),
        ]);
    }
    println!(
        "host transpose {n}x{n}, block {block}, {} threads\n{}",
        pool.threads(),
        table.render()
    );
}

fn cmd_native_blur(opts: &Opts) {
    let cfg = BlurConfig {
        height: opts.num("height", 317),
        width: opts.num("width", 397),
        channels: 3,
        filter_size: opts.num("filter", 19),
        sigma: None,
    };
    let pool = opts.pool();
    let src = generate::test_pattern(cfg.height, cfg.width, cfg.channels);
    let mut table = TextTable::new(["variant", "time", "speedup"].map(String::from).to_vec());
    let mut ladder = Vec::new();
    for variant in blur_variants(opts) {
        let (_, t) = blur_native(&src, variant, &cfg, &pool);
        ladder.push(Measurement::new(
            variant.label(),
            "host",
            pool.threads(),
            t.as_secs_f64(),
        ));
    }
    attach_speedups(&mut ladder);
    for m in &ladder {
        table.row(vec![
            m.variant.clone(),
            fmt_seconds(m.seconds),
            fmt_speedup(m.speedup_vs_naive),
        ]);
    }
    println!(
        "host blur {}x{}x3, F={}, {} threads\n{}",
        cfg.height,
        cfg.width,
        cfg.filter_size,
        pool.threads(),
        table.render()
    );
}

/// `validate-runlog <path>`: parse and schema-check an engine run log,
/// printing its summary (figure, cells, combined digest). Exits nonzero
/// on any violation, which is what the CI figure-smoke job keys on.
fn cmd_validate_runlog(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("validate-runlog requires a path to a .jsonl run log");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match membound::core::telemetry::validate_run_log(&text) {
        Ok(summary) => {
            println!(
                "{path}: valid run log (schema v{})\n\
                 \x20 figure:  {}\n\
                 \x20 jobs:    {}\n\
                 \x20 cells:   {} ({} ok, {} cached, {} resumed)\n\
                 \x20 digest:  {}",
                summary.schema_version,
                summary.figure,
                summary.jobs,
                summary.cells,
                summary.ok_cells,
                summary.cached_cells,
                summary.resumed_cells,
                summary.combined_digest,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID run log: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `strided-gate`: simulate transposition cells twice — once on the
/// default machine (column walks execute as `access_strided` batches)
/// and once on a [`Machine::without_fastpath`] reference that dispatches
/// every batch element by element — and require bit-identical stats
/// digests. Exits nonzero on any divergence, or if no cell actually
/// exercised the batched path; the CI bench-smoke job keys on this.
fn cmd_strided_gate(opts: &Opts) -> ExitCode {
    let n: usize = opts.num("n", 1024);
    let cfg = TransposeConfig::new(n);
    let mut table = TextTable::new(
        [
            "device",
            "variant",
            "batches",
            "batched digest",
            "reference digest",
            "gate",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut failures = 0u32;
    let mut batches_seen = 0u64;
    for device in opts.devices() {
        let spec = device.spec();
        for variant in transpose_variants(opts) {
            let (Some(batched), Some(reference)) = (
                simulate_transpose(&spec, variant, cfg),
                simulate_transpose_reference(&spec, variant, cfg),
            ) else {
                table.row(vec![
                    device.label().into(),
                    variant.label().into(),
                    "-".into(),
                    "does not fit in memory".into(),
                    "-".into(),
                    "skip".into(),
                ]);
                continue;
            };
            let ok = batched.stats_digest() == reference.stats_digest();
            failures += u32::from(!ok);
            batches_seen += batched.strided_batches;
            table.row(vec![
                device.label().into(),
                variant.label().into(),
                batched.strided_batches.to_string(),
                format!("{:016x}", batched.stats_digest()),
                format!("{:016x}", reference.stats_digest()),
                if ok { "ok" } else { "DIVERGED" }.into(),
            ]);
        }
        // One gbmv cell: the naïve anti-diagonal walk is the widest
        // constant stride any kernel feeds the bulk executors.
        let gcfg = GbmvConfig::new(n.max(128));
        if let (Some(batched), Some(reference)) = (
            simulate_gbmv(&spec, GbmvVariant::Naive, gcfg),
            simulate_gbmv_reference(&spec, GbmvVariant::Naive, gcfg),
        ) {
            let ok = batched.stats_digest() == reference.stats_digest();
            failures += u32::from(!ok);
            batches_seen += batched.strided_batches;
            table.row(vec![
                device.label().into(),
                "gbmv Naive".into(),
                batched.strided_batches.to_string(),
                format!("{:016x}", batched.stats_digest()),
                format!("{:016x}", reference.stats_digest()),
                if ok { "ok" } else { "DIVERGED" }.into(),
            ]);
        }
    }
    println!("strided gate, {n}x{n} transposition\n{}", table.render());
    if failures > 0 {
        eprintln!(
            "strided gate FAILED: {failures} cell(s) diverged from the per-element reference"
        );
        return ExitCode::FAILURE;
    }
    if batches_seen == 0 {
        eprintln!(
            "strided gate FAILED: no cell executed a strided batch — the gate proved nothing"
        );
        return ExitCode::FAILURE;
    }
    println!("strided gate passed: {batches_seen} batches, all digests bit-identical");
    ExitCode::SUCCESS
}

/// Record core 0's trace emission for one transpose cell into a folded
/// IR program (the same plumbing as `simulate_transpose`, with a
/// [`RecordingSink`] in place of the machine).
fn record_transpose_ir(
    spec: &membound::sim::DeviceSpec,
    variant: TransposeVariant,
    cfg: TransposeConfig,
) -> Vec<membound::trace::TraceOp> {
    let trace = TransposeTrace::new(cfg);
    let threads = if variant.is_parallel() { spec.cores } else { 1 };
    let total = trace.outer_iterations(variant);
    let plan = variant
        .schedule()
        .plan(total, threads, |i| trace.weight(variant, i));
    let mut sink = RecordingSink::new();
    for range in &plan[0] {
        trace.trace_outer(variant, &mut sink, 0, range.start, range.end);
    }
    sink.finish()
}

/// Record core 0's trace emission for one blur cell (see
/// `simulate_blur` for the pass structure per variant).
fn record_blur_ir(
    spec: &membound::sim::DeviceSpec,
    variant: BlurVariant,
    cfg: BlurConfig,
) -> Vec<membound::trace::TraceOp> {
    let trace = BlurTrace::new(cfg);
    let mut sink = RecordingSink::new();
    match variant {
        BlurVariant::Naive | BlurVariant::UnitStride => {
            trace.trace_2d(variant, &mut sink, 0, trace.output_rows());
        }
        BlurVariant::OneDimKernels | BlurVariant::Memory => {
            trace.trace_pass1(&mut sink, 0, trace.all_rows());
            trace.trace_pass2(variant, &mut sink, 0, trace.output_rows());
        }
        BlurVariant::Parallel => {
            let threads = spec.cores;
            let plan1 = Schedule::Static.plan(trace.all_rows(), threads, |_| 1.0);
            let plan2 = Schedule::Static.plan(trace.output_rows(), threads, |_| 1.0);
            for r in &plan1[0] {
                trace.trace_pass1(&mut sink, r.start, r.end);
            }
            sink.barrier();
            for r in &plan2[0] {
                trace.trace_pass2(variant, &mut sink, r.start, r.end);
            }
        }
    }
    sink.finish()
}

#[derive(serde::Serialize)]
struct TraceIrRow {
    device: String,
    variant: String,
    nodes: u64,
    access: u64,
    range: u64,
    strided: u64,
    strided_rmw: u64,
    repeat: u64,
    max_depth: u32,
    coverage_percent: f64,
}

/// `trace-ir transpose|blur|stream`: dump the lowered trace IR of a
/// kernel's core-0 emission — folded node counts, repeat nesting depth,
/// and the static analytic-coverage estimate (the fraction of expanded
/// elements inside loops that pass the fast-forward shape gates on the
/// selected device). `--no-tlb` estimates against the device with
/// translation disabled — the regime where nonzero-stride loops become
/// eligible (DESIGN.md §15).
fn cmd_trace_ir(kernel: &str, opts: &Opts) -> ExitCode {
    let mut table = TextTable::new(
        [
            "device", "variant", "nodes", "access", "range", "strided", "rmw", "repeat", "depth",
            "analytic",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    for device in opts.devices() {
        let spec = if opts.get("no-tlb").is_some() {
            device.spec().without_tlb()
        } else {
            device.spec()
        };
        let cells: Vec<(String, Vec<membound::trace::TraceOp>)> = match kernel {
            "transpose" | "fig2" => {
                let cfg = TransposeConfig::with_block(opts.num("n", 2048), opts.num("block", 64));
                transpose_variants(opts)
                    .into_iter()
                    .map(|v| (v.label().to_owned(), record_transpose_ir(&spec, v, cfg)))
                    .collect()
            }
            "blur" | "fig6" => {
                let cfg = BlurConfig {
                    height: opts.num("height", 507),
                    width: opts.num("width", 636),
                    channels: 3,
                    filter_size: opts.num("filter", 19),
                    sigma: None,
                };
                blur_variants(opts)
                    .into_iter()
                    .map(|v| (v.label().to_owned(), record_blur_ir(&spec, v, cfg)))
                    .collect()
            }
            "stream" => {
                let elements: u64 = opts.num("elements", 4 << 20);
                let filter = opts.get("op").unwrap_or("all").to_lowercase();
                let ops: Vec<StreamOp> = StreamOp::all()
                    .into_iter()
                    .filter(|o| filter == "all" || o.label().to_lowercase() == filter)
                    .collect();
                if ops.is_empty() {
                    eprintln!("unknown stream op: {filter}");
                    usage();
                }
                ops.into_iter()
                    .map(|op| {
                        let t = StreamTrace::new(op, elements);
                        let mut sink = RecordingSink::new();
                        t.trace_pass(&mut sink, 0, elements);
                        (op.label().to_owned(), sink.finish())
                    })
                    .collect()
            }
            other => {
                eprintln!("trace-ir: unknown kernel {other} (expected transpose, blur or stream)");
                return ExitCode::from(2);
            }
        };
        for (variant, program) in cells {
            let stats = IrStats::of(&program);
            let cov = estimate_coverage(&spec, &program);
            table.row(vec![
                device.label().into(),
                variant.clone(),
                stats.total_nodes().to_string(),
                stats.access.to_string(),
                stats.range.to_string(),
                stats.strided.to_string(),
                stats.strided_rmw.to_string(),
                stats.repeat.to_string(),
                stats.max_depth.to_string(),
                format!("{:.1}%", cov.percent()),
            ]);
            rows.push(TraceIrRow {
                device: device.label().to_owned(),
                variant,
                nodes: stats.total_nodes(),
                access: stats.access,
                range: stats.range,
                strided: stats.strided,
                strided_rmw: stats.strided_rmw,
                repeat: stats.repeat,
                max_depth: stats.max_depth,
                coverage_percent: cov.percent(),
            });
        }
    }
    if opts.json {
        println!("{}", to_json(&rows));
    } else {
        println!("trace IR, core 0 emission\n{}", table.render());
        println!(
            "analytic = static fast-forward coverage estimate (elements in loops\n\
             passing the shape gates; runtime warm-up can still fall back)"
        );
    }
    ExitCode::SUCCESS
}

/// `analytic-gate`: prove the analytic trace-IR executor is
/// digest-invisible — every figure cell simulated with fast-forward
/// enabled must produce byte-identical statistics to forced per-element
/// replay — and non-vacuous: a TLB-off streaming workload must actually
/// fast-forward (`analytic_ops > 0`), or the equality above proved
/// nothing.
fn cmd_analytic_gate(opts: &Opts) -> ExitCode {
    use membound::sim::set_analytic_override;
    let cfg_t = TransposeConfig::new(opts.num("n", 512));
    let cfg_b = BlurConfig {
        height: opts.num("height", 127),
        width: opts.num("width", 159),
        channels: 3,
        filter_size: opts.num("filter", 19),
        sigma: None,
    };
    let mut table = TextTable::new(
        [
            "figure",
            "device",
            "variant",
            "analytic digest",
            "replay digest",
            "gate",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut failures = 0u32;
    let mut gate = |table: &mut TextTable,
                    figure: &str,
                    device: &str,
                    variant: &str,
                    on: Option<membound::sim::SimReport>,
                    off: Option<membound::sim::SimReport>| {
        let (Some(on), Some(off)) = (on, off) else {
            table.row(vec![
                figure.into(),
                device.into(),
                variant.into(),
                "does not fit in memory".into(),
                "-".into(),
                "skip".into(),
            ]);
            return;
        };
        let ok = on.stats_digest() == off.stats_digest();
        failures += u32::from(!ok);
        table.row(vec![
            figure.into(),
            device.into(),
            variant.into(),
            format!("{:016x}", on.stats_digest()),
            format!("{:016x}", off.stats_digest()),
            if ok { "ok" } else { "DIVERGED" }.into(),
        ]);
    };
    for device in opts.devices() {
        let spec = device.spec();
        for variant in transpose_variants(opts) {
            set_analytic_override(Some(true));
            let on = simulate_transpose(&spec, variant, cfg_t);
            set_analytic_override(Some(false));
            let off = simulate_transpose(&spec, variant, cfg_t);
            gate(&mut table, "fig2", device.label(), variant.label(), on, off);
        }
        for variant in blur_variants(opts) {
            set_analytic_override(Some(true));
            let on = simulate_blur(&spec, variant, cfg_b);
            set_analytic_override(Some(false));
            let off = simulate_blur(&spec, variant, cfg_b);
            gate(
                &mut table,
                "fig6",
                device.label(),
                variant.label(),
                Some(on),
                Some(off),
            );
        }
        // One gbmv cell per device: the blocked panels are the same
        // unit-stride shape the executor's coverage gates see from
        // STREAM, reached through a different kernel family.
        let cfg_g = GbmvConfig::new(opts.num("n", 512).max(128));
        set_analytic_override(Some(true));
        let on = simulate_gbmv(&spec, GbmvVariant::Blocked, cfg_g);
        set_analytic_override(Some(false));
        let off = simulate_gbmv(&spec, GbmvVariant::Blocked, cfg_g);
        gate(&mut table, "gbmv", device.label(), "Blocked", on, off);
    }
    set_analytic_override(None);
    println!("analytic gate\n{}", table.render());
    if failures > 0 {
        eprintln!("analytic gate FAILED: {failures} cell(s) diverged from forced replay");
        return ExitCode::FAILURE;
    }
    // Non-vacuity: the figures run with translation on, where the
    // executor proves nothing and falls back (by design). A TLB-off
    // single-pass triad must demonstrably fast-forward, or the digest
    // equality above was vacuous.
    let spec = Device::IntelXeon4310T.spec().without_tlb();
    let n = 1u64 << 25;
    let triad = move |_tid: u32, sink: &mut membound::sim::CorePipeline| {
        let mut i = 0;
        while i < n {
            let hi = (i + 1024).min(n);
            let bytes = (hi - i) * 8;
            sink.load_range((1 << 41) + i * 8, bytes);
            sink.load_range((1 << 42) + i * 8, bytes);
            sink.store_range((3 << 41) + i * 8, bytes);
            i = hi;
        }
    };
    let on = Machine::new(spec.clone())
        .with_analytic(true)
        .simulate(1, triad);
    let off = Machine::new(spec).with_analytic(false).simulate(1, triad);
    if on.stats_digest() != off.stats_digest() {
        eprintln!(
            "analytic gate FAILED: triad digests diverged ({:016x} != {:016x})",
            on.stats_digest(),
            off.stats_digest()
        );
        return ExitCode::FAILURE;
    }
    if on.analytic_ops == 0 {
        eprintln!(
            "analytic gate FAILED: the TLB-off triad never fast-forwarded — the gate proved nothing"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "analytic gate passed: {} elements fast-forwarded, all digests bit-identical",
        on.analytic_ops
    );
    ExitCode::SUCCESS
}

/// `cache stats|gc|verify`: inspect, reclaim, or integrity-check the
/// persistent result cache (DESIGN.md §12). The directory comes from
/// `--cache-dir`, falling back to `MEMBOUND_CACHE_DIR`. `verify` is
/// read-only and exits nonzero iff any object fails verification —
/// that is what the CI cache-incremental job keys on; stale entries
/// and index damage are recoverable bookkeeping, reported but clean.
fn cmd_cache(args: &[String]) -> ExitCode {
    let Some(action) = args.first().map(String::as_str) else {
        eprintln!("cache requires an action: stats, gc, or verify");
        return ExitCode::from(2);
    };
    let opts = Opts::parse(&args[1..]);
    let dir = opts.get("cache-dir").map(PathBuf::from).or_else(|| {
        std::env::var_os("MEMBOUND_CACHE_DIR")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    });
    let Some(dir) = dir else {
        eprintln!("cache {action}: pass --cache-dir <dir> or set MEMBOUND_CACHE_DIR");
        return ExitCode::from(2);
    };
    let fingerprint = cache::default_fingerprint();
    match action {
        "stats" | "verify" => {
            let s = match cache::survey(&dir, fingerprint) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cache {action} at {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            };
            println!(
                "result cache at {} (fingerprint {fingerprint})\n\
                 \x20 live:          {}\n\
                 \x20 stale:         {}\n\
                 \x20 corrupt:       {}\n\
                 \x20 temp files:    {}\n\
                 \x20 unindexed:     {}\n\
                 \x20 dangling:      {}\n\
                 \x20 index garbage: {}\n\
                 \x20 object bytes:  {}",
                dir.display(),
                s.live,
                s.stale,
                s.corrupt,
                s.temps,
                s.unindexed,
                s.dangling,
                s.index_garbage,
                s.object_bytes,
            );
            for problem in &s.problems {
                eprintln!("corrupt: {problem}");
            }
            if action == "verify" && !s.is_clean() {
                eprintln!("cache verify FAILED: {} corrupt object(s)", s.corrupt);
                return ExitCode::FAILURE;
            }
            if action == "verify" {
                println!("cache verify passed: every object verified");
            }
            ExitCode::SUCCESS
        }
        "gc" => match cache::gc(&dir, fingerprint) {
            Ok(out) => {
                println!(
                    "cache gc at {}: kept {} live, removed {} stale + {} corrupt + {} temp",
                    dir.display(),
                    out.kept,
                    out.removed_stale,
                    out.removed_corrupt,
                    out.removed_temps,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cache gc at {}: {e}", dir.display());
                ExitCode::from(2)
            }
        },
        other => {
            eprintln!("unknown cache action: {other} (expected stats, gc, or verify)");
            ExitCode::from(2)
        }
    }
}

/// Usage of the `serve` client subcommands.
fn serve_usage() -> ! {
    eprintln!(
        "usage: membound-cli serve <action> --socket <path> [options]\n\
         actions:\n\
         \x20 submit    run a job on the daemon and stream its telemetry\n\
         \x20           --figure fig2|fig6|ladder      (default: fig2)\n\
         \x20           --full                         paper-scale workload sizes\n\
         \x20           --device <filter>              restrict the device axis\n\
         \x20           --sizes N,N,... --block N      ladder workload (figure `ladder`)\n\
         \x20           --priority N                   higher runs first (default 0)\n\
         \x20           --retries N  --cell-deadline S engine fault-tolerance policy\n\
         \x20           --failpoint <spec>             per-job fault injection\n\
         \x20           --quiet                        suppress streamed telemetry lines\n\
         \x20 status    print the daemon's job table   [--job N]\n\
         \x20 cancel    cancel a queued job            --job N\n\
         \x20 shutdown  ask the daemon to drain and exit\n\
         exit codes: 0 done, 1 job failed, 2 usage/protocol error, 3 rejected\n\
         (a `queue_full` rejection prints its retry_after_ms hint)"
    );
    std::process::exit(2);
}

/// Parse `serve submit` flags into a spec + options pair.
fn serve_submit_params(
    opts: &Opts,
    full: bool,
    quiet: bool,
) -> (
    membound::serve::JobSpec,
    membound::serve::client::SubmitOptions,
) {
    use membound::serve::JobSpec;
    let device = opts.get("device").map(str::to_owned);
    let spec = match opts.get("figure").unwrap_or("fig2") {
        "fig2" => JobSpec::Fig2 { full, device },
        "fig6" => JobSpec::Fig6 { full, device },
        "ladder" => {
            let sizes: Vec<usize> = opts
                .get("sizes")
                .unwrap_or("96,128")
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("--sizes requires comma-separated integers, got {s:?}");
                        serve_usage()
                    })
                })
                .collect();
            JobSpec::TransposeLadder {
                sizes,
                block: opts.num("block", 16),
                device,
            }
        }
        other => {
            eprintln!("unknown figure: {other} (expected fig2, fig6 or ladder)");
            serve_usage()
        }
    };
    let options = membound::serve::client::SubmitOptions {
        priority: opts.num("priority", 0),
        retries: opts.num("retries", 0),
        cell_deadline: opts.get("cell-deadline").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--cell-deadline requires seconds, got {v:?}");
                serve_usage()
            })
        }),
        failpoint: opts.get("failpoint").map(str::to_owned),
        stream: !quiet,
    };
    (spec, options)
}

/// `serve submit|status|cancel|shutdown`: the daemon's line client.
fn cmd_serve(args: &[String]) -> ExitCode {
    use membound::serve::client::SubmitOutcome;
    use membound::serve::Client;

    let Some(action) = args.first().map(String::as_str) else {
        serve_usage()
    };
    if action == "--help" || action == "-h" {
        serve_usage()
    }
    // `--full` and `--quiet` are valueless flags the generic Opts
    // parser would mis-eat; strip them first.
    let mut rest: Vec<String> = Vec::new();
    let mut full = false;
    let mut quiet = false;
    for a in &args[1..] {
        match a.as_str() {
            "--full" => full = true,
            "--quiet" => quiet = true,
            _ => rest.push(a.clone()),
        }
    }
    let opts = Opts::parse(&rest);
    let Some(socket) = opts.get("socket").map(PathBuf::from) else {
        eprintln!("serve {action}: --socket <path> is required");
        serve_usage()
    };
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "serve {action}: cannot connect to {}: {e}",
                socket.display()
            );
            return ExitCode::from(2);
        }
    };
    let exchange = match action {
        "submit" => {
            let (spec, options) = serve_submit_params(&opts, full, quiet);
            client.submit(&spec, &options, |line| println!("{line}"))
        }
        "status" => {
            let job = opts.get("job").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--job requires a job id, got {v:?}");
                    serve_usage()
                })
            });
            match client.status(job) {
                Err(e) => Err(e),
                Ok(jobs) => {
                    let mut table = TextTable::new(
                        ["job", "label", "state", "prio", "cells", "cached", "digest"]
                            .map(String::from)
                            .to_vec(),
                    );
                    for j in &jobs {
                        table.row(vec![
                            j.job.to_string(),
                            j.label.clone(),
                            j.state.clone(),
                            j.priority.to_string(),
                            j.cells.to_string(),
                            j.cached.to_string(),
                            j.digest.clone().unwrap_or_else(|| "-".into()),
                        ]);
                    }
                    println!("{}", table.render());
                    return ExitCode::SUCCESS;
                }
            }
        }
        "cancel" => {
            let Some(job) = opts.get("job").and_then(|v| v.parse().ok()) else {
                eprintln!("serve cancel: --job <id> is required");
                serve_usage()
            };
            match client.cancel(job) {
                Err(e) => Err(e),
                Ok(Ok(())) => {
                    println!("[job {job} cancelled]");
                    return ExitCode::SUCCESS;
                }
                Ok(Err(why)) => {
                    eprintln!("serve cancel: {why}");
                    return ExitCode::from(2);
                }
            }
        }
        "shutdown" => match client.shutdown() {
            Err(e) => Err(e),
            Ok(()) => {
                println!("[daemon draining]");
                return ExitCode::SUCCESS;
            }
        },
        other => {
            eprintln!("unknown serve action: {other}");
            serve_usage()
        }
    };
    match exchange {
        Ok(SubmitOutcome::Done {
            job,
            status,
            digest,
            cells,
            cached,
            misses,
            error,
        }) => {
            println!(
                "[job {job} {status}: cells={cells} cached={cached} misses={misses} digest={}]",
                digest.as_deref().unwrap_or("-")
            );
            if let Some(error) = error {
                eprintln!("[job {job} error: {error}]");
            }
            if status == "done" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(SubmitOutcome::Rejected {
            reason,
            retry_after_ms,
        }) => {
            eprintln!(
                "[rejected: {reason}{}]",
                retry_after_ms.map_or(String::new(), |ms| format!(" retry_after_ms={ms}"))
            );
            ExitCode::from(3)
        }
        Ok(SubmitOutcome::Error { message }) => {
            eprintln!("serve {action}: {message}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("serve {action}: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    if cmd == "validate-runlog" {
        return cmd_validate_runlog(&args[1..]);
    }
    if cmd == "cache" {
        return cmd_cache(&args[1..]);
    }
    if cmd == "serve" {
        return cmd_serve(&args[1..]);
    }
    if cmd == "trace-ir" {
        let Some(kernel) = args.get(1).filter(|a| !a.starts_with('-')) else {
            eprintln!("trace-ir requires a kernel: transpose, blur or stream");
            return ExitCode::from(2);
        };
        let opts = Opts::parse(&args[2..]);
        return cmd_trace_ir(kernel, &opts);
    }
    let opts = Opts::parse(&args[1..]);
    if let Some(v) = opts.analytic {
        membound::sim::set_analytic_override(Some(v));
    }
    if cmd == "strided-gate" {
        return cmd_strided_gate(&opts);
    }
    if cmd == "analytic-gate" {
        return cmd_analytic_gate(&opts);
    }
    match cmd.as_str() {
        "devices" => cmd_devices(&opts),
        "stream" => cmd_stream(&opts),
        "transpose" => cmd_transpose(&opts),
        "blur" => cmd_blur(&opts),
        "native-stream" => cmd_native_stream(&opts),
        "native-transpose" => cmd_native_transpose(&opts),
        "native-blur" => cmd_native_blur(&opts),
        _ => usage(),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Opts::parse(&owned)
    }

    #[test]
    fn flags_parse_into_the_map() {
        let o = opts(&["--device", "xeon", "-n", "512", "--json"]);
        assert_eq!(o.get("device"), Some("xeon"));
        assert_eq!(o.num::<usize>("n", 0), 512);
        assert!(o.json);
    }

    #[test]
    fn device_aliases_resolve() {
        assert_eq!(
            opts(&["--device", "mango"]).devices(),
            vec![Device::MangoPiMqPro]
        );
        assert_eq!(
            opts(&["--device", "jh7100"]).devices(),
            vec![Device::StarFiveVisionFive]
        );
        assert_eq!(
            opts(&["--device", "arm"]).devices(),
            vec![Device::RaspberryPi4]
        );
        assert_eq!(
            opts(&["--device", "sg2044"]).devices(),
            vec![Device::SophonSG2044]
        );
        assert_eq!(
            opts(&["--device", "u740"]).devices(),
            vec![Device::MonteCimone]
        );
        assert_eq!(opts(&[]).devices().len(), 6, "default sweeps all devices");
        assert_eq!(
            opts(&["--device", "paper"]).devices(),
            Device::paper().to_vec()
        );
    }

    #[test]
    fn variant_selectors_resolve() {
        let o = opts(&["--variant", "manual"]);
        assert_eq!(
            transpose_variants(&o),
            vec![TransposeVariant::ManualBlocking]
        );
        let o = opts(&["--variant", "1d"]);
        assert_eq!(blur_variants(&o), vec![BlurVariant::OneDimKernels]);
        let o = opts(&[]);
        assert_eq!(transpose_variants(&o).len(), 5);
        assert_eq!(blur_variants(&o).len(), 5);
    }

    #[test]
    fn numeric_defaults_apply() {
        let o = opts(&[]);
        assert_eq!(o.num::<usize>("n", 2048), 2048);
        assert_eq!(o.num::<u32>("threads", 0), 0);
    }

    #[test]
    fn pool_size_zero_means_host() {
        assert!(opts(&["--threads", "0"]).pool().threads() >= 1);
        assert_eq!(opts(&["--threads", "3"]).pool().threads(), 3);
    }
}
