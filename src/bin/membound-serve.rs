//! `membound-serve` — the long-running simulation daemon (DESIGN.md §14).
//!
//! ```text
//! membound-serve --socket /tmp/membound.sock [--jobs N] [--queue-cap N] [--cache-dir DIR]
//! ```
//!
//! Accepts simulation jobs over a local Unix socket (newline-delimited
//! JSON; submit with `membound-cli serve submit`), queues them with
//! priorities, and schedules them against **one shared worker budget**
//! so N concurrent jobs never oversubscribe the host. Per-cell
//! telemetry streams back to each submitter as schema-v6 JSONL — the
//! byte-identical lines a one-shot figure run writes — and jobs whose
//! cells are already in the `--cache-dir` result cache answer without
//! simulating at all.
//!
//! `SIGTERM`/`SIGINT` drain cleanly: queued and running jobs finish,
//! new submissions are rejected, the socket is removed, exit code 0.

use membound::parallel::ShutdownFlag;
use membound::serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: membound-serve --socket <path> [--jobs <N>] [--queue-cap <N>] [--cache-dir <dir>]\n\
         \x20 --socket     Unix-socket path to listen on (required; the daemon owns the path)\n\
         \x20 --jobs       shared worker budget across all running jobs\n\
         \x20              (default: MEMBOUND_JOBS, then the host core count)\n\
         \x20 --queue-cap  bounded queue capacity; beyond it submissions are\n\
         \x20              rejected with a retry-after hint (default: 16)\n\
         \x20 --cache-dir  persistent result cache shared by every job\n\
         \x20              (default: MEMBOUND_CACHE_DIR if set, else no cache)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut socket = None;
    let mut jobs = None;
    let mut queue_cap = 16usize;
    let mut cache_dir = std::env::var_os("MEMBOUND_CACHE_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs requires a positive integer, got {v:?}");
                    usage()
                }));
            }
            "--queue-cap" => {
                let v = args.next().unwrap_or_else(|| usage());
                queue_cap = v.parse().unwrap_or_else(|_| {
                    eprintln!("--queue-cap requires a positive integer, got {v:?}");
                    usage()
                });
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("--socket is required");
        usage()
    };
    let config = ServerConfig {
        socket,
        jobs: membound::core::runner::resolve_jobs(jobs),
        queue_cap,
        cache_dir,
    };
    println!(
        "[membound-serve] listening on {} (jobs={}, queue-cap={}, cache={})",
        config.socket.display(),
        config.jobs,
        config.queue_cap,
        config
            .cache_dir
            .as_ref()
            .map_or("off".to_string(), |d| d.display().to_string()),
    );
    let shutdown = ShutdownFlag::install();
    match Server::new(config).run(&shutdown) {
        Ok(()) => {
            println!("[membound-serve] drained and exited cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[membound-serve] fatal: {e}");
            ExitCode::FAILURE
        }
    }
}
