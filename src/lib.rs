//! # membound
//!
//! A reproduction of **“Case Study for Running Memory-Bound Kernels on
//! RISC-V CPUs”** (Volokitin et al., PACT 2023) as a Rust workspace.
//!
//! The paper benchmarks three memory-bound kernels — STREAM, in-place
//! dense matrix transposition and Gaussian blur — on two early RISC-V
//! boards (Mango Pi MQ-Pro / Allwinner D1, StarFive VisionFive / JH7100),
//! a Raspberry Pi 4 and an Intel Xeon 4310T server, and studies whether
//! classic x86 memory-optimization techniques carry over to RISC-V.
//!
//! Since the reproduction has no RISC-V silicon to run on, the four
//! devices are modelled by a trace-driven, cycle-approximate
//! memory-hierarchy simulator ([`sim`]), parameterized straight from the
//! paper's §3.1 hardware table. Every kernel variant also runs natively
//! on the host, so the optimization ladders can be demonstrated on real
//! hardware too.
//!
//! This crate is a facade: it re-exports the workspace's six libraries
//! under one namespace.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `membound-core` | the kernel ladders, metrics, experiment harness |
//! | [`sim`] | `membound-sim` | caches, TLBs, prefetchers, DRAM, device presets |
//! | [`trace`] | `membound-trace` | memory-reference traces and generators |
//! | [`parallel`] | `membound-parallel` | OpenMP-style pool and schedules |
//! | [`image`] | `membound-image` | image substrate and Gaussian kernels |
//! | [`serve`] | `membound-serve` | simulation daemon, job queue, wire protocol |
//!
//! # Quickstart
//!
//! ```
//! use membound::core::{experiment, TransposeConfig, TransposeVariant};
//! use membound::sim::Device;
//!
//! // Fig. 2, one bar: blocked transposition on the simulated VisionFive.
//! let report = experiment::simulate_transpose(
//!     &Device::StarFiveVisionFive.spec(),
//!     TransposeVariant::Blocking,
//!     TransposeConfig::new(1024),
//! )
//! .unwrap();
//! println!("simulated time: {:.3} s", report.seconds);
//! # assert!(report.seconds > 0.0);
//! ```

#![warn(missing_docs)]

pub use membound_core as core;
pub use membound_image as image;
pub use membound_parallel as parallel;
pub use membound_serve as serve;
pub use membound_sim as sim;
pub use membound_trace as trace;
