//! Integration tests spanning the native and simulated execution paths,
//! the schedules, and the device-model ablation helpers.

use membound::core::experiment::{simulate_blur, simulate_transpose};
use membound::core::{
    blur_native, transpose_native, BlurConfig, BlurVariant, SquareMatrix, TransposeConfig,
    TransposeVariant,
};
use membound::image::generate;
use membound::parallel::{Pool, Schedule};
use membound::sim::{Device, Machine, PrefetcherConfig};
use membound::trace::TraceSink;

/// The native and simulated paths must agree on the *ordering* of the
/// transpose ladder: any variant the model says is faster must not be
/// slower natively by more than noise allows. We only check the coarse
/// ordering Naive > {Blocking, ManualBlocking} which holds on any real
/// machine with caches.
#[test]
fn native_and_simulated_orderings_agree_coarsely() {
    // 4096^2 f64 = 128 MiB: larger than the last-level cache of any host
    // this runs on, so the naive column walk genuinely misses. At 1024
    // the whole matrix fits in a big Xeon/EPYC L3 and the ordering
    // inverts, which is noise, not a modelling disagreement.
    let n = 4096;
    let cfg = TransposeConfig::new(n);
    let pool = Pool::host();

    let native_time = |variant| {
        // Best of 3 to cut scheduler noise.
        (0..3)
            .map(|_| {
                let mut m = SquareMatrix::indexed(n);
                transpose_native(&mut m, variant, cfg, &pool).as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let naive = native_time(TransposeVariant::Naive);
    let blocked = native_time(TransposeVariant::ManualBlocking);
    assert!(
        blocked < naive,
        "manual blocking must beat naive natively too: {blocked} vs {naive}"
    );

    let spec = Device::IntelXeon4310T.spec();
    let sim_naive = simulate_transpose(&spec, TransposeVariant::Naive, cfg).unwrap();
    let sim_blocked = simulate_transpose(&spec, TransposeVariant::ManualBlocking, cfg).unwrap();
    assert!(sim_blocked.seconds < sim_naive.seconds);
}

/// The simulated blur ladder and the native blur ladder improve in the
/// same direction for the separable step.
#[test]
fn blur_separability_helps_both_paths() {
    let cfg = BlurConfig::small(129, 161);
    let src = generate::test_pattern(cfg.height, cfg.width, cfg.channels);
    let pool = Pool::host();
    let (_, t_naive) = blur_native(&src, BlurVariant::Naive, &cfg, &pool);
    let (_, t_memory) = blur_native(&src, BlurVariant::Memory, &cfg, &pool);
    assert!(
        t_memory < t_naive,
        "separable+memory must beat 2-D natively: {t_memory:?} vs {t_naive:?}"
    );

    let spec = Device::RaspberryPi4.spec();
    let sim_naive = simulate_blur(&spec, BlurVariant::Naive, cfg);
    let sim_memory = simulate_blur(&spec, BlurVariant::Memory, cfg);
    assert!(sim_memory.seconds < sim_naive.seconds);
}

/// The prefetch ablation DESIGN.md calls out, which doubles as the §4.3
/// StarFive anomaly: on devices whose DRAM keeps up, disabling the
/// prefetcher slows streaming dramatically; on the bandwidth-starved
/// StarFive it changes nothing, because "low memory bandwidth does not
/// allow data to be prepared on time" — occupancy, not latency, is the
/// binding constraint there.
#[test]
fn prefetch_ablation_matches_the_starfive_anomaly() {
    let run = |spec: &membound::sim::DeviceSpec| {
        Machine::new(spec.clone())
            .simulate(1, |_tid, sink| {
                for i in 0..100_000u64 {
                    sink.load(i * 64, 64);
                }
            })
            .cycles
    };
    for &device in Device::all() {
        let spec = device.spec();
        assert!(
            spec.prefetchers
                .iter()
                .any(|p| *p != PrefetcherConfig::None),
            "{device}: every modelled device has a prefetcher"
        );
        let with = run(&spec);
        let without = run(&spec.without_prefetchers());
        let slowdown = without / with;
        if device == Device::StarFiveVisionFive {
            assert!(
                slowdown < 1.1,
                "{device}: prefetch cannot help a saturated channel (x{slowdown:.2})"
            );
        } else {
            assert!(
                slowdown > 1.5,
                "{device}: no-prefetch should be much slower (x{slowdown:.2})"
            );
        }
    }
}

/// Disabling TLB simulation removes the page-walk penalty of a
/// page-crossing column walk.
#[test]
fn tlb_ablation_speeds_up_column_walks() {
    let spec = Device::MangoPiMqPro.spec();
    let run = |spec: &membound::sim::DeviceSpec| {
        Machine::new(spec.clone())
            .simulate(1, |_tid, sink| {
                for i in 0..50_000u64 {
                    sink.load(i * 8192, 8); // one page per access
                }
            })
            .cycles
    };
    let with = run(&spec);
    let without = run(&spec.without_tlb());
    assert!(
        with > without * 1.1,
        "TLB walks must cost something: {with} vs {without}"
    );
}

/// The dynamic schedule fixes the triangular imbalance in simulation:
/// Dynamic is no slower than ManualBlocking with static scheduling on a
/// multi-core device, and strictly faster when the machine is not
/// bandwidth-bound.
#[test]
fn dynamic_schedule_beats_static_on_the_triangle() {
    let spec = Device::IntelXeon4310T.spec();
    let cfg = TransposeConfig::new(2048);
    let manual = simulate_transpose(&spec, TransposeVariant::ManualBlocking, cfg).unwrap();
    let dynamic = simulate_transpose(&spec, TransposeVariant::Dynamic, cfg).unwrap();
    assert!(dynamic.seconds <= manual.seconds * 1.001);
}

/// Simulated kernels respect barrier semantics: the parallel blur's two
/// passes appear as separate phases whose sum is the total.
#[test]
fn parallel_blur_phases_sum_to_total() {
    let spec = Device::RaspberryPi4.spec();
    let report = simulate_blur(&spec, BlurVariant::Parallel, BlurConfig::small(65, 97));
    let phase_sum: f64 = report.phases.iter().map(|p| p.cycles).sum();
    assert!((phase_sum - report.cycles).abs() < 1e-6 * report.cycles.max(1.0));
    assert!(report.phases.len() >= 2);
}

/// Simulator-independent confirmation of §4.2: the blocked variants'
/// reuse distances collapse to the block working set, so an ideal LRU
/// cache of L1 size misses near the compulsory floor — while the
/// element-wise variants miss far above it.
#[test]
fn blocking_collapses_reuse_distances() {
    use membound::core::{TransposeConfig, TransposeTrace, TransposeVariant};
    use membound::trace::reuse::ReuseHistogram;
    use membound::trace::MemAccess;

    struct HistSink(ReuseHistogram);
    impl TraceSink for HistSink {
        fn access(&mut self, access: MemAccess) {
            self.0.record(access.addr);
        }
    }

    let cfg = TransposeConfig::with_block(512, 32);
    let trace = TransposeTrace::new(cfg);
    let misses = |variant: TransposeVariant| {
        let mut sink = HistSink(ReuseHistogram::new(64));
        trace.trace_outer(variant, &mut sink, 0, 0, trace.outer_iterations(variant));
        (
            sink.0.cold_misses(),
            sink.0.misses_for_capacity(32 * 1024 / 64),
        )
    };
    let (naive_cold, naive_misses) = misses(TransposeVariant::Naive);
    let (blocked_cold, blocked_misses) = misses(TransposeVariant::Blocking);
    assert!(
        naive_misses as f64 > naive_cold as f64 * 1.5,
        "naive re-touches far beyond L1: {naive_misses} vs cold {naive_cold}"
    );
    assert_eq!(
        blocked_misses, blocked_cold,
        "blocked variant must miss only compulsorily at L1 size"
    );
}

/// Recorded traces survive the binary codec and replay into the
/// simulator with identical results.
#[test]
fn recorded_traces_replay_identically_through_the_codec() {
    use membound::trace::TraceBuffer;

    // Record a small blur trace.
    let cfg = BlurConfig::small(33, 49);
    let trace = membound::core::BlurTrace::new(cfg);
    let mut recorded = TraceBuffer::new();
    trace.trace_2d(membound::core::BlurVariant::Naive, &mut recorded, 0, 4);

    // Round-trip through the binary format.
    let mut bytes = Vec::new();
    recorded.write_binary(&mut bytes).unwrap();
    let decoded = TraceBuffer::read_binary(&mut bytes.as_slice()).unwrap();

    // Replay both against the same device: bit-identical reports.
    let machine = Machine::new(Device::MangoPiMqPro.spec());
    let run = |buf: &TraceBuffer| {
        machine.simulate(1, |_tid, sink| {
            buf.replay_into(sink);
        })
    };
    let a = run(&recorded);
    let b = run(&decoded);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dram, b.dram);
}

/// Native parallel runs under every schedule produce identical results
/// (scheduling must never change semantics).
#[test]
fn schedules_do_not_change_results() {
    let n = 257; // deliberately not a multiple of anything
    let reference = {
        let mut m = SquareMatrix::indexed(n);
        m.transpose_naive();
        m
    };
    for threads in [1, 3, 8] {
        for schedule in [
            Schedule::Static,
            Schedule::StaticChunk(5),
            Schedule::Dynamic(2),
            Schedule::Guided(1),
        ] {
            // Exercise the pool directly with a hand-rolled parallel
            // transpose over rows.
            let mut m = SquareMatrix::indexed(n);
            {
                let shared = membound::parallel::SharedSlice::new(m.as_mut_slice());
                Pool::new(threads).parallel_for(0..n as u64, schedule, |i| {
                    let i = i as usize;
                    for j in i + 1..n {
                        // SAFETY: disjoint element pairs per row index.
                        unsafe { shared.swap(i * n + j, j * n + i) };
                    }
                });
            }
            assert_eq!(m, reference, "threads={threads} schedule={schedule:?}");
        }
    }
}
