//! Integration tests asserting the *shapes* of the paper's figures on
//! scaled-down workloads: who wins, roughly by what factor, and which
//! qualitative claims of §4 hold in the model. These are the
//! executable form of EXPERIMENTS.md.

use membound::core::experiment::{
    simulate_blur, simulate_stream_survey, simulate_transpose, stream_dram_gbps,
};
use membound::core::{BlurConfig, BlurVariant, TransposeConfig, TransposeVariant};
use membound::sim::Device;
use std::collections::HashMap;

fn dram_gbps(device: Device) -> f64 {
    stream_dram_gbps(&device.spec())
}

/// Fig. 1: the cross-device DRAM bandwidth ordering the paper reports.
#[test]
fn fig1_dram_bandwidth_ordering() {
    let xeon = dram_gbps(Device::IntelXeon4310T);
    let rpi = dram_gbps(Device::RaspberryPi4);
    let mango = dram_gbps(Device::MangoPiMqPro);
    let starfive = dram_gbps(Device::StarFiveVisionFive);
    assert!(xeon > 5.0 * rpi, "Xeon dominates: {xeon} vs {rpi}");
    assert!(rpi > mango, "ARM beats the D1: {rpi} vs {mango}");
    assert!(
        mango > starfive,
        "the paper: D1 DRAM beats JH7100 DRAM ({mango} vs {starfive})"
    );
}

/// Fig. 1: within each device, memory levels get slower outward.
#[test]
fn fig1_levels_get_slower_outward() {
    for &device in Device::paper() {
        let survey = simulate_stream_survey(&device.spec());
        // Compare Copy bandwidth level to level.
        for pair in survey.windows(2) {
            assert!(
                pair[0].gbps[0] > pair[1].gbps[0] * 0.9,
                "{device}: {} ({}) should not be slower than {} ({})",
                pair[0].level,
                pair[0].gbps[0],
                pair[1].level,
                pair[1].gbps[0]
            );
        }
    }
}

/// Fig. 1: the Mango Pi's survey has exactly two rows — its single cache
/// level plus DRAM ("there is only L1 cache ... on the Mango Pi board").
#[test]
fn fig1_mango_pi_has_only_l1_and_dram() {
    let survey = simulate_stream_survey(&Device::MangoPiMqPro.spec());
    let levels: Vec<&str> = survey.iter().map(|r| r.level.as_str()).collect();
    assert_eq!(levels, vec!["L1D", "DRAM"]);
}

fn transpose_ladder(device: Device, n: usize) -> Option<HashMap<TransposeVariant, f64>> {
    let spec = device.spec();
    let cfg = TransposeConfig::new(n);
    let mut out = HashMap::new();
    for v in TransposeVariant::all() {
        out.insert(v, simulate_transpose(&spec, v, cfg)?.seconds);
    }
    Some(out)
}

/// Fig. 2: the optimization ladder helps on every device — the paper's
/// central claim that x86 memory optimizations transfer to RISC-V.
#[test]
fn fig2_ladder_improves_everywhere() {
    for &device in Device::paper() {
        let ladder = transpose_ladder(device, 1024).expect("1024^2 fits everywhere");
        let naive = ladder[&TransposeVariant::Naive];
        let best =
            ladder[&TransposeVariant::Dynamic].min(ladder[&TransposeVariant::ManualBlocking]);
        assert!(
            naive / best > 3.0,
            "{device}: best optimized variant should be >3x naive, got {:.1}",
            naive / best
        );
        // Blocking never loses to plain parallelization of the bad loop.
        assert!(
            ladder[&TransposeVariant::Blocking] <= ladder[&TransposeVariant::Parallel] * 1.05,
            "{device}: blocking should not lose to parallel"
        );
    }
}

/// Fig. 2 bottom panel: the 16384² matrix does not fit on the Mango Pi —
/// and only there.
#[test]
fn fig2_16384_missing_only_on_mango_pi() {
    let cfg = TransposeConfig::new(16384);
    for &device in Device::paper() {
        let fits = device.spec().fits_in_memory(cfg.matrix_bytes());
        assert_eq!(
            fits,
            device != Device::MangoPiMqPro,
            "{device}: fits = {fits}"
        );
    }
}

/// §4.2: despite the Raspberry Pi's much larger STREAM bandwidth, the
/// RISC-V boards' *computation-time* gap stays much smaller than the
/// bandwidth gap (the paper's resource-utilization argument).
#[test]
fn fig2_riscv_time_gap_smaller_than_bandwidth_gap() {
    let rpi_bw = dram_gbps(Device::RaspberryPi4);
    let mango_bw = dram_gbps(Device::MangoPiMqPro);
    let bw_gap = rpi_bw / mango_bw;
    let rpi = transpose_ladder(Device::RaspberryPi4, 1024).unwrap();
    let mango = transpose_ladder(Device::MangoPiMqPro, 1024).unwrap();
    let time_gap =
        mango[&TransposeVariant::ManualBlocking] / rpi[&TransposeVariant::ManualBlocking];
    assert!(
        time_gap < bw_gap * 2.0,
        "time gap {time_gap:.1} should stay within ~the bandwidth gap {bw_gap:.1}"
    );
}

/// Fig. 3: optimization raises the §3.3 utilization metric on every
/// device, and the metric stays in a sane range.
#[test]
fn fig3_utilization_rises_with_optimization() {
    let cfg = TransposeConfig::new(1024);
    for &device in Device::paper() {
        let spec = device.spec();
        let stream = stream_dram_gbps(&spec);
        let util = |v| {
            simulate_transpose(&spec, v, cfg)
                .unwrap()
                .bandwidth_utilization(cfg.nominal_bytes(), stream)
        };
        let naive = util(TransposeVariant::Naive);
        let best = util(TransposeVariant::Dynamic);
        assert!(best > naive, "{device}: {best} vs {naive}");
        assert!(naive > 0.0 && best <= 1.5, "{device}: util out of range");
    }
}

fn blur_ladder(device: Device, cfg: BlurConfig) -> HashMap<BlurVariant, f64> {
    let spec = device.spec();
    BlurVariant::all()
        .into_iter()
        .map(|v| (v, simulate_blur(&spec, v, cfg).seconds))
        .collect()
}

/// Fig. 6: the blur ladder is monotone on every device, Unit-stride gives
/// a modest gain, and Memory beats 1D_kernels clearly.
#[test]
fn fig6_blur_ladder_shape() {
    let cfg = BlurConfig::small(255, 319);
    for &device in Device::paper() {
        let ladder = blur_ladder(device, cfg);
        let naive = ladder[&BlurVariant::Naive];
        let unit = ladder[&BlurVariant::UnitStride];
        let onedim = ladder[&BlurVariant::OneDimKernels];
        let memory = ladder[&BlurVariant::Memory];
        let parallel = ladder[&BlurVariant::Parallel];
        assert!(unit < naive, "{device}: unit-stride should help");
        assert!(naive / unit < 3.0, "{device}: ...but modestly");
        assert!(onedim < unit, "{device}: separability should help");
        assert!(
            memory < onedim,
            "{device}: memory pass restructure should help"
        );
        assert!(parallel <= memory * 1.02, "{device}: parallel never loses");
    }
}

/// Fig. 6: the paper's ~19x Xeon "Memory" speedup comes from
/// vectorization — the Xeon's Memory jump must far exceed the scalar
/// RISC-V boards'.
#[test]
fn fig6_xeon_vectorization_gap() {
    let cfg = BlurConfig::small(255, 319);
    let speedup = |device| {
        let ladder = blur_ladder(device, cfg);
        ladder[&BlurVariant::Naive] / ladder[&BlurVariant::Memory]
    };
    let xeon = speedup(Device::IntelXeon4310T);
    let mango = speedup(Device::MangoPiMqPro);
    assert!(
        xeon > 1.3 * mango,
        "vectorizing Xeon should gain far more: {xeon:.1} vs {mango:.1}"
    );
    assert!(xeon > 15.0, "paper reports >19x on Xeon, got {xeon:.1}");
}

/// §4.3: "speedup is limited by the number of available memory channels" —
/// parallel blur on the 2-core, 1-channel-class StarFive gains little.
#[test]
fn fig6_starfive_parallel_blur_is_bandwidth_capped() {
    let cfg = BlurConfig::small(255, 319);
    let ladder = blur_ladder(Device::StarFiveVisionFive, cfg);
    let gain = ladder[&BlurVariant::Memory] / ladder[&BlurVariant::Parallel];
    assert!(
        gain < 1.6,
        "2 cores on a saturated channel cannot give 2x: got {gain:.2}"
    );
}

/// Fig. 7: Memory raises utilization over 1D_kernels everywhere, and the
/// Xeon's Parallel variant raises it further (its extra memory channels).
#[test]
fn fig7_blur_utilization_shape() {
    let cfg = BlurConfig::small(255, 319);
    for &device in Device::paper() {
        let spec = device.spec();
        let stream = stream_dram_gbps(&spec);
        let util =
            |v| simulate_blur(&spec, v, cfg).bandwidth_utilization(cfg.nominal_bytes(), stream);
        let onedim = util(BlurVariant::OneDimKernels);
        let memory = util(BlurVariant::Memory);
        assert!(memory > onedim, "{device}: {memory} vs {onedim}");
    }
    let spec = Device::IntelXeon4310T.spec();
    let stream = stream_dram_gbps(&spec);
    let util = |v| simulate_blur(&spec, v, cfg).bandwidth_utilization(cfg.nominal_bytes(), stream);
    assert!(
        util(BlurVariant::Parallel) > 2.0 * util(BlurVariant::Memory),
        "Xeon parallel blur should lift utilization substantially"
    );
}
