//! Process-boundary tests of the `membound-serve` daemon: the real
//! binary on a real socket, killed and restarted for the crash-safety
//! scenarios that in-process tests (`crates/serve/tests/daemon.rs`)
//! cannot express.
//!
//! * `SIGKILL` mid-run: the daemon dies with cells half-inserted; a
//!   restarted daemon on the same `--cache-dir` reproduces the serial
//!   digest, answers the already-simulated cells from the cache, and a
//!   further resubmission is fully warm (`misses=0`).
//! * `SIGTERM` with a job running: the daemon drains — the job streams
//!   to completion, the exit code is 0 and the socket file is removed.
//! * The `membound-cli serve` client round-trips the same digest over
//!   the wire as an in-process serial run.

#![cfg(unix)]

use membound::core::runner::Engine;
use membound::serve::client::{SubmitOptions, SubmitOutcome};
use membound::serve::{Client, JobSpec};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SERVE_BIN: &str = env!("CARGO_BIN_EXE_membound-serve");
const CLI_BIN: &str = env!("CARGO_BIN_EXE_membound-cli");

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("membound_serve_proc")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_daemon(socket: &Path, jobs: u32, cache_dir: Option<&Path>) -> Child {
    let mut cmd = Command::new(SERVE_BIN);
    cmd.arg("--socket")
        .arg(socket)
        .args(["--jobs", &jobs.to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    cmd.spawn().expect("spawn membound-serve")
}

/// Connect and complete a round-trip, retrying while the daemon boots
/// (or re-binds over a stale socket file left by a kill).
fn connect_within(socket: &Path, secs: u64) -> Client {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Ok(mut client) = Client::connect(socket) {
            if client.status(None).is_ok() {
                return client;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never became reachable on {socket:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn ladder(sizes: &[usize]) -> JobSpec {
    JobSpec::TransposeLadder {
        sizes: sizes.to_vec(),
        block: 16,
        device: Some("mango".into()),
    }
}

fn serial_digest(spec: &JobSpec) -> String {
    Engine::new(1)
        .run(&spec.matrix().expect("valid spec"))
        .combined_digest()
}

#[test]
fn sigkill_mid_run_then_restart_answers_from_the_surviving_cache() {
    let dir = tmp_dir("sigkill");
    let socket = dir.join("mb.sock");
    let cache = dir.join("cache");
    let spec = ladder(&[96, 128]);
    let want = serial_digest(&spec);

    // First daemon: kill it the instant the third cell has streamed.
    // Cache inserts land before a record reaches the stream, so at
    // least those cells survive the kill as warm entries.
    let mut child = spawn_daemon(&socket, 2, Some(&cache));
    let mut client = connect_within(&socket, 30);
    let mut cell_lines = 0u32;
    let interrupted = client.submit(&spec, &SubmitOptions::default(), |line| {
        if line.starts_with("{\"kind\":\"cell\"") {
            cell_lines += 1;
            if cell_lines == 3 {
                child.kill().expect("SIGKILL the daemon");
            }
        }
    });
    assert!(
        interrupted.is_err(),
        "the killed daemon cannot finish the exchange: {interrupted:?}"
    );
    assert!(cell_lines >= 3, "kill was triggered by streamed telemetry");
    child.wait().expect("reap killed daemon");
    assert!(socket.exists(), "SIGKILL leaves the stale socket file");

    // Second daemon: binds over the stale socket, reads the surviving
    // cache, and reproduces the canonical digest without re-simulating
    // what the first run persisted.
    let mut child = spawn_daemon(&socket, 2, Some(&cache));
    let mut client = connect_within(&socket, 30);
    match client
        .submit(&spec, &SubmitOptions::default(), |_| {})
        .expect("submit exchange")
    {
        SubmitOutcome::Done {
            digest,
            cells,
            cached,
            misses,
            ..
        } => {
            assert_eq!(digest.expect("digest"), want, "restart reproduces serial");
            assert!(cached >= 3, "cells inserted before the kill hit warm");
            assert_eq!(misses, cells - cached);
        }
        other => panic!("expected Done, got {other:?}"),
    }

    // Third submission: everything is cached now.
    match client
        .submit(&spec, &SubmitOptions::default(), |_| {})
        .expect("submit exchange")
    {
        SubmitOutcome::Done { digest, misses, .. } => {
            assert_eq!(misses, 0, "fully warm resubmission");
            assert_eq!(digest.expect("digest"), want);
        }
        other => panic!("expected Done, got {other:?}"),
    }

    client.shutdown().expect("shutdown request");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean drain exits 0: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_the_running_job_and_removes_the_socket() {
    let dir = tmp_dir("sigterm");
    let socket = dir.join("mb.sock");
    let spec = ladder(&[64]);
    let want = serial_digest(&spec);

    let mut child = spawn_daemon(&socket, 2, None);
    let pid = child.id().to_string();
    let mut client = connect_within(&socket, 30);

    // A job delayed at its first cell is mid-run when SIGTERM lands;
    // drain semantics require it to finish and stream out normally.
    let options = SubmitOptions {
        failpoint: Some("cell:delay=1000@0".into()),
        ..SubmitOptions::default()
    };
    let mut sent_term = false;
    let outcome = client
        .submit(&spec, &options, |line| {
            if !sent_term && line.starts_with("{\"kind\":\"header\"") {
                sent_term = true;
                let ok = Command::new("kill")
                    .args(["-TERM", &pid])
                    .status()
                    .expect("run kill");
                assert!(ok.success(), "kill -TERM failed");
            }
        })
        .expect("drain finishes the running job");
    assert!(sent_term, "SIGTERM was sent while the job streamed");
    match outcome {
        SubmitOutcome::Done { digest, .. } => {
            assert_eq!(digest.expect("digest"), want, "drained job is intact");
        }
        other => panic!("expected Done, got {other:?}"),
    }

    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "SIGTERM drain exits 0: {status:?}");
    assert!(!socket.exists(), "socket file removed on drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_client_round_trips_the_serial_digest() {
    let dir = tmp_dir("cli");
    let socket = dir.join("mb.sock");
    let spec = ladder(&[96]);
    let want = serial_digest(&spec);

    let mut child = spawn_daemon(&socket, 2, None);
    drop(connect_within(&socket, 30));

    let output = Command::new(CLI_BIN)
        .args([
            "serve",
            "submit",
            "--socket",
            socket.to_str().expect("utf8 socket path"),
            "--figure",
            "ladder",
            "--sizes",
            "96",
            "--device",
            "mango",
            "--quiet",
        ])
        .output()
        .expect("run membound-cli serve submit");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "cli submit failed: {stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains(&format!("digest={want}")),
        "cli summary carries the serial digest {want}: {stdout}"
    );

    let status = Command::new(CLI_BIN)
        .args([
            "serve",
            "shutdown",
            "--socket",
            socket.to_str().expect("utf8 socket path"),
        ])
        .status()
        .expect("run membound-cli serve shutdown");
    assert!(status.success(), "cli shutdown failed");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean drain exits 0: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
