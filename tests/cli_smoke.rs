//! End-to-end smoke tests for the `membound-cli` analytic surface:
//!
//! * `trace-ir` dumps a kernel's folded IR with a coverage estimate —
//!   near-total for a TLB-off streaming loop, zero with translation on
//!   (the fast-forward translation gate, DESIGN.md §15);
//! * `analytic-gate` proves digest identity between the analytic
//!   executor and forced replay, non-vacuously;
//! * `--analytic` / `--no-analytic` are accepted by the simulating
//!   commands and do not change reported results.

use std::process::Command;

const CLI_BIN: &str = env!("CARGO_BIN_EXE_membound-cli");

#[derive(serde::Deserialize)]
struct TraceIrRow {
    variant: String,
    nodes: u64,
    repeat: u64,
    coverage_percent: f64,
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(CLI_BIN)
        .args(args)
        .output()
        .expect("run membound-cli");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn trace_ir_folds_stream_and_estimates_coverage() {
    let (stdout, stderr, ok) = run(&[
        "trace-ir", "stream", "--device", "xeon", "--no-tlb", "--json",
    ]);
    assert!(ok, "trace-ir failed: {stderr}");
    let rows: Vec<TraceIrRow> = serde_json::from_str(stdout.trim()).expect("json rows");
    assert_eq!(rows.len(), 4, "one row per STREAM op");
    for row in &rows {
        assert!(row.nodes > 0, "{}: empty program", row.variant);
        assert!(
            row.repeat >= 1,
            "{}: the per-line loop must fold into a Repeat",
            row.variant
        );
        assert!(
            row.coverage_percent > 90.0,
            "{}: TLB-off unit-stride loops are the analytic headline case, got {:.1}%",
            row.variant,
            row.coverage_percent
        );
    }

    // Same kernel with translation on: the shape gates reject every
    // nonzero-stride loop, so the estimate collapses to zero.
    let (stdout, stderr, ok) = run(&["trace-ir", "stream", "--device", "xeon", "--json"]);
    assert!(ok, "trace-ir failed: {stderr}");
    let rows: Vec<TraceIrRow> = serde_json::from_str(stdout.trim()).expect("json rows");
    assert!(rows.iter().all(|r| r.coverage_percent == 0.0));
}

#[test]
fn trace_ir_requires_a_known_kernel() {
    let (_, _, ok) = run(&["trace-ir"]);
    assert!(!ok);
    let (_, _, ok) = run(&["trace-ir", "fft"]);
    assert!(!ok);
}

#[test]
fn analytic_gate_passes_on_a_subset() {
    let (stdout, stderr, ok) = run(&[
        "analytic-gate",
        "--device",
        "mango",
        "--variant",
        "naive",
        "-n",
        "256",
    ]);
    assert!(ok, "analytic-gate failed: {stdout}\n{stderr}");
    assert!(
        stdout.contains("analytic gate passed"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn analytic_flags_do_not_change_reported_results() {
    let (on, stderr, ok) = run(&[
        "stream",
        "--device",
        "mango",
        "--op",
        "triad",
        "--level",
        "dram",
        "--json",
        "--analytic",
    ]);
    assert!(ok, "stream --analytic failed: {stderr}");
    let (off, stderr, ok) = run(&[
        "stream",
        "--device",
        "mango",
        "--op",
        "triad",
        "--level",
        "dram",
        "--json",
        "--no-analytic",
    ]);
    assert!(ok, "stream --no-analytic failed: {stderr}");
    assert_eq!(on, off, "analytic execution must be result-invisible");
}
