//! Offline stand-in for the `criterion` crate.
//!
//! Provides the group/bench API surface the workspace's benches use and
//! times each benchmark with a fixed-iteration wall-clock loop. There is
//! no statistical analysis, warm-up calibration, or HTML report — each
//! benchmark prints one line with the mean time per iteration (plus
//! throughput when configured).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by a single parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Identify a benchmark by a function name and parameter value.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the closure under test a known number of times.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        let secs = per_iter.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if secs > 0.0 => {
                format!("  {:>10.3} GiB/s", b as f64 / secs / (1u64 << 30) as f64)
            }
            Some(Throughput::Elements(e)) if secs > 0.0 => {
                format!("  {:>10.3} Melem/s", e as f64 / secs / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3} us/iter{}",
            self.name,
            id.to_string(),
            secs * 1e6,
            rate
        );
        let _ = &self.criterion;
    }

    /// End the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &2u64, |b, &two| {
            b.iter(|| {
                runs += two;
                runs
            })
        });
        group.finish();
        assert_eq!(runs, 6);
    }
}
