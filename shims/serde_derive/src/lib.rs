//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; the input item is parsed directly from the
//! `proc_macro::TokenStream`. The parser handles exactly the shapes this
//! workspace derives on:
//!
//! * structs with named fields (any visibility; `#[serde(default)]` is
//!   honoured on deserialization, other attributes skipped),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Generics are not supported — none of the derived types use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: `(name, has #[serde(default)])`.
type Field = (String, bool);

/// Field list of a braced item.
type Fields = Vec<Field>;

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Fields),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip attributes (`#[...]`, including doc comments) starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    let (next, _) = scan_attrs(toks, i);
    i = next;
    i
}

/// Skip attributes starting at `i`, reporting whether one of them is
/// `#[serde(default)]`.
fn scan_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= is_serde_default(&g.stream());
                i += 2;
            }
            _ => break,
        }
    }
    (i, has_default)
}

/// Does an attribute body (the tokens inside `#[...]`) spell
/// `serde(default)`?
fn is_serde_default(body: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(g)]
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            matches!(inner.as_slice(), [TokenTree::Ident(id)] if id.to_string() == "default")
        }
        _ => false,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse the named fields of a brace-delimited body: `attrs vis name: Type,`.
/// Types are skipped with angle-bracket depth tracking, so `Vec<(A, B)>`
/// and `Option<Vec<T>>` work.
fn parse_named_fields(body: &TokenStream) -> Fields {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (next, has_default) = scan_attrs(&toks, i);
        i = skip_vis(&toks, next);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("expected field name, found {:?}", toks[i]);
        };
        fields.push((name.to_string(), has_default));
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a paren-delimited tuple body (top-level commas).
fn count_tuple_fields(body: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (k, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if k + 1 == toks.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("expected variant name, found {:?}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "serde shim derive does not support generic types ({name})"
        );
    }
    let body = match &toks[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body for {name}, found {other:?}"),
    };
    match kw.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Derive `serde::Serialize` (value-tree model) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for (f, _) in &fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let pat = binders.join(", ");
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat = fields
                            .iter()
                            .map(|(f, _)| f.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|(f, _)| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    out.parse().expect("derived Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree model) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for (f, has_default) in &fields {
                let helper = if *has_default {
                    "field_or_default"
                } else {
                    "field"
                };
                inits.push_str(&format!("{f}: ::serde::{helper}(obj, \"{f}\")?,\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = value.as_object().ok_or_else(|| ::serde::Error::expected(\"map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}::{vname}\"))?;\n\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n} fields for {name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|(f, has_default)| {
                                let helper = if *has_default {
                                    "field_or_default"
                                } else {
                                    "field"
                                };
                                format!("{f}: ::serde::{helper}(obj, \"{f}\")?,")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let obj = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"map for {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            items.join(" ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(s) = value.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{s}}`\"))),\n\
                 }}\n}}\n\
                 let obj = value.as_object().ok_or_else(|| ::serde::Error::expected(\"string or map for {name}\"))?;\n\
                 if obj.len() != 1 {{ return ::std::result::Result::Err(::serde::Error::expected(\"single-key map for {name}\")); }}\n\
                 let (tag, inner) = &obj[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{tag}}`\"))),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    };
    out.parse().expect("derived Deserialize impl parses")
}
