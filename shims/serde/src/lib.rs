//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace ships
//! this minimal replacement instead of the real serde. It implements a
//! *value-tree* data model rather than serde's visitor architecture: a
//! [`Serialize`] type renders itself into a [`Value`], a [`Deserialize`]
//! type reconstructs itself from one. The `serde_json` shim next door
//! turns values into JSON text and back.
//!
//! The public surface mirrors exactly what this workspace uses: the two
//! traits, the `derive` feature re-exporting `#[derive(Serialize,
//! Deserialize)]`, and implementations for the primitive/std types that
//! appear in report and telemetry structs. Enum representation follows
//! serde's externally-tagged default, so the emitted JSON matches what
//! the real serde would produce for these types.

#![warn(missing_docs)]

use std::fmt;

/// A parsed/serializable data tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// View as an object (ordered key/value pairs).
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// View as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// View as a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts integers; `null` maps to NaN, the
    /// writer's encoding of non-finite floats).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Look up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X" error.
    #[must_use]
    pub fn expected(what: &str) -> Self {
        Self::custom(format!("expected {what}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Render into the data model.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the data model.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match the type.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Derive-internal helper: extract and deserialize a struct field.
///
/// A missing key is passed through as `null`, so `Option` fields tolerate
/// absence exactly like serde's default.
///
/// # Errors
///
/// Propagates the field type's deserialization error, annotated with the
/// field name.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
}

/// Look up `key` in an object's field list for a `#[serde(default)]`
/// field: a missing (or `null`) key yields `T::default()` instead of an
/// error, matching serde's behaviour for that attribute.
///
/// # Errors
///
/// Propagates the field type's deserialization error, annotated with the
/// field name.
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(T::default()),
        Some((_, v)) if v.is_null() => Ok(T::default()),
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::expected("integer in range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let u = value
            .as_u64()
            .ok_or_else(|| Error::expected("unsigned integer"))?;
        usize::try_from(u).map_err(|_| Error::expected("integer in range"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer"))?;
                <$t>::try_from(i).map_err(|_| Error::expected("integer in range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let i = value.as_i64().ok_or_else(|| Error::expected("integer"))?;
        isize::try_from(i).map_err(|_| Error::expected("integer in range"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::expected("boolean"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64().ok_or_else(|| Error::expected("number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| Error::expected("array"))?;
        if arr.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                arr.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, v) in out.iter_mut().zip(arr) {
            *slot = T::from_value(v)?;
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| Error::expected("array"))?;
        if arr.len() != 2 {
            return Err(Error::expected("2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| Error::expected("array"))?;
        if arr.len() != 3 {
            return Err(Error::expected("3-element array"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absence_and_null_map_to_none() {
        let obj = vec![("present".to_owned(), Value::UInt(3))];
        let present: Option<u64> = field(&obj, "present").unwrap();
        let absent: Option<u64> = field(&obj, "absent").unwrap();
        assert_eq!(present, Some(3));
        assert_eq!(absent, None);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(u8::from_value(&Value::UInt(255)).unwrap(), 255);
        assert_eq!(i32::from_value(&Value::Int(-5)).unwrap(), -5);
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let a = [1.0_f64, 2.0, 3.0, 4.0];
        let v = a.to_value();
        let back: [f64; 4] = Deserialize::from_value(&v).unwrap();
        assert_eq!(a, back);
    }
}
