//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range/[`any`]/[`Just`]/tuple/`prop_map`/
//! [`prop_oneof!`]/`collection::vec` strategies, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the assertion message, and cases are generated from a
//! deterministic per-test PRNG (seeded from the test name), so failures
//! reproduce exactly across runs.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic splitmix64 PRNG used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from raw state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed deterministically from a test name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — not a failure.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Per-test configuration (mirrors the real `ProptestConfig` field used
/// here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = u64::from(self.end - self.start);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32);

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.f64_in(f64::from(self.start), f64::from(self.end)) as f32
    }
}

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64_in(-1e12, 1e12)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()` and friends).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Uniform choice between boxed alternative strategies (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; must gain at least one arm before sampling.
    #[must_use]
    pub fn empty() -> Self {
        Self { arms: Vec::new() }
    }

    /// Add an alternative.
    pub fn push<S: Strategy<Value = T> + 'static>(&mut self, s: S) {
        self.arms.push(Box::new(s));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].sample(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Define property tests: each function runs `cases` times with freshly
/// sampled arguments.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}", stringify!($name), _case, msg)
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert within a property body; failure reports the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut union = $crate::Union::empty();
        $(union.push($arm);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1u64), (5u64..8).prop_map(|v| v * 10)];
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || (50..80).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let s = collection::vec(0u32..5, 2..6);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
