//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::utils::CachePadded`; this shim
//! provides exactly that, with the same 128-byte alignment crossbeam
//! picks on x86-64 and aarch64 (two 64-byte lines, covering adjacent-line
//! prefetchers).

#![warn(missing_docs)]

/// Utilities (mirrors `crossbeam::utils`).
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share (adjacent-prefetched) cache lines.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value`.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwrap the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn alignment_and_access() {
            let p = CachePadded::new(7u64);
            assert_eq!(*p, 7);
            assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
            assert_eq!(p.into_inner(), 7);
        }
    }
}
