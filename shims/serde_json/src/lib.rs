//! Offline stand-in for the `serde_json` crate.
//!
//! Works over the value-tree model of the sibling `serde` shim:
//! [`to_string`]/[`to_string_pretty`] render a [`Value`] tree to JSON
//! text, [`from_str`] parses JSON text back into any `Deserialize` type.
//!
//! Matches real serde_json conventions where they are observable here:
//! two-space pretty indentation, `null` for non-finite floats, and a
//! trailing `.0` on integral floats.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Render any serializable value to compact JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render any serializable value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.i)));
    }
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    from_str(s)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn push_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.i))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if self.s[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte slice is valid UTF-8).
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.i + 4 > self.s.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = Value::Object(vec![
            ("a".to_owned(), Value::UInt(1)),
            (
                "b".to_owned(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_owned(), Value::Str("x\"y\n".to_owned())),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":[true,null],\"c\":\"x\\\"y\\n\"}");
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&5.0_f64).unwrap(), "5.0");
        assert_eq!(to_string(&0.5_f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let x: f64 = from_str("2.5e3").unwrap();
        assert_eq!(x, 2500.0);
    }

    #[test]
    fn negative_and_large_integers() {
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
