//! Heterogeneous task execution over the pool.
//!
//! [`Pool::parallel_for`](crate::Pool::parallel_for) handles uniform
//! loops; the experiment engine instead has a *matrix* of unrelated
//! simulations of wildly different costs. [`Pool::run_tasks`] takes a
//! vector of boxed closures, feeds them to the pool's threads through an
//! atomic work queue (longest-first order is the caller's job), catches
//! panics per task, and slots every result back into the task's original
//! index — so the output order is deterministic and independent of the
//! thread count or scheduling jitter.

use crate::pool::Pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A unit of work for [`Pool::run_tasks`]: any one-shot closure.
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A task panicked; holds the panic payload rendered as a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic message (`"<non-string panic payload>"` when the payload
    /// was not a string).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Render a caught panic payload as a message string, the same way
/// [`Pool::run_tasks`] does for [`TaskPanic`]. Public so layers that run
/// their own `catch_unwind` (e.g. the experiment engine's per-attempt
/// retry loop) report panics identically to the pool.
#[must_use]
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Pool {
    /// Execute every task on the pool's threads and return their results
    /// in task order.
    ///
    /// Tasks are claimed from an atomic queue, so the *assignment* of
    /// tasks to threads is timing-dependent, but each result lands in the
    /// slot of the task that produced it: the returned vector is
    /// identical for any thread count. A panicking task yields
    /// `Err(TaskPanic)` in its slot without poisoning its worker — the
    /// thread moves on to the next task — or the other results.
    pub fn run_tasks<'a, T: Send + 'a>(
        &self,
        tasks: Vec<Task<'a, T>>,
    ) -> Vec<Result<T, TaskPanic>> {
        self.run_tasks_with(tasks, |_, _| {})
    }

    /// [`run_tasks`](Pool::run_tasks) with a completion hook: as each
    /// task finishes, `on_complete(index, &result)` runs *on the worker
    /// thread that executed it*, before the next task is claimed.
    ///
    /// This is the substrate for streaming telemetry (DESIGN.md §11):
    /// a run-log writer can observe every outcome the moment it exists
    /// instead of waiting for the whole task vector. Completion order is
    /// timing-dependent — the hook sees task indices out of order and
    /// must do its own reordering if it needs any. A panic inside the
    /// hook is *not* contained (it would mean the observer, not the
    /// workload, is broken).
    pub fn run_tasks_with<'a, T: Send + 'a, F>(
        &self,
        tasks: Vec<Task<'a, T>>,
        on_complete: F,
    ) -> Vec<Result<T, TaskPanic>>
    where
        F: Fn(usize, &Result<T, TaskPanic>) + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Hand out tasks through per-slot mutexes: FnOnce must be *moved*
        // out, and a Mutex<Option<..>> is the cheapest sound way to do
        // that from &self across scoped threads.
        let queue: Vec<Mutex<Option<Task<'a, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<Result<T, TaskPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let on_complete = &on_complete;

        self.run(|_tid| loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= n {
                break;
            }
            let task = queue[k]
                .lock()
                .expect("task queue poisoned")
                .take()
                .expect("task claimed twice");
            let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(|payload| TaskPanic {
                message: panic_message(payload),
            });
            on_complete(k, &outcome);
            *slots[k].lock().expect("result slot poisoned") = Some(outcome);
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(k, slot)| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .unwrap_or_else(|| panic!("task {k} produced no result"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = Pool::new(4);
        let tasks: Vec<Task<'_, usize>> = (0..64)
            .map(|i| {
                let b: Task<'_, usize> = Box::new(move || {
                    // Vary the cost so the claim order scrambles.
                    std::thread::sleep(std::time::Duration::from_micros((64 - i) as u64));
                    i * i
                });
                b
            })
            .collect();
        let results = pool.run_tasks(tasks);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * i);
        }
    }

    #[test]
    fn a_panicking_task_is_contained() {
        let pool = Pool::new(3);
        let tasks: Vec<Task<'_, u32>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom {}", 42)),
            Box::new(|| 3),
        ];
        let results = pool.run_tasks(tasks);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1].as_ref().unwrap_err().message, "boom 42",);
        assert_eq!(results[2], Ok(3));
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let build = || -> Vec<Task<'static, u64>> {
            (0..33)
                .map(|i| {
                    let b: Task<'static, u64> = Box::new(move || i * 7 + 1);
                    b
                })
                .collect()
        };
        let serial = Pool::new(1).run_tasks(build());
        let parallel = Pool::new(8).run_tasks(build());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let results: Vec<Result<u8, _>> = Pool::new(2).run_tasks(Vec::new());
        assert!(results.is_empty());
    }

    #[test]
    fn completion_hook_sees_every_result_exactly_once() {
        use std::sync::Mutex;
        let pool = Pool::new(4);
        let tasks: Vec<Task<'_, usize>> = (0..32)
            .map(|i| {
                let b: Task<'_, usize> = Box::new(move || {
                    if i == 7 {
                        panic!("seven");
                    }
                    i
                });
                b
            })
            .collect();
        let seen = Mutex::new(Vec::new());
        let results = pool.run_tasks_with(tasks, |k, r| {
            seen.lock().unwrap().push((k, r.is_ok()));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let expected: Vec<(usize, bool)> = (0..32).map(|k| (k, k != 7)).collect();
        assert_eq!(seen, expected);
        assert_eq!(results.len(), 32);
        assert!(results[7].is_err());
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..100).collect();
        let pool = Pool::new(4);
        let tasks: Vec<Task<'_, u64>> = data
            .chunks(10)
            .map(|chunk| {
                let b: Task<'_, u64> = Box::new(move || chunk.iter().sum());
                b
            })
            .collect();
        let total: u64 = pool.run_tasks(tasks).into_iter().map(Result::unwrap).sum();
        assert_eq!(total, 99 * 100 / 2);
    }
}
