//! Shared worker-thread accounting across nested parallel layers.
//!
//! The reproduction parallelizes on two levels: the experiment engine
//! shards *cells* across workers, and inside each cell the simulator
//! fans the per-core trace replay out across workers too. Without a
//! shared ledger the two layers multiply — `--jobs 8` on a matrix of
//! 10-core Xeon cells would burst to 80 host threads. [`JobBudget`] is
//! that ledger: one atomic pool of worker *slots* sized by `--jobs`,
//! from which every layer leases the threads it wants and to which the
//! lease returns them on drop.
//!
//! The accounting is intentionally one-directional and race-tolerant:
//! a lease grabs *up to* the requested count and the caller simply runs
//! with fewer workers (down to serial) when the pool is dry. Which
//! layer wins a race for spare slots changes only host wall time, never
//! simulated results — the simulator is deterministic and both layers
//! slot results by index (see DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use membound_parallel::JobBudget;
//!
//! let budget = JobBudget::new(8);
//! let outer = budget.lease(3); // e.g. three experiment cells
//! assert_eq!(outer.granted(), 3);
//! let inner = budget.lease(10); // a 10-core device inside one cell
//! assert_eq!(inner.granted(), 5); // only the spare slots
//! drop(inner);
//! assert_eq!(budget.available(), 5); // returned on drop
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A shared pool of host worker-thread slots.
///
/// Cloning is cheap and shares the pool: every layer of a run holds a
/// clone of the same budget. A slot stands for one *concurrently
/// running* worker thread; a layer that runs work on its own (already
/// accounted-for) thread leases only the extra workers it spawns.
#[derive(Debug, Clone)]
pub struct JobBudget {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    total: u32,
    spare: AtomicU32,
}

impl JobBudget {
    /// A budget of `total` worker slots (clamped to at least one).
    #[must_use]
    pub fn new(total: u32) -> Self {
        let total = total.max(1);
        Self {
            inner: Arc::new(Inner {
                total,
                spare: AtomicU32::new(total),
            }),
        }
    }

    /// A budget with no slots to hand out: every `lease` is granted
    /// zero workers, so budget-aware layers degrade to running serially
    /// on the caller's thread. This is the default for standalone
    /// simulator use — callers opt into fan-out by passing a real
    /// budget.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            inner: Arc::new(Inner {
                total: 0,
                spare: AtomicU32::new(0),
            }),
        }
    }

    /// Total slots the budget was created with.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.inner.total
    }

    /// Slots currently unleased.
    #[must_use]
    pub fn available(&self) -> u32 {
        self.inner.spare.load(Ordering::Acquire)
    }

    /// Block until at least `min` slots can be leased (then take up to
    /// `want`), or until `keep_waiting` returns false — whichever comes
    /// first. Returns `None` when the wait was abandoned.
    ///
    /// This is the admission-control primitive of a *job scheduler*
    /// sharing one budget across many concurrent runs (see
    /// `membound-serve`): a job is dispatched only once it holds a seat
    /// slot, so N queued jobs drain through the budget instead of
    /// oversubscribing the host. Release is notification-free (slot
    /// returns are lock-free atomics), so the wait polls on a short
    /// sleep — milliseconds of dispatch latency against jobs that run
    /// for seconds.
    ///
    /// `min` is clamped to at least 1; a `min` above `total()` would
    /// never be satisfiable and is clamped down to `total().max(1)`
    /// (on a [`JobBudget::serial`] budget the wait is abandoned
    /// immediately — a budget with no slots can never seat a job).
    #[must_use]
    pub fn lease_blocking(
        &self,
        min: u32,
        want: u32,
        keep_waiting: impl Fn() -> bool,
    ) -> Option<Lease> {
        if self.inner.total == 0 {
            return None;
        }
        let min = min.clamp(1, self.inner.total);
        loop {
            if self.available() >= min {
                let lease = self.lease(want.max(min));
                if lease.granted() >= min {
                    return Some(lease);
                }
                // Lost the race; put the partial grab back and retry.
                drop(lease);
            }
            if !keep_waiting() {
                return None;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Atomically take up to `want` slots; the returned lease reports
    /// how many were actually granted (possibly zero) and returns them
    /// to the pool when dropped.
    #[must_use]
    pub fn lease(&self, want: u32) -> Lease {
        let mut cur = self.inner.spare.load(Ordering::Acquire);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return Lease {
                    inner: Arc::clone(&self.inner),
                    granted: 0,
                };
            }
            match self.inner.spare.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Lease {
                        inner: Arc::clone(&self.inner),
                        granted: take,
                    }
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Worker slots held out of a [`JobBudget`]; returned on drop.
#[derive(Debug)]
pub struct Lease {
    inner: Arc<Inner>,
    granted: u32,
}

impl Lease {
    /// How many of the requested slots were actually granted.
    #[must_use]
    pub fn granted(&self) -> u32 {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.inner.spare.fetch_add(self.granted, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_takes_at_most_whats_available() {
        let b = JobBudget::new(4);
        assert_eq!(b.total(), 4);
        let a = b.lease(3);
        assert_eq!(a.granted(), 3);
        assert_eq!(b.available(), 1);
        let c = b.lease(3);
        assert_eq!(c.granted(), 1);
        assert_eq!(b.available(), 0);
        let d = b.lease(1);
        assert_eq!(d.granted(), 0);
    }

    #[test]
    fn dropping_a_lease_returns_its_slots() {
        let b = JobBudget::new(2);
        let a = b.lease(2);
        assert_eq!(b.available(), 0);
        drop(a);
        assert_eq!(b.available(), 2);
        assert_eq!(b.lease(5).granted(), 2);
    }

    #[test]
    fn serial_budget_never_grants() {
        let b = JobBudget::serial();
        assert_eq!(b.total(), 0);
        assert_eq!(b.lease(8).granted(), 0);
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn zero_want_is_a_no_op() {
        let b = JobBudget::new(3);
        let l = b.lease(0);
        assert_eq!(l.granted(), 0);
        assert_eq!(b.available(), 3);
    }

    #[test]
    fn new_clamps_to_one_slot() {
        assert_eq!(JobBudget::new(0).total(), 1);
    }

    #[test]
    fn clones_share_one_pool() {
        let a = JobBudget::new(4);
        let b = a.clone();
        let held = a.lease(3);
        assert_eq!(b.available(), 1);
        drop(held);
        assert_eq!(b.available(), 4);
    }

    #[test]
    fn lease_blocking_waits_for_a_seat_and_respects_abandonment() {
        let b = JobBudget::new(2);
        // Seats available: returns immediately with at least `min`.
        let seat = b.lease_blocking(1, 1, || true).expect("seat available");
        assert_eq!(seat.granted(), 1);

        // Pool exhausted: the wait observes `keep_waiting` and gives up.
        let rest = b.lease(5);
        assert_eq!(rest.granted(), 1);
        assert!(b.lease_blocking(1, 1, || false).is_none());

        // A blocked waiter is seated once a slot comes home.
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| b.lease_blocking(1, 1, || true));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rest);
            let seated = waiter.join().expect("waiter thread");
            assert_eq!(seated.expect("seated after release").granted(), 1);
        });

        // A serial budget can never seat anyone.
        assert!(JobBudget::serial().lease_blocking(1, 1, || true).is_none());
        drop(seat);
    }

    #[test]
    fn concurrent_leases_never_oversubscribe() {
        let b = JobBudget::new(5);
        let peak = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let l = b.lease(3);
                        let outstanding = 5 - b.available();
                        peak.fetch_max(outstanding, Ordering::Relaxed);
                        assert!(outstanding <= 5, "oversubscribed: {outstanding}");
                        drop(l);
                    }
                });
            }
        });
        assert_eq!(b.available(), 5, "all slots must come home");
        assert!(peak.load(Ordering::Relaxed) <= 5);
    }
}
