//! OpenMP-style loop schedules and deterministic scheduling plans.
//!
//! The paper uses exactly two scheduling modes: the OpenMP default
//! (`schedule(static)`) for the "Parallel"/"Blocking"/"Manual_blocking"
//! variants, and `schedule(dynamic)` for the "Dynamic" transpose variant,
//! which §4.2 introduces to fix the triangular-loop imbalance.
//!
//! Native execution uses these schedules with real threads (see
//! [`crate::Pool`]). Simulated execution needs a *deterministic* iteration
//! → core assignment, so [`Schedule::plan`] reproduces each schedule's
//! assignment given a per-iteration weight function: static assignment is
//! computed exactly, and dynamic/guided assignment is derived by greedy
//! earliest-finishing-thread simulation — the same outcome an ideal
//! work-queue would produce.

use std::ops::Range;

/// An OpenMP-style loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous near-equal blocks, one per thread (OpenMP
    /// `schedule(static)` without a chunk size).
    Static,
    /// Fixed-size chunks dealt round-robin (OpenMP `schedule(static, c)`).
    StaticChunk(u64),
    /// Fixed-size chunks grabbed by idle threads (OpenMP
    /// `schedule(dynamic, c)`; `Dynamic(1)` is the paper's choice).
    Dynamic(u64),
    /// Exponentially shrinking chunks grabbed by idle threads (OpenMP
    /// `schedule(guided)` with the given minimum chunk).
    Guided(u64),
}

impl Schedule {
    /// Display name matching the paper's variant labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Static => "static",
            Schedule::StaticChunk(_) => "static,chunk",
            Schedule::Dynamic(_) => "dynamic",
            Schedule::Guided(_) => "guided",
        }
    }

    /// Split `0..total` into this schedule's chunk sequence, in the order a
    /// work queue would hand them out.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a chunked schedule has chunk size 0.
    #[must_use]
    pub fn chunks(self, total: u64, threads: u32) -> Vec<Range<u64>> {
        assert!(threads > 0, "need at least one thread");
        match self {
            Schedule::Static => {
                let t = u64::from(threads);
                let base = total / t;
                let extra = total % t;
                let mut out = Vec::with_capacity(threads as usize);
                let mut lo = 0;
                for i in 0..t {
                    let len = base + u64::from(i < extra);
                    if len > 0 {
                        out.push(lo..lo + len);
                    }
                    lo += len;
                }
                out
            }
            Schedule::StaticChunk(c) | Schedule::Dynamic(c) => {
                assert!(c > 0, "chunk size must be nonzero");
                split_fixed(total, c)
            }
            Schedule::Guided(min) => {
                assert!(min > 0, "minimum chunk size must be nonzero");
                let mut out = Vec::new();
                let mut lo = 0;
                while lo < total {
                    let remaining = total - lo;
                    let c = (remaining / (2 * u64::from(threads)))
                        .max(min)
                        .min(remaining);
                    out.push(lo..lo + c);
                    lo += c;
                }
                out
            }
        }
    }

    /// Deterministic per-thread chunk assignment: `plan(...)[t]` is the
    /// ordered list of ranges thread `t` executes.
    ///
    /// `weight(i)` is the relative cost of iteration `i` (use `|_| 1.0`
    /// for uniform loops; the triangular transpose loop passes
    /// `|i| (n - i) as f64`). Static schedules ignore weights for the
    /// *assignment* (exactly like OpenMP); dynamic and guided schedules
    /// assign each chunk, in order, to the thread that becomes idle first
    /// — an idealized work queue.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Schedule::chunks`].
    #[must_use]
    pub fn plan<W>(self, total: u64, threads: u32, weight: W) -> Vec<Vec<Range<u64>>>
    where
        W: Fn(u64) -> f64,
    {
        let chunks = self.chunks(total, threads);
        let t = threads as usize;
        let mut plan = vec![Vec::new(); t];
        match self {
            Schedule::Static => {
                for (i, ch) in chunks.into_iter().enumerate() {
                    plan[i].push(ch);
                }
            }
            Schedule::StaticChunk(_) => {
                for (i, ch) in chunks.into_iter().enumerate() {
                    plan[i % t].push(ch);
                }
            }
            Schedule::Dynamic(_) | Schedule::Guided(_) => {
                // Greedy list scheduling: next chunk to the earliest-idle
                // thread.
                let mut busy_until = vec![0.0_f64; t];
                for ch in chunks {
                    let w: f64 = ch.clone().map(&weight).sum();
                    let (idlest, _) = busy_until
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
                        .expect("at least one thread");
                    busy_until[idlest] += w;
                    plan[idlest].push(ch);
                }
            }
        }
        plan
    }

    /// The maximum over threads of total weighted work, divided by the
    /// mean — a load-imbalance factor (1.0 = perfectly balanced).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Schedule::chunks`].
    #[must_use]
    pub fn imbalance<W>(self, total: u64, threads: u32, weight: W) -> f64
    where
        W: Fn(u64) -> f64,
    {
        let plan = self.plan(total, threads, &weight);
        let loads: Vec<f64> = plan
            .iter()
            .map(|ranges| ranges.iter().flat_map(|r| r.clone()).map(&weight).sum())
            .collect();
        let max = loads.iter().cloned().fold(0.0_f64, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

fn split_fixed(total: u64, chunk: u64) -> Vec<Range<u64>> {
    let mut out = Vec::with_capacity(total.div_ceil(chunk) as usize);
    let mut lo = 0;
    while lo < total {
        let hi = (lo + chunk).min(total);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(plan: &[Vec<Range<u64>>], total: u64) -> bool {
        let mut seen = vec![false; total as usize];
        for ranges in plan {
            for r in ranges {
                for i in r.clone() {
                    if seen[i as usize] {
                        return false; // duplicate
                    }
                    seen[i as usize] = true;
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn static_blocks_are_contiguous_and_cover() {
        let plan = Schedule::Static.plan(10, 3, |_| 1.0);
        assert!(covers_exactly(&plan, 10));
        assert_eq!(plan[0], vec![0..4]);
        assert_eq!(plan[1], vec![4..7]);
        assert_eq!(plan[2], vec![7..10]);
    }

    #[test]
    fn static_handles_fewer_iterations_than_threads() {
        let plan = Schedule::Static.plan(2, 4, |_| 1.0);
        assert!(covers_exactly(&plan, 2));
        assert_eq!(plan[2], Vec::<Range<u64>>::new());
    }

    #[test]
    fn static_chunk_deals_round_robin() {
        let plan = Schedule::StaticChunk(2).plan(10, 2, |_| 1.0);
        assert!(covers_exactly(&plan, 10));
        assert_eq!(plan[0], vec![0..2, 4..6, 8..10]);
        assert_eq!(plan[1], vec![2..4, 6..8]);
    }

    #[test]
    fn dynamic_covers_exactly() {
        let plan = Schedule::Dynamic(1).plan(100, 4, |_| 1.0);
        assert!(covers_exactly(&plan, 100));
    }

    #[test]
    fn guided_chunks_shrink() {
        let chunks = Schedule::Guided(1).chunks(100, 4);
        assert!(chunks.len() > 4);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.end - c.start).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<u64>(), 100);
    }

    #[test]
    fn dynamic_balances_triangular_weights_better_than_static() {
        // The transpose outer loop: row i costs (n - i).
        let n = 1024u64;
        let w = |i: u64| (n - i) as f64;
        let static_imb = Schedule::Static.imbalance(n, 4, w);
        let dynamic_imb = Schedule::Dynamic(8).imbalance(n, 4, w);
        assert!(
            static_imb > 1.5,
            "static on a triangle is imbalanced: {static_imb}"
        );
        assert!(
            dynamic_imb < 1.05,
            "dynamic fixes the imbalance: {dynamic_imb}"
        );
        assert!(dynamic_imb < static_imb);
    }

    #[test]
    fn uniform_weights_static_is_balanced() {
        let imb = Schedule::Static.imbalance(1000, 4, |_| 1.0);
        assert!(imb < 1.01, "{imb}");
    }

    #[test]
    fn empty_loop_yields_empty_plans() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(4),
            Schedule::Dynamic(4),
            Schedule::Guided(2),
        ] {
            let plan = s.plan(0, 3, |_| 1.0);
            assert!(plan.iter().all(Vec::is_empty), "{s:?}");
        }
    }

    #[test]
    fn single_thread_gets_everything() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(7),
            Schedule::Dynamic(3),
            Schedule::Guided(1),
        ] {
            let plan = s.plan(50, 1, |_| 1.0);
            assert_eq!(plan.len(), 1);
            assert!(covers_exactly(&plan, 50), "{s:?}");
        }
    }

    #[test]
    fn chunks_preserve_order_for_fixed_splits() {
        let chunks = Schedule::Dynamic(3).chunks(10, 2);
        assert_eq!(chunks, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be nonzero")]
    fn zero_chunk_rejected() {
        let _ = Schedule::Dynamic(0).chunks(10, 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Schedule::Static.chunks(10, 0);
    }

    #[test]
    fn names() {
        assert_eq!(Schedule::Static.name(), "static");
        assert_eq!(Schedule::Dynamic(1).name(), "dynamic");
    }
}
