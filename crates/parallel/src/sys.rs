//! Host/process primitives for multi-process coordination: an advisory
//! file lock and a signal-driven shutdown flag.
//!
//! Both exist because one process became many: the result cache
//! (DESIGN.md §12) was only mutated by a single process per directory
//! until `membound-serve` put a long-running daemon *and* ad-hoc
//! `membound-cli cache gc` invocations on the same store, and a daemon
//! must turn `SIGTERM` into a graceful drain instead of the default
//! instant kill.
//!
//! Neither primitive can come from a crate (the workspace builds fully
//! offline), and neither is exposed by `std` under the workspace's
//! minimum Rust version, so both are implemented directly against the
//! C library that is linked into every Rust binary anyway. On
//! non-Unix targets they degrade explicitly: [`FsLock`] becomes a
//! no-op (single-process semantics, exactly the pre-daemon behaviour)
//! and [`ShutdownFlag::install`] arms nothing.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An advisory, exclusive, cross-process file lock, released on drop.
///
/// Built on `flock(2)`: the lock is tied to an open file description,
/// so the kernel releases it automatically when the holder exits *or
/// aborts* — a crashed daemon can never leave the cache wedged, which
/// is the property a create-exclusive lockfile protocol cannot give.
/// Lock acquisition blocks until the current holder releases; critical
/// sections under it are short (an index append or rebuild), so
/// waiting beats failing.
///
/// Advisory means exactly that: only callers that take the lock are
/// serialized. Every *mutating* cache path does; read-only paths
/// (`lookup`, `survey`) stay lock-free by design — they already
/// tolerate concurrent mutation (self-validating objects, torn-tail
/// parsing).
#[derive(Debug)]
pub struct FsLock {
    // Held only for its drop side effect: closing the file releases
    // the flock. Never read after acquisition.
    #[allow(dead_code)]
    file: std::fs::File,
}

impl FsLock {
    /// Take the exclusive lock at `path` (creating the lock file if
    /// needed), blocking until it is free. The lock file's *content*
    /// is irrelevant and never written; only its file description
    /// carries the lock.
    ///
    /// # Errors
    ///
    /// I/O errors creating or opening the lock file, and any `flock`
    /// failure other than interruption (interrupted waits retry).
    pub fn acquire(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        imp::lock_exclusive(&file)?;
        Ok(Self { file })
    }
}

#[cfg(unix)]
mod imp {
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    pub(super) fn lock_exclusive(file: &std::fs::File) -> std::io::Result<()> {
        loop {
            // SAFETY: flock takes a valid open fd and an operation
            // flag; it mutates no user memory.
            let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX) };
            if rc == 0 {
                return Ok(());
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    // No flock outside Unix: the lock degrades to open-file semantics
    // (no cross-process exclusion), which is the documented fallback —
    // identical to the workspace's pre-daemon single-process behaviour.
    pub(super) fn lock_exclusive(_file: &std::fs::File) -> std::io::Result<()> {
        Ok(())
    }
}

// flock is per-open-file-description and Drop closes `file`, which
// releases the lock; nothing further to do.

/// A flag flipped by `SIGTERM`/`SIGINT`, polled by long-running loops
/// to drain gracefully instead of dying mid-write.
///
/// The handler does the only async-signal-safe thing possible — a
/// store to a static atomic — and the accept/scheduler loops observe
/// it at their next poll tick. [`ShutdownFlag::install`] is idempotent
/// and process-global (signals are); subsequent calls return handles
/// to the same flag.
#[derive(Debug, Clone)]
pub struct ShutdownFlag {
    requested: Arc<AtomicBool>,
}

static SIGNALLED: AtomicBool = AtomicBool::new(false);

impl ShutdownFlag {
    /// Arm `SIGTERM` and `SIGINT` to request shutdown, returning the
    /// flag to poll. On non-Unix targets no handler is installed and
    /// the flag only trips via [`ShutdownFlag::request`].
    #[must_use]
    pub fn install() -> Self {
        imp_signal::install();
        Self {
            requested: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A flag with no signal wiring, for tests and in-process servers
    /// (trip it with [`ShutdownFlag::request`]).
    #[must_use]
    pub fn manual() -> Self {
        Self {
            requested: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Request shutdown programmatically (the daemon's `shutdown`
    /// command takes this path; signals take the static one).
    pub fn request(&self) {
        self.requested.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested, by signal or by call.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }
}

#[cfg(unix)]
mod imp_signal {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` — handler passed and returned as a plain address
        // so the shim needs no libc types. SIG_ERR is usize::MAX.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // A store to a static atomic is async-signal-safe.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            // SAFETY: installing a handler that only stores an atomic;
            // `on_signal` has the exact C ABI signal(2) expects.
            let handler = on_signal as *const () as usize;
            unsafe {
                signal(SIGTERM, handler);
                signal(SIGINT, handler);
            }
        });
    }
}

#[cfg(not(unix))]
mod imp_signal {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("membound_sys_tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(format!("{name}_{}", std::process::id()))
    }

    #[test]
    fn lock_excludes_other_holders_until_dropped() {
        let path = tmp("fslock");
        let in_section = AtomicU32::new(0);
        let peak = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let guard = FsLock::acquire(&path).expect("acquire");
                        let now = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                    }
                });
            }
        });
        // On Unix the lock is exclusive; elsewhere it degrades to a
        // no-op by design, so only assert exclusion where it holds.
        if cfg!(unix) {
            assert_eq!(peak.load(Ordering::SeqCst), 1, "lock must be exclusive");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_is_reentrant_per_acquisition_not_per_file() {
        let path = tmp("fslock_seq");
        let a = FsLock::acquire(&path).expect("first");
        drop(a);
        let b = FsLock::acquire(&path).expect("second after drop");
        drop(b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manual_flag_trips_only_on_request() {
        let flag = ShutdownFlag::manual();
        assert!(!flag.is_requested());
        let clone = flag.clone();
        clone.request();
        assert!(flag.is_requested(), "clones share the flag");
    }
}
