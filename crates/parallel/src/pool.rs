//! Native parallel-for execution.
//!
//! A deliberately small OpenMP-`parallel for` stand-in: scoped threads, a
//! shared work queue of chunks, and the [`Schedule`] semantics from
//! [`crate::schedule`]. Threads are spawned per region (the kernels under
//! study run for seconds; spawn cost is noise).

use crate::schedule::Schedule;
use crossbeam::utils::CachePadded;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A parallel execution context with a fixed thread count.
///
/// # Example
///
/// ```
/// use membound_parallel::{Pool, Schedule};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = Pool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.parallel_for(0..1000, Schedule::Static, |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 999 * 1000 / 2);
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    threads: u32,
}

impl Pool {
    /// A pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn new(threads: u32) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self { threads }
    }

    /// A pool sized to the host's available parallelism.
    #[must_use]
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Run `body(tid)` once on each of the pool's threads, concurrently
    /// (an OpenMP `parallel` region).
    pub fn run<F>(&self, body: F)
    where
        F: Fn(u32) + Sync,
    {
        if self.threads == 1 {
            body(0);
            return;
        }
        std::thread::scope(|scope| {
            for tid in 0..self.threads {
                let body = &body;
                scope.spawn(move || body(tid));
            }
        });
    }

    /// Parallel loop over `range` under `schedule`, calling `body(i)` for
    /// every iteration exactly once (OpenMP `parallel for`).
    pub fn parallel_for<F>(&self, range: Range<u64>, schedule: Schedule, body: F)
    where
        F: Fn(u64) + Sync,
    {
        self.parallel_for_chunks(range, schedule, |chunk| {
            for i in chunk {
                body(i);
            }
        });
    }

    /// Parallel loop handing each worker whole chunks (useful when the
    /// body can amortize per-chunk setup).
    ///
    /// Static schedules give every thread its precomputed chunk list;
    /// dynamic/guided schedules share an atomic work queue, so the actual
    /// chunk→thread mapping is timing-dependent exactly as in OpenMP.
    pub fn parallel_for_chunks<F>(&self, range: Range<u64>, schedule: Schedule, body: F)
    where
        F: Fn(Range<u64>) + Sync,
    {
        let total = range.end.saturating_sub(range.start);
        if total == 0 {
            return;
        }
        let offset = range.start;
        match schedule {
            Schedule::Static | Schedule::StaticChunk(_) => {
                let plan = schedule.plan(total, self.threads, |_| 1.0);
                self.run(|tid| {
                    for chunk in &plan[tid as usize] {
                        body(chunk.start + offset..chunk.end + offset);
                    }
                });
            }
            Schedule::Dynamic(_) | Schedule::Guided(_) => {
                let chunks = schedule.chunks(total, self.threads);
                let next = CachePadded::new(AtomicUsize::new(0));
                self.run(|_tid| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    match chunks.get(k) {
                        Some(chunk) => body(chunk.start + offset..chunk.end + offset),
                        None => break,
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    fn check_covers(schedule: Schedule, threads: u32, total: u64) {
        let pool = Pool::new(threads);
        let hits: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(0..total, schedule, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "iteration {i} under {schedule:?}"
            );
        }
    }

    #[test]
    fn every_schedule_covers_every_iteration_exactly_once() {
        for schedule in [
            Schedule::Static,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(1),
            Schedule::Dynamic(7),
            Schedule::Guided(2),
        ] {
            for threads in [1, 2, 4] {
                check_covers(schedule, threads, 100);
            }
        }
    }

    #[test]
    fn nonzero_range_offset_respected() {
        let pool = Pool::new(3);
        let seen = Mutex::new(Vec::new());
        pool.parallel_for(10..20, Schedule::Dynamic(2), |i| {
            seen.lock().unwrap().push(i);
        });
        let mut v = seen.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let pool = Pool::new(2);
        let count = AtomicU64::new(0);
        pool.parallel_for(5..5, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 0);
    }

    #[test]
    fn run_executes_once_per_thread() {
        let pool = Pool::new(4);
        let count = AtomicU64::new(0);
        let tid_sum = AtomicU64::new(0);
        pool.run(|tid| {
            count.fetch_add(1, Ordering::Relaxed);
            tid_sum.fetch_add(u64::from(tid), Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 4);
        assert_eq!(tid_sum.into_inner(), 6); // 0 + 1 + 2 + 3
    }

    #[test]
    fn chunk_bodies_receive_disjoint_chunks() {
        let pool = Pool::new(4);
        let seen = Mutex::new(vec![0u8; 64]);
        pool.parallel_for_chunks(0..64, Schedule::Guided(1), |chunk| {
            let mut guard = seen.lock().unwrap();
            for i in chunk {
                guard[i as usize] += 1;
            }
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn single_thread_pool_runs_the_body() {
        let pool = Pool::new(1);
        let called = AtomicU64::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            called.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(called.into_inner(), 1);
    }

    #[test]
    fn host_pool_has_at_least_one_thread() {
        assert!(Pool::host().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }
}
