//! `membound-parallel` — an OpenMP-`parallel for` stand-in.
//!
//! The paper parallelizes its kernels with exactly two OpenMP features:
//! `#pragma omp parallel for` (default static schedule) and
//! `schedule(dynamic)` for the triangular transpose loop. This crate
//! provides those semantics twice over:
//!
//! * **natively** — [`Pool`] runs real scoped threads with a shared work
//!   queue, so the host-execution path of `membound-core` parallelizes
//!   exactly like the paper's C++;
//! * **deterministically** — [`Schedule::plan`] computes the
//!   iteration→thread assignment each schedule would produce (greedy
//!   earliest-idle-thread simulation for dynamic/guided), which the
//!   simulator uses to generate one reference stream per simulated core.
//!
//! [`JobBudget`] is the glue between nested parallel layers: a shared
//! atomic pool of worker slots that keeps the experiment engine's
//! per-cell sharding and the simulator's per-core fan-out jointly
//! bounded by one `--jobs` value instead of multiplying.
//!
//! [`SharedSlice`] is the crate's single unsafe construct: a raw shared
//! view of a mutable slice for in-place parallel kernels whose
//! disjointness is arithmetic rather than structural (see its module docs).
//!
//! # Example
//!
//! ```
//! use membound_parallel::{Pool, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A triangular loop, balanced with the dynamic schedule like the
//! // paper's "Dynamic" transpose variant.
//! let n = 64u64;
//! let work = AtomicU64::new(0);
//! Pool::new(4).parallel_for(0..n, Schedule::Dynamic(1), |i| {
//!     for _j in i + 1..n {
//!         work.fetch_add(1, Ordering::Relaxed);
//!     }
//! });
//! assert_eq!(work.into_inner(), n * (n - 1) / 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod budget;
pub mod failpoint;
mod pool;
mod schedule;
mod shared;
pub mod sys;
mod tasks;

pub use budget::{JobBudget, Lease};
pub use failpoint::{FailAction, Failpoint, MAX_DELAY_MS};
pub use pool::Pool;
pub use schedule::Schedule;
pub use shared::SharedSlice;
pub use sys::{FsLock, ShutdownFlag};
pub use tasks::{panic_message, Task, TaskPanic};
