//! Deterministic fault injection for crash-safety tests.
//!
//! Long experiment runs must survive crashes (see DESIGN.md §11), and
//! "survive" is only testable if a crash can be *produced* on demand at
//! an exact, repeatable point. A [`Failpoint`] names one injection site
//! (`"cell"` is the experiment engine's per-attempt site; `"cache"`
//! fires between a result-cache object write and its index append, see
//! DESIGN.md §12), one index at that site, and one [`FailAction`] to
//! perform when the site is hit:
//!
//! * `panic` — unwind, exactly like a simulation bug; exercises panic
//!   containment, the retry policy, and `status: "failed"` records;
//! * `abort` — kill the whole process without unwinding, exactly like
//!   `kill -9`/OOM/power loss; exercises truncated-run-log recovery and
//!   `--resume` (only usable from a child process, by nature);
//! * `delay` — sleep a fixed number of milliseconds; exercises the
//!   per-cell deadline without depending on real workload timing.
//!
//! Failpoints are data, not globals: tests construct one with
//! [`Failpoint::parse`] and hand it to the layer under test, so
//! in-process tests stay deterministic and parallel-safe. Figure
//! binaries additionally read one from the `MEMBOUND_FAILPOINT`
//! environment variable ([`Failpoint::from_env`]), which is how CI
//! aborts a `fig2_transpose` run mid-matrix from the outside. The layer
//! costs nothing when no failpoint is configured — the engine holds an
//! `Option<Failpoint>` that is `None` outside tests and CI.
//!
//! # Spec grammar
//!
//! ```text
//! <site>:<action>@<index>[x<max_fires>]
//! action := panic | abort | delay=<millis>
//! ```
//!
//! Examples: `cell:panic@5` (every attempt of cell 5 panics),
//! `cell:panic@5x1` (only the first attempt panics — a retry then
//! succeeds), `cell:abort@19` (the process dies when cell 19 starts),
//! `cell:delay=250@3` (cell 3 sleeps 250 ms before simulating).
//!
//! Degenerate specs are rejected at parse time rather than silently
//! testing nothing: a fire count of `x0` can never fire, and a delay
//! longer than [`MAX_DELAY_MS`] would wedge a deadline-bearing daemon
//! worker for longer than any test legitimately needs (a delay is a
//! *sleep on a leased worker slot* — nothing can preempt it).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Longest delay a `delay=<millis>` spec may request (10 minutes).
///
/// A failpoint delay occupies a worker slot non-preemptibly; anything
/// longer than this is a typo (e.g. nanoseconds pasted as milliseconds)
/// that would wedge a daemon past every per-cell deadline.
pub const MAX_DELAY_MS: u64 = 600_000;

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a recognizable message (unwinds; containable).
    Panic,
    /// `std::process::abort()` — no unwinding, no destructors, exactly
    /// like a power cut. Only meaningful across a process boundary.
    Abort,
    /// Sleep this many milliseconds, then continue normally.
    DelayMs(u64),
}

/// One armed injection point; cheap to clone, clones share the fire
/// counter (so retries of the same cell consume the same allowance).
#[derive(Debug, Clone)]
pub struct Failpoint {
    site: String,
    index: u64,
    action: FailAction,
    max_fires: u32,
    fired: Arc<AtomicU32>,
}

impl Failpoint {
    /// Parse a failpoint spec (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first grammar
    /// violation.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (head, tail) = spec
            .split_once('@')
            .ok_or_else(|| format!("failpoint {spec:?}: expected <site>:<action>@<index>"))?;
        let (site, action_str) = head
            .split_once(':')
            .ok_or_else(|| format!("failpoint {spec:?}: expected <site>:<action> before `@`"))?;
        if site.is_empty() {
            return Err(format!("failpoint {spec:?}: empty site name"));
        }
        let action = match action_str {
            "panic" => FailAction::Panic,
            "abort" => FailAction::Abort,
            other => match other.strip_prefix("delay=") {
                Some(ms) => {
                    let millis: u64 = ms.parse().map_err(|_| {
                        format!("failpoint {spec:?}: bad delay milliseconds {ms:?}")
                    })?;
                    if millis > MAX_DELAY_MS {
                        return Err(format!(
                            "failpoint {spec:?}: delay {millis} ms exceeds the \
                                 {MAX_DELAY_MS} ms maximum (a delay holds a worker \
                                 slot non-preemptibly)"
                        ));
                    }
                    FailAction::DelayMs(millis)
                }
                None => {
                    return Err(format!(
                        "failpoint {spec:?}: unknown action {other:?} \
                         (expected panic, abort, or delay=<millis>)"
                    ))
                }
            },
        };
        let (index_str, max_fires) = match tail.split_once('x') {
            Some((idx, count)) => (
                idx,
                count
                    .parse()
                    .map_err(|_| format!("failpoint {spec:?}: bad fire count {count:?}"))?,
            ),
            None => (tail, u32::MAX),
        };
        if max_fires == 0 {
            return Err(format!("failpoint {spec:?}: fire count must be at least 1"));
        }
        let index = index_str
            .parse()
            .map_err(|_| format!("failpoint {spec:?}: bad index {index_str:?}"))?;
        Ok(Self {
            site: site.to_string(),
            index,
            action,
            max_fires,
            fired: Arc::new(AtomicU32::new(0)),
        })
    }

    /// The failpoint armed by the `MEMBOUND_FAILPOINT` environment
    /// variable, if any.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec: a fault-injection run with a typo'd
    /// failpoint would otherwise silently test nothing.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("MEMBOUND_FAILPOINT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::parse(spec.trim()) {
            Ok(fp) => Some(fp),
            Err(e) => panic!("MEMBOUND_FAILPOINT: {e}"),
        }
    }

    /// Site this failpoint is armed at.
    #[must_use]
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Index within the site this failpoint fires at.
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The armed action.
    #[must_use]
    pub fn action(&self) -> FailAction {
        self.action
    }

    /// How many times the failpoint has fired so far.
    #[must_use]
    pub fn fires(&self) -> u32 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Evaluate the failpoint at (`site`, `index`): a no-op unless both
    /// match the armed point and the fire allowance is not exhausted, in
    /// which case the armed action runs — which may panic, abort the
    /// process, or sleep.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) when the armed action is [`FailAction::Panic`]
    /// and the point matches.
    pub fn check(&self, site: &str, index: u64) {
        if site != self.site || index != self.index {
            return;
        }
        // Claim a fire slot atomically so concurrent attempts cannot
        // overshoot max_fires.
        if self.fired.fetch_add(1, Ordering::AcqRel) >= self.max_fires {
            return;
        }
        match self.action {
            FailAction::Panic => panic!("failpoint {site}:{index} injected panic"),
            FailAction::Abort => {
                // Flush nothing: the whole point is to die like a crash.
                eprintln!("failpoint {site}:{index} aborting process");
                std::process::abort();
            }
            FailAction::DelayMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn specs_parse() {
        let fp = Failpoint::parse("cell:panic@5").unwrap();
        assert_eq!(fp.site(), "cell");
        assert_eq!(fp.index(), 5);
        assert_eq!(fp.action(), FailAction::Panic);

        let fp = Failpoint::parse("cell:abort@19").unwrap();
        assert_eq!(fp.action(), FailAction::Abort);

        let fp = Failpoint::parse("cell:delay=250@3").unwrap();
        assert_eq!(fp.action(), FailAction::DelayMs(250));

        let fp = Failpoint::parse("cell:panic@5x2").unwrap();
        assert_eq!(fp.index(), 5);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "",
            "cell",
            "cell:panic",
            "panic@5",
            "cell:explode@5",
            "cell:panic@x",
            "cell:panic@5x0",
            "cell:delay=abc@1",
            "cell:delay=600001@1",
        ] {
            let err = Failpoint::parse(bad).unwrap_err();
            assert!(err.contains("failpoint"), "{bad:?} -> {err}");
        }
    }

    /// The two degenerate shapes a daemon must refuse up front: a fire
    /// count that can never fire, and a delay long enough to wedge a
    /// worker past any deadline. Both errors must say *why*.
    #[test]
    fn degenerate_specs_are_rejected_with_specific_errors() {
        let err = Failpoint::parse("cache:panic@3x0").unwrap_err();
        assert!(err.contains("fire count must be at least 1"), "{err}");

        let err = Failpoint::parse(&format!("cell:delay={}@0", MAX_DELAY_MS + 1)).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        assert!(err.contains(&MAX_DELAY_MS.to_string()), "{err}");

        // The boundary itself is legal.
        let fp = Failpoint::parse(&format!("cell:delay={MAX_DELAY_MS}@0")).unwrap();
        assert_eq!(fp.action(), FailAction::DelayMs(MAX_DELAY_MS));
        // So is u64::MAX rejected as unparseable-overflow, not accepted.
        assert!(Failpoint::parse("cell:delay=18446744073709551616@0").is_err());
    }

    #[test]
    fn fires_only_at_the_armed_point() {
        let fp = Failpoint::parse("cell:panic@2").unwrap();
        fp.check("cell", 0);
        fp.check("cell", 1);
        fp.check("other", 2);
        assert_eq!(fp.fires(), 0);
        let err = catch_unwind(AssertUnwindSafe(|| fp.check("cell", 2)));
        assert!(err.is_err(), "armed point must panic");
        assert_eq!(fp.fires(), 1);
    }

    #[test]
    fn fire_allowance_is_consumed_across_clones() {
        let fp = Failpoint::parse("cell:panic@0x2").unwrap();
        let clone = fp.clone();
        assert!(catch_unwind(AssertUnwindSafe(|| fp.check("cell", 0))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| clone.check("cell", 0))).is_err());
        // Allowance exhausted: the third hit is a no-op.
        clone.check("cell", 0);
        assert_eq!(fp.fires(), 3, "hits are counted even past the allowance");
    }

    #[test]
    fn delay_returns_control() {
        let fp = Failpoint::parse("cell:delay=1@0").unwrap();
        fp.check("cell", 0);
        assert_eq!(fp.fires(), 1);
    }
}
