//! Unsafe shared-slice escape hatch for in-place parallel kernels.
//!
//! The paper's parallel in-place transposition mutates one matrix from
//! several threads. The accesses are disjoint by construction (each thread
//! owns a distinct set of `(block-row, block-column)` pairs), but that
//! disjointness is arithmetic, not structural, so the borrow checker
//! cannot see it — the same situation `rayon`'s internals or OpenMP C++
//! code face. [`SharedSlice`] makes the contract explicit: cloning the
//! handle is safe; every element access is `unsafe` and the caller vouches
//! for data-race freedom.

use std::marker::PhantomData;

/// A raw view of a mutable slice that can be sent to multiple threads.
///
/// # Example
///
/// ```
/// use membound_parallel::{Pool, Schedule, SharedSlice};
///
/// let mut data = vec![0u64; 100];
/// {
///     let shared = SharedSlice::new(&mut data);
///     Pool::new(4).parallel_for(0..100, Schedule::Static, |i| {
///         // SAFETY: each index is written by exactly one iteration.
///         unsafe { shared.write(i as usize, i * 2) };
///     });
/// }
/// assert_eq!(data[7], 14);
/// ```
#[derive(Debug)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the pointer is valid for the lifetime 'a; concurrent access
// discipline is delegated to the unsafe read/write callers.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<T> Clone for SharedSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice. The handle borrows the slice for `'a`, so the
    /// original binding is inaccessible while handles exist.
    #[must_use]
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    ///
    /// # Safety
    ///
    /// No other thread may be concurrently *writing* element `i`.
    #[must_use]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        // SAFETY: bounds checked above; caller guarantees race freedom.
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    ///
    /// # Safety
    ///
    /// No other thread may be concurrently reading or writing element `i`.
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        // SAFETY: bounds checked above; caller guarantees race freedom.
        unsafe { *self.ptr.add(i) = value };
    }

    /// A mutable view of `start..start + len`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned slice, no other thread may access
    /// any element of `start..start + len`, and the calling thread must
    /// not create a second overlapping view. Disjoint ranges on different
    /// threads are fine — that is the intended use (e.g. one image row per
    /// loop iteration).
    #[must_use]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &'a mut [T] {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "range {start}..{} out of bounds (len {})",
            start + len,
            self.len
        );
        // SAFETY: bounds checked above; exclusivity guaranteed by the
        // caller.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// Swap elements `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    ///
    /// # Safety
    ///
    /// No other thread may be concurrently accessing elements `i` or `j`.
    pub unsafe fn swap(&self, i: usize, j: usize) {
        assert!(i < self.len && j < self.len, "swap indices out of bounds");
        if i == j {
            return;
        }
        // SAFETY: bounds checked above, i != j, caller guarantees race
        // freedom.
        unsafe { std::ptr::swap(self.ptr.add(i), self.ptr.add(j)) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pool, Schedule};

    #[test]
    fn single_thread_read_write_round_trip() {
        let mut v = vec![1u32, 2, 3];
        let s = SharedSlice::new(&mut v);
        unsafe {
            assert_eq!(s.read(1), 2);
            s.write(1, 42);
            assert_eq!(s.read(1), 42);
        }
        assert_eq!(v, vec![1, 42, 3]);
    }

    #[test]
    fn swap_exchanges_and_self_swap_is_noop() {
        let mut v = vec![10u8, 20];
        let s = SharedSlice::new(&mut v);
        unsafe {
            s.swap(0, 1);
            s.swap(0, 0);
        }
        assert_eq!(v, vec![20, 10]);
    }

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut v = vec![0u64; 1024];
        {
            let s = SharedSlice::new(&mut v);
            Pool::new(8).parallel_for(0..1024, Schedule::Dynamic(16), |i| unsafe {
                s.write(i as usize, i + 1);
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn parallel_pairwise_swaps_are_an_involution() {
        // Swap (i, n-1-i) pairs in parallel: disjoint by construction.
        let n = 1000usize;
        let mut v: Vec<u64> = (0..n as u64).collect();
        {
            let s = SharedSlice::new(&mut v);
            Pool::new(4).parallel_for(0..(n as u64 / 2), Schedule::Static, |i| unsafe {
                s.swap(i as usize, n - 1 - i as usize);
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == (n - 1 - i) as u64));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let mut v = vec![0u8; 4];
        let s = SharedSlice::new(&mut v);
        let _ = unsafe { s.read(4) };
    }

    #[test]
    fn len_and_empty() {
        let mut v: Vec<u8> = Vec::new();
        let s = SharedSlice::new(&mut v);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
