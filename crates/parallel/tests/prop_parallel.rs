//! Property tests for schedules and the pool.

use membound_parallel::{Pool, Schedule, SharedSlice};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1u64..16).prop_map(Schedule::StaticChunk),
        (1u64..16).prop_map(Schedule::Dynamic),
        (1u64..8).prop_map(Schedule::Guided),
    ]
}

proptest! {
    /// Every schedule's plan partitions the iteration space exactly: each
    /// iteration appears in exactly one thread's chunk list.
    #[test]
    fn plans_partition_the_iteration_space(
        schedule in schedule_strategy(),
        total in 0u64..500,
        threads in 1u32..9,
    ) {
        let plan = schedule.plan(total, threads, |_| 1.0);
        prop_assert_eq!(plan.len(), threads as usize);
        let mut seen = vec![0u32; total as usize];
        for ranges in &plan {
            for r in ranges {
                prop_assert!(r.start <= r.end);
                prop_assert!(r.end <= total);
                for i in r.clone() {
                    seen[i as usize] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each iteration exactly once");
    }

    /// Chunk sequences are ordered and contiguous.
    #[test]
    fn chunks_tile_the_range_in_order(
        schedule in schedule_strategy(),
        total in 0u64..500,
        threads in 1u32..9,
    ) {
        let chunks = schedule.chunks(total, threads);
        let mut expected = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, expected);
            prop_assert!(c.end > c.start);
            expected = c.end;
        }
        prop_assert_eq!(expected, total);
    }

    /// On decreasing workloads (the transpose triangle), the dynamic
    /// schedule never balances worse than the single-block static one.
    #[test]
    fn dynamic_never_balances_worse_than_static(
        total in 8u64..400,
        threads in 2u32..9,
    ) {
        let weight = |i: u64| (total - i) as f64;
        let s = Schedule::Static.imbalance(total, threads, weight);
        let d = Schedule::Dynamic(1).imbalance(total, threads, weight);
        prop_assert!(d <= s + 1e-9, "dynamic {d} vs static {s}");
    }

    /// The pool really executes every iteration exactly once under every
    /// schedule and thread count.
    #[test]
    fn pool_covers_iterations(
        schedule in schedule_strategy(),
        total in 0u64..300,
        threads in 1u32..5,
    ) {
        let hits: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        Pool::new(threads).parallel_for(0..total, schedule, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    /// Disjoint parallel writes through a SharedSlice land exactly like
    /// sequential ones.
    #[test]
    fn shared_slice_parallel_writes_match_sequential(
        len in 1usize..500,
        threads in 1u32..5,
    ) {
        let mut parallel_out = vec![0u64; len];
        {
            let s = SharedSlice::new(&mut parallel_out);
            Pool::new(threads).parallel_for(0..len as u64, Schedule::Dynamic(7), |i| {
                // SAFETY: each index written exactly once.
                unsafe { s.write(i as usize, i * i) };
            });
        }
        let sequential: Vec<u64> = (0..len as u64).map(|i| i * i).collect();
        prop_assert_eq!(parallel_out, sequential);
    }

    /// Guided chunks never fall below the requested minimum (except the
    /// final remainder) and shrink monotonically.
    #[test]
    fn guided_chunks_shrink_and_respect_min(
        total in 1u64..2000,
        threads in 1u32..9,
        min in 1u64..16,
    ) {
        let chunks = Schedule::Guided(min).chunks(total, threads);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.end - c.start).collect();
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1], "sizes must not grow: {sizes:?}");
        }
        for (i, &s) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                prop_assert!(s >= min);
            }
        }
    }
}
