//! Gaussian filter kernels (Eq. 1 of the paper).

/// A normalized one-dimensional Gaussian kernel.
///
/// The paper's Eq. 1 factorizes the 2-D Gaussian into two 1-D kernels —
/// the "1D_kernels" blur variant applies this kernel horizontally and then
/// vertically. Kernels are normalized to sum to exactly 1 so that blurring
/// preserves mean intensity (the discrete taps would otherwise sum to
/// slightly less than the continuous integral).
///
/// # Example
///
/// ```
/// use membound_image::Gaussian1D;
///
/// let k = Gaussian1D::new(19, 3.0);
/// assert_eq!(k.len(), 19);
/// let sum: f32 = k.taps().iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian1D {
    taps: Vec<f32>,
    sigma: f64,
}

impl Gaussian1D {
    /// A kernel with `size` taps and standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or even (the paper's blur uses odd
    /// kernels centred on the output pixel), or `sigma` is not positive.
    #[must_use]
    pub fn new(size: usize, sigma: f64) -> Self {
        assert!(size > 0 && size % 2 == 1, "kernel size must be odd");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        let middle = (size / 2) as f64;
        let mut taps: Vec<f64> = (0..size)
            .map(|i| {
                let x = i as f64 - middle;
                (-x * x / (2.0 * sigma * sigma)).exp()
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Self {
            taps: taps.into_iter().map(|t| t as f32).collect(),
            sigma,
        }
    }

    /// The OpenCV-style default sigma for a kernel of `size` taps:
    /// `0.3 * ((size - 1) * 0.5 - 1) + 0.8`. The paper benchmarks F = 19,
    /// for which this gives σ = 3.2.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gaussian1D::new`].
    #[must_use]
    pub fn with_default_sigma(size: usize) -> Self {
        let sigma = 0.3 * ((size as f64 - 1.0) * 0.5 - 1.0) + 0.8;
        Self::new(size, sigma)
    }

    /// Number of taps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always false: kernels have at least one tap.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The standard deviation the kernel was built with.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The normalized taps.
    #[must_use]
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Half-width (`size / 2`), the paper's `middle`.
    #[must_use]
    pub fn middle(&self) -> usize {
        self.taps.len() / 2
    }

    /// The separable outer product — the full 2-D kernel of the naïve
    /// variants, row-major `size × size`.
    #[must_use]
    pub fn outer_product(&self) -> Gaussian2D {
        let n = self.taps.len();
        let mut taps = vec![0.0_f32; n * n];
        for i in 0..n {
            for j in 0..n {
                taps[i * n + j] = self.taps[i] * self.taps[j];
            }
        }
        Gaussian2D {
            size: n,
            taps,
            sigma: self.sigma,
        }
    }
}

/// A normalized two-dimensional Gaussian kernel, row-major.
///
/// Used by the "Naive" and "Unit-stride" blur variants, which apply the
/// full `F × F` stencil per output pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian2D {
    size: usize,
    taps: Vec<f32>,
    sigma: f64,
}

impl Gaussian2D {
    /// A `size × size` kernel with standard deviation `sigma`, built as
    /// the outer product of the 1-D kernel (exactly Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gaussian1D::new`].
    #[must_use]
    pub fn new(size: usize, sigma: f64) -> Self {
        Gaussian1D::new(size, sigma).outer_product()
    }

    /// Side length in taps.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The standard deviation the kernel was built with.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Row-major taps (`size * size` of them).
    #[must_use]
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Tap at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn tap(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.size && col < self.size);
        self.taps[row * self.size + col]
    }

    /// Half-width (`size / 2`).
    #[must_use]
    pub fn middle(&self) -> usize {
        self.size / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_kernel_normalizes_and_is_symmetric() {
        let k = Gaussian1D::new(19, 3.0);
        let sum: f32 = k.taps().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for i in 0..k.len() {
            assert!((k.taps()[i] - k.taps()[k.len() - 1 - i]).abs() < 1e-7);
        }
        // Peak at the centre.
        let mid = k.middle();
        assert!(k.taps().iter().all(|&t| t <= k.taps()[mid]));
    }

    #[test]
    fn single_tap_kernel_is_identity() {
        let k = Gaussian1D::new(1, 1.0);
        assert_eq!(k.taps(), &[1.0]);
        assert_eq!(k.middle(), 0);
    }

    #[test]
    fn two_d_kernel_is_outer_product_of_one_d() {
        let k1 = Gaussian1D::new(5, 1.2);
        let k2 = k1.outer_product();
        for i in 0..5 {
            for j in 0..5 {
                let expected = k1.taps()[i] * k1.taps()[j];
                assert!((k2.tap(i, j) - expected).abs() < 1e-8);
            }
        }
        let sum: f32 = k2.taps().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "2-D kernel sums to 1: {sum}");
    }

    #[test]
    fn two_d_direct_construction_matches_outer_product() {
        let a = Gaussian2D::new(7, 2.0);
        let b = Gaussian1D::new(7, 2.0).outer_product();
        assert_eq!(a, b);
    }

    #[test]
    fn wider_sigma_flattens_the_kernel() {
        let narrow = Gaussian1D::new(9, 0.8);
        let wide = Gaussian1D::new(9, 4.0);
        assert!(narrow.taps()[4] > wide.taps()[4]);
        assert!(narrow.taps()[0] < wide.taps()[0]);
    }

    #[test]
    fn default_sigma_matches_opencv_formula() {
        let k = Gaussian1D::with_default_sigma(19);
        assert!((k.sigma() - 3.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Gaussian1D::new(4, 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn non_positive_sigma_rejected() {
        let _ = Gaussian1D::new(3, 0.0);
    }
}
