//! Synthetic test images.
//!
//! The paper filters one 2544 × 2027 colour photograph. We cannot ship the
//! photograph, so the benchmarks use deterministic synthetic images of the
//! same shape. For a *memory-bound* benchmark the pixel values are
//! irrelevant to performance (the access pattern is data-independent), so
//! any full-size image exercises the same code path; the generators below
//! still produce visually structured content so that correctness tests
//! detect coordinate mix-ups (a transposed or shifted result changes the
//! values, which an all-constant image would mask).

use crate::image::Image;

/// The paper's benchmark image width (§4.3: 2544 × 2027 colour image).
pub const PAPER_WIDTH: usize = 2544;
/// The paper's benchmark image height.
pub const PAPER_HEIGHT: usize = 2027;
/// The paper's Gaussian kernel size (F = 19).
pub const PAPER_FILTER_SIZE: usize = 19;

/// A deterministic colour test pattern: smooth gradients plus per-channel
/// sinusoidal texture, intensities in `[0, 1]`.
///
/// # Example
///
/// ```
/// use membound_image::generate;
///
/// let img = generate::test_pattern(64, 96, 3);
/// assert_eq!((img.height(), img.width(), img.channels()), (64, 96, 3));
/// assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
///
/// # Panics
///
/// Panics on invalid dimensions (see [`Image::zeros`]).
#[must_use]
pub fn test_pattern(height: usize, width: usize, channels: usize) -> Image {
    let mut img = Image::zeros(height, width, channels);
    for i in 0..height {
        for j in 0..width {
            for c in 0..channels {
                let y = i as f32 / height as f32;
                let x = j as f32 / width as f32;
                let phase = (c as f32 + 1.0) * 2.4;
                let v = 0.35 + 0.3 * y + 0.2 * x + 0.15 * (phase * (x * 12.0 + y * 7.0)).sin();
                img.set(i, j, c, v.clamp(0.0, 1.0));
            }
        }
    }
    img
}

/// Deterministic pseudo-random noise in `[0, 1]` (xorshift-based), for
/// property tests that should not rely on smooth inputs.
///
/// # Panics
///
/// Panics on invalid dimensions (see [`Image::zeros`]).
#[must_use]
pub fn noise(height: usize, width: usize, channels: usize, seed: u64) -> Image {
    let mut img = Image::zeros(height, width, channels);
    // Splitmix-style scrambling keeps distinct seeds distinct (a plain
    // `seed | 1` would collide adjacent even/odd seeds) and avoids the
    // xorshift fixed point at 0.
    let mut state = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x2545_f491_4f6c_dd1d)
        | 1;
    for v in img.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state >> 40) as f32 / (1u64 << 24) as f32;
    }
    img
}

/// An impulse image: zero everywhere except a single 1.0 at
/// `(row, col, channel)`. Blurring an impulse recovers the kernel itself —
/// the sharpest possible correctness probe for the blur variants.
///
/// # Panics
///
/// Panics if the coordinate is out of bounds.
#[must_use]
pub fn impulse(
    height: usize,
    width: usize,
    channels: usize,
    row: usize,
    col: usize,
    channel: usize,
) -> Image {
    let mut img = Image::zeros(height, width, channels);
    img.set(row, col, channel, 1.0);
    img
}

/// The full-size stand-in for the paper's photograph: a 2544 × 2027
/// three-channel test pattern.
#[must_use]
pub fn paper_image() -> Image {
    test_pattern(PAPER_HEIGHT, PAPER_WIDTH, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_pattern_is_deterministic_and_bounded() {
        let a = test_pattern(16, 24, 3);
        let b = test_pattern(16, 24, 3);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn test_pattern_has_structure() {
        let img = test_pattern(32, 32, 1);
        // Not constant: gradient means corners differ.
        assert!((img.get(0, 0, 0) - img.get(31, 31, 0)).abs() > 0.1);
    }

    #[test]
    fn noise_depends_on_seed_only() {
        let a = noise(8, 8, 3, 42);
        let b = noise(8, 8, 3, 42);
        let c = noise(8, 8, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn impulse_has_a_single_nonzero() {
        let img = impulse(5, 5, 3, 2, 3, 1);
        let nonzero = img.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 1);
        assert_eq!(img.get(2, 3, 1), 1.0);
    }

    #[test]
    fn paper_constants_match_section_4_3() {
        assert_eq!(PAPER_WIDTH, 2544);
        assert_eq!(PAPER_HEIGHT, 2027);
        assert_eq!(PAPER_FILTER_SIZE, 19);
    }
}
