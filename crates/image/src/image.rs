//! Interleaved-channel `f32` images.

use std::fmt;

/// Errors produced by image construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The pixel buffer length does not match `height × width × channels`.
    ShapeMismatch {
        /// Expected buffer length.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// A dimension was zero or the channel count unsupported.
    InvalidDimensions,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "pixel buffer length {actual} does not match shape (expected {expected})"
                )
            }
            ImageError::InvalidDimensions => {
                write!(f, "image dimensions must be nonzero with 1 or 3 channels")
            }
        }
    }
}

impl std::error::Error for ImageError {}

/// An `height × width × channels` image of `f32` intensities with
/// interleaved channels — the exact memory layout of the paper's Gaussian
/// blur benchmark (`srcData[(i * w + j) * cntChannel + c]`).
///
/// Intensities are nominally in `[0, 1]` but the type does not enforce it
/// (intermediate blur buffers hold partial sums).
///
/// # Example
///
/// ```
/// use membound_image::Image;
///
/// let mut img = Image::zeros(4, 6, 3);
/// img.set(1, 2, 0, 0.5);
/// assert_eq!(img.get(1, 2, 0), 0.5);
/// assert_eq!(img.index_of(1, 2, 0), (1 * 6 + 2) * 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    height: usize,
    width: usize,
    channels: usize,
    data: Vec<f32>,
}

impl Image {
    /// An all-zero image.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `channels` is not 1 or 3.
    #[must_use]
    pub fn zeros(height: usize, width: usize, channels: usize) -> Self {
        assert!(
            height > 0 && width > 0 && (channels == 1 || channels == 3),
            "image dimensions must be nonzero with 1 or 3 channels"
        );
        Self {
            height,
            width,
            channels,
            data: vec![0.0; height * width * channels],
        }
    }

    /// Wrap an existing interleaved pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero dimensions or an
    /// unsupported channel count, and [`ImageError::ShapeMismatch`] when
    /// the buffer length is not `height × width × channels`.
    pub fn from_vec(
        height: usize,
        width: usize,
        channels: usize,
        data: Vec<f32>,
    ) -> Result<Self, ImageError> {
        if height == 0 || width == 0 || !(channels == 1 || channels == 3) {
            return Err(ImageError::InvalidDimensions);
        }
        let expected = height * width * channels;
        if data.len() != expected {
            return Err(ImageError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            height,
            width,
            channels,
            data,
        })
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of interleaved channels (1 or 3).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Flat buffer index of `(row, col, channel)`.
    #[must_use]
    pub fn index_of(&self, row: usize, col: usize, channel: usize) -> usize {
        (row * self.width + col) * self.channels + channel
    }

    /// Intensity at `(row, col, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize, channel: usize) -> f32 {
        assert!(row < self.height && col < self.width && channel < self.channels);
        self.data[self.index_of(row, col, channel)]
    }

    /// Set the intensity at `(row, col, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, channel: usize, value: f32) {
        assert!(row < self.height && col < self.width && channel < self.channels);
        let idx = self.index_of(row, col, channel);
        self.data[idx] = value;
    }

    /// The interleaved pixel buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The interleaved pixel buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the image and return its pixel buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Bytes occupied by the pixel buffer.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// An image of identical shape, zero-filled (blur scratch buffers).
    #[must_use]
    pub fn same_shape_zeros(&self) -> Self {
        Self::zeros(self.height, self.width, self.channels)
    }

    /// Maximum absolute per-element difference against another image.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(
            (self.height, self.width, self.channels),
            (other.height, other.width, other.channels),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Maximum absolute difference over an interior window, ignoring a
    /// border of `margin` pixels — blur variants differ in how they treat
    /// edges, so equivalence checks compare interiors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or the margin consumes the whole image.
    #[must_use]
    pub fn max_abs_diff_interior(&self, other: &Image, margin: usize) -> f32 {
        assert_eq!(
            (self.height, self.width, self.channels),
            (other.height, other.width, other.channels),
            "shape mismatch"
        );
        assert!(
            2 * margin < self.height && 2 * margin < self.width,
            "margin consumes the whole image"
        );
        let mut max = 0.0_f32;
        for i in margin..self.height - margin {
            for j in margin..self.width - margin {
                for c in 0..self.channels {
                    let d = (self.get(i, j, c) - other.get(i, j, c)).abs();
                    max = max.max(d);
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let img = Image::zeros(3, 5, 3);
        assert_eq!(img.height(), 3);
        assert_eq!(img.width(), 5);
        assert_eq!(img.channels(), 3);
        assert_eq!(img.as_slice().len(), 45);
        assert!(img.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn interleaved_layout_matches_the_paper() {
        let img = Image::zeros(10, 20, 3);
        // srcData[(i * w + j) * cntChannel + c]
        assert_eq!(img.index_of(2, 5, 1), (2 * 20 + 5) * 3 + 1);
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = Image::zeros(2, 2, 1);
        img.set(1, 0, 0, 0.25);
        assert_eq!(img.get(1, 0, 0), 0.25);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Image::from_vec(2, 2, 1, vec![0.0; 4]).is_ok());
        assert_eq!(
            Image::from_vec(2, 2, 1, vec![0.0; 5]),
            Err(ImageError::ShapeMismatch {
                expected: 4,
                actual: 5
            })
        );
        assert_eq!(
            Image::from_vec(0, 2, 1, vec![]),
            Err(ImageError::InvalidDimensions)
        );
        assert_eq!(
            Image::from_vec(2, 2, 2, vec![0.0; 8]),
            Err(ImageError::InvalidDimensions)
        );
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let a = Image::zeros(2, 2, 1);
        let mut b = Image::zeros(2, 2, 1);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(0, 1, 0, -0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn interior_diff_ignores_border() {
        let a = Image::zeros(6, 6, 1);
        let mut b = Image::zeros(6, 6, 1);
        b.set(0, 0, 0, 9.0); // border difference
        assert_eq!(a.max_abs_diff_interior(&b, 1), 0.0);
        b.set(3, 3, 0, 1.0); // interior difference
        assert_eq!(a.max_abs_diff_interior(&b, 1), 1.0);
    }

    #[test]
    fn size_bytes_counts_f32s() {
        let img = Image::zeros(4, 4, 3);
        assert_eq!(img.size_bytes(), 4 * 4 * 3 * 4);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn diff_of_mismatched_shapes_panics() {
        let a = Image::zeros(2, 2, 1);
        let b = Image::zeros(2, 3, 1);
        let _ = a.max_abs_diff(&b);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ImageError::ShapeMismatch {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('5'));
    }
}
