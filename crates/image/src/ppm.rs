//! Binary PPM (P6) input/output.
//!
//! The paper filters a real 2544 × 2027 photograph; users who want to
//! reproduce that with their own image can load any 8-bit binary PPM
//! (`convert photo.jpg photo.ppm` with ImageMagick) and save the blurred
//! result. Intensities are normalized to `[0, 1]` on load, exactly as
//! §4.3 describes ("from 0 to 1, if normalization is performed"), and
//! clamped back to 8-bit on save.

use crate::image::Image;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from PPM parsing and writing.
#[derive(Debug)]
pub enum PpmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a `P6` file, or malformed header fields.
    BadHeader(String),
    /// Pixel data ended early.
    Truncated,
}

impl fmt::Display for PpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpmError::Io(e) => write!(f, "ppm i/o failed: {e}"),
            PpmError::BadHeader(why) => write!(f, "invalid ppm header: {why}"),
            PpmError::Truncated => write!(f, "ppm pixel data ended early"),
        }
    }
}

impl std::error::Error for PpmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PpmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PpmError {
    fn from(e: std::io::Error) -> Self {
        PpmError::Io(e)
    }
}

/// Read one whitespace/comment-delimited header token.
fn token<R: BufRead>(r: &mut R) -> Result<String, PpmError> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if tok.is_empty() {
                    return Err(PpmError::BadHeader("unexpected end of header".into()));
                }
                return Ok(tok);
            }
            _ => {
                let c = byte[0] as char;
                if in_comment {
                    if c == '\n' {
                        in_comment = false;
                    }
                } else if c == '#' {
                    in_comment = true;
                } else if c.is_ascii_whitespace() {
                    if !tok.is_empty() {
                        return Ok(tok);
                    }
                } else {
                    tok.push(c);
                }
            }
        }
    }
}

/// Parse a binary `P6` PPM into a normalized 3-channel [`Image`].
///
/// # Errors
///
/// Fails on I/O errors, non-`P6` input, malformed header numbers,
/// unsupported max values (> 255) or truncated pixel data.
///
/// # Example
///
/// ```
/// use membound_image::ppm;
///
/// // A 1x2 image: one red pixel, one black pixel.
/// let data: Vec<u8> = [b"P6 2 1 255\n".as_slice(), &[255, 0, 0, 0, 0, 0]].concat();
/// let img = ppm::read_ppm(&mut data.as_slice())?;
/// assert_eq!((img.height(), img.width()), (1, 2));
/// assert_eq!(img.get(0, 0, 0), 1.0);
/// assert_eq!(img.get(0, 1, 0), 0.0);
/// # Ok::<(), membound_image::PpmError>(())
/// ```
pub fn read_ppm<R: BufRead>(r: &mut R) -> Result<Image, PpmError> {
    let magic = token(r)?;
    if magic != "P6" {
        return Err(PpmError::BadHeader(format!("expected P6, got {magic}")));
    }
    let parse = |tok: String, what: &str| {
        tok.parse::<usize>()
            .map_err(|_| PpmError::BadHeader(format!("bad {what}: {tok}")))
    };
    let width = parse(token(r)?, "width")?;
    let height = parse(token(r)?, "height")?;
    let maxval = parse(token(r)?, "maxval")?;
    if width == 0 || height == 0 {
        return Err(PpmError::BadHeader("zero dimension".into()));
    }
    if maxval == 0 || maxval > 255 {
        return Err(PpmError::BadHeader(format!(
            "unsupported maxval {maxval} (only 8-bit supported)"
        )));
    }
    let mut pixels = vec![0u8; width * height * 3];
    r.read_exact(&mut pixels).map_err(|_| PpmError::Truncated)?;
    let scale = 1.0 / maxval as f32;
    let data: Vec<f32> = pixels.into_iter().map(|b| f32::from(b) * scale).collect();
    Image::from_vec(height, width, 3, data)
        .map_err(|e| PpmError::BadHeader(format!("inconsistent image: {e}")))
}

/// Write a 3-channel [`Image`] as a binary `P6` PPM, clamping intensities
/// to `[0, 1]` and quantizing to 8 bits.
///
/// # Errors
///
/// Fails on I/O errors or when given a single-channel image.
pub fn write_ppm<W: Write>(img: &Image, w: &mut W) -> Result<(), PpmError> {
    if img.channels() != 3 {
        return Err(PpmError::BadHeader(
            "PPM P6 requires a 3-channel image".into(),
        ));
    }
    writeln!(w, "P6\n{} {}\n255", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .as_slice()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    w.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn round_trip_within_quantization() {
        let img = generate::test_pattern(13, 17, 3);
        let mut bytes = Vec::new();
        write_ppm(&img, &mut bytes).unwrap();
        let back = read_ppm(&mut bytes.as_slice()).unwrap();
        assert_eq!((back.height(), back.width()), (13, 17));
        assert!(
            img.max_abs_diff(&back) <= 0.5 / 255.0 + 1e-6,
            "quantization error bound"
        );
    }

    #[test]
    fn header_comments_and_whitespace_tolerated() {
        let data: Vec<u8> = [
            b"P6 # a comment\n# another\n 2\t1 \n255\n".as_slice(),
            &[1, 2, 3, 4, 5, 6],
        ]
        .concat();
        let img = read_ppm(&mut data.as_slice()).unwrap();
        assert_eq!((img.height(), img.width()), (1, 2));
        assert!((img.get(0, 1, 2) - 6.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn non_p6_rejected() {
        let data = b"P3 1 1 255\n1 2 3".to_vec();
        assert!(matches!(
            read_ppm(&mut data.as_slice()),
            Err(PpmError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_pixels_rejected() {
        let data: Vec<u8> = [b"P6 2 2 255\n".as_slice(), &[0u8; 5]].concat();
        assert!(matches!(
            read_ppm(&mut data.as_slice()),
            Err(PpmError::Truncated)
        ));
    }

    #[test]
    fn sixteen_bit_maxval_rejected() {
        let data = b"P6 1 1 65535\n".to_vec();
        assert!(matches!(
            read_ppm(&mut data.as_slice()),
            Err(PpmError::BadHeader(_))
        ));
    }

    #[test]
    fn single_channel_write_rejected() {
        let img = crate::Image::zeros(2, 2, 1);
        let mut out = Vec::new();
        assert!(matches!(
            write_ppm(&img, &mut out),
            Err(PpmError::BadHeader(_))
        ));
    }

    #[test]
    fn values_clamp_on_write() {
        let mut img = crate::Image::zeros(1, 1, 3);
        img.set(0, 0, 0, 2.0); // over-range partial blur sums
        img.set(0, 0, 1, -1.0);
        let mut bytes = Vec::new();
        write_ppm(&img, &mut bytes).unwrap();
        let back = read_ppm(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.get(0, 0, 0), 1.0);
        assert_eq!(back.get(0, 0, 1), 0.0);
    }
}
