//! `membound-image` — the image/tensor substrate for the Gaussian-blur
//! benchmark of the PACT 2023 RISC-V memory-bound-kernels reproduction.
//!
//! Provides:
//!
//! * [`Image`] — `H × W × C` interleaved-channel `f32` images with exactly
//!   the paper's memory layout (`data[(i * w + j) * channels + c]`);
//! * [`Gaussian1D`] / [`Gaussian2D`] — normalized Gaussian kernels built
//!   per Eq. 1 of the paper (the 2-D kernel is the outer product of two
//!   1-D kernels, which is what makes the "1D_kernels" optimization valid);
//! * [`generate`] — deterministic synthetic stand-ins for the paper's
//!   2544 × 2027 photograph.
//!
//! # Example
//!
//! ```
//! use membound_image::{generate, Gaussian1D};
//!
//! let img = generate::test_pattern(32, 48, 3);
//! let kernel = Gaussian1D::with_default_sigma(19);
//! assert_eq!(kernel.len(), 19);
//! assert_eq!(img.channels(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
mod image;
mod kernel;
pub mod ppm;

pub use image::{Image, ImageError};
pub use kernel::{Gaussian1D, Gaussian2D};
pub use ppm::PpmError;
