//! Property tests for the image substrate and Gaussian kernels.

use membound_image::{generate, Gaussian1D, Gaussian2D, Image};
use proptest::prelude::*;

proptest! {
    /// Every 1-D kernel is normalized, symmetric and unimodal for any odd
    /// size and positive sigma.
    #[test]
    fn kernels_are_normalized_symmetric_unimodal(
        half in 0usize..24,
        sigma in 0.2f64..12.0,
    ) {
        let size = 2 * half + 1;
        let k = Gaussian1D::new(size, sigma);
        let sum: f32 = k.taps().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5, "sum {sum}");
        for i in 0..size {
            prop_assert!((k.taps()[i] - k.taps()[size - 1 - i]).abs() < 1e-6);
        }
        // Non-increasing away from the centre.
        for i in half..size - 1 {
            prop_assert!(k.taps()[i] >= k.taps()[i + 1] - 1e-7);
        }
        prop_assert!(k.taps().iter().all(|&t| t >= 0.0));
    }

    /// The 2-D kernel equals the outer product and is itself normalized.
    #[test]
    fn two_d_kernel_is_separable(half in 0usize..10, sigma in 0.3f64..8.0) {
        let size = 2 * half + 1;
        let k1 = Gaussian1D::new(size, sigma);
        let k2 = Gaussian2D::new(size, sigma);
        for i in 0..size {
            for j in 0..size {
                let expected = k1.taps()[i] * k1.taps()[j];
                prop_assert!((k2.tap(i, j) - expected).abs() < 1e-7);
            }
        }
        let sum: f32 = k2.taps().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Image get/set round-trips at arbitrary coordinates.
    #[test]
    fn image_get_set_round_trip(
        h in 1usize..40,
        w in 1usize..40,
        c3 in any::<bool>(),
        coords in proptest::collection::vec((0usize..40, 0usize..40, 0usize..3), 0..30),
    ) {
        let channels = if c3 { 3 } else { 1 };
        let mut img = Image::zeros(h, w, channels);
        for (i, (r, col, ch)) in coords.into_iter().enumerate() {
            let (r, col, ch) = (r % h, col % w, ch % channels);
            let v = i as f32 * 0.25;
            img.set(r, col, ch, v);
            prop_assert_eq!(img.get(r, col, ch), v);
        }
    }

    /// The flat index is a bijection over the image shape.
    #[test]
    fn index_is_bijective(h in 1usize..16, w in 1usize..16) {
        let img = Image::zeros(h, w, 3);
        let mut seen = vec![false; h * w * 3];
        for r in 0..h {
            for c in 0..w {
                for ch in 0..3 {
                    let idx = img.index_of(r, c, ch);
                    prop_assert!(!seen[idx], "index collision at ({r},{c},{ch})");
                    seen[idx] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Generators stay within [0, 1] and are deterministic.
    #[test]
    fn generators_are_bounded_and_deterministic(
        h in 20usize..48,
        w in 20usize..48,
        seed in any::<u64>(),
    ) {
        let a = generate::noise(h, w, 3, seed);
        let b = generate::noise(h, w, 3, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let p = generate::test_pattern(h, w, 3);
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Interior-diff with margin zero equals the full diff.
    #[test]
    fn interior_diff_with_zero_margin_is_full_diff(
        h in 3usize..12,
        w in 3usize..12,
        seed in any::<u64>(),
    ) {
        let a = generate::noise(h, w, 1, seed);
        let b = generate::noise(h, w, 1, seed.wrapping_add(1));
        prop_assert_eq!(a.max_abs_diff(&b), a.max_abs_diff_interior(&b, 0));
    }
}
