//! Property tests for analytic (trace-IR fast-forward) execution: the
//! digest-identity contract of DESIGN.md §15.
//!
//! Every scripted trace must produce a bit-identical
//! [`SimReport::stats_digest`] three ways:
//!
//! 1. analytic executor on (`Machine::with_analytic(true)`, the default),
//! 2. analytic executor off (forced full replay through the fast path),
//! 3. the [`Machine::without_fastpath`] reference build (which cannot run
//!    the analytic executor at all).
//!
//! The generated scripts deliberately cover the shapes the analytic
//! planner must either prove periodic or *refuse*: negative, zero and
//! sub-line strides, page-straddling ranges, armed-line handoffs (RMW
//! batches that leave lines armed for a later pass), and long unit-stride
//! sweeps that actually engage fast-forward on the TLB-off variants. Both
//! the stock presets (translation on — the planner's shape gates reject
//! every nonzero stride) and their [`DeviceSpec::without_tlb`] variants
//! (fast-forward eligible) are exercised, so the suite proves both "the
//! gate refuses correctly" and "the extrapolation replays correctly".

use membound_sim::{Device, DeviceSpec, Machine, SimReport};
use membound_trace::TraceSink;
use proptest::prelude::*;

/// One scripted reference; the op byte selects the flavour.
type Op = (u8, u64, u32);

/// Stride menu for the batch ops: negative, zero, sub-line, exactly one
/// line, and a transpose-style multi-line stride.
const STRIDES: [i64; 8] = [-520, -64, -8, 0, 8, 24, 64, 520];

/// Replay a scripted op sequence into a sink.
///
/// Scalar addresses come from a small pool (two adjacent 4 KiB pages plus
/// a far region) so same-line repeats are constant; batch ops get their
/// own disjoint regions so negative strides stay inside mapped space.
fn replay<S: TraceSink>(ops: &[Op], sink: &mut S) {
    for &(op, raw_addr, raw_size) in ops {
        let pool = 0x1000_0000_0000 + raw_addr % (2 * 4096);
        let size = 1 + raw_size % 72;
        match op {
            0 => sink.load(pool, size),
            1 => sink.store(pool, size),
            // Page-boundary huggers: ranges that start near the end of a
            // page and run over it.
            2 => sink.load_range(
                0x1000_0000_0000 + 4096 - (raw_addr % 80),
                u64::from(size) * 11,
            ),
            3 => sink.store_range(
                0x2000_0000_0000 + (raw_addr % 64) * 4096,
                u64::from(size) * 23,
            ),
            // Constant-stride batches over the whole stride menu. The
            // base sits 1 MiB into its region so negative strides never
            // underflow into the scalar pool.
            4 | 5 => {
                let stride = STRIDES[(raw_size as usize) % STRIDES.len()];
                let base = 0x3000_0000_0000 + (1 << 20) + (raw_addr % 4096) * 8;
                let count = 1 + raw_addr % 300;
                if op == 4 {
                    sink.access_strided(base, stride, count, 8, raw_size % 5 == 0);
                } else {
                    // RMW arms every touched line; a later op 4/7 over the
                    // same region is the armed handoff.
                    sink.access_strided_rmw(base, stride, count, 8);
                }
            }
            6 => sink.barrier(),
            // Long unit-stride sweep: on Mango's 8 KiB fold modulus this
            // is enough iterations for the planner to prove a steady
            // state and fast-forward (TLB off), so the proptest corpus
            // exercises extrapolation, not just fallback.
            _ => {
                let base = 0x4000_0000_0000 + (raw_addr % 8) * (1 << 21);
                sink.access_strided(base, 64, 2048 + raw_addr % 2048, 8, op % 2 == 0);
            }
        }
    }
}

fn digest(spec: DeviceSpec, ops: &[Op], build: fn(Machine) -> Machine) -> SimReport {
    build(Machine::new(spec)).simulate(1, |_tid, sink| replay(ops, sink))
}

/// Three-way digest identity on one spec; returns the analytic report so
/// callers can assert on engagement counters.
fn assert_three_way(spec: &DeviceSpec, ops: &[Op], label: &str) -> SimReport {
    let analytic = digest(spec.clone(), ops, |m| m.with_analytic(true));
    let replay = digest(spec.clone(), ops, |m| m.with_analytic(false));
    let reference = digest(spec.clone(), ops, Machine::without_fastpath);
    assert_eq!(
        analytic.stats_digest(),
        replay.stats_digest(),
        "analytic executor diverged from forced replay on {label}: {analytic:#?} vs {replay:#?}"
    );
    assert_eq!(
        replay.stats_digest(),
        reference.stats_digest(),
        "fast path diverged from reference on {label}: {replay:#?} vs {reference:#?}"
    );
    assert_eq!(
        replay.analytic_ops, 0,
        "replay build must never fast-forward"
    );
    analytic
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Analytic on, analytic off and the no-fastpath reference agree,
    /// digest-for-digest, on all four presets with translation enabled.
    /// (The planner refuses every nonzero-stride loop here, but
    /// zero-line-shift periods — e.g. zero-stride batches — may still
    /// legitimately fast-forward: a frozen-translation proof is vacuous
    /// when nothing moves.)
    #[test]
    fn analytic_digest_matches_replay_and_reference_tlb_on(
        ops in proptest::collection::vec((0u8..8, 0u64..1 << 16, 0u32..1 << 16), 1..120),
    ) {
        for device in Device::all() {
            assert_three_way(&device.spec(), &ops, device.spec().name.as_str());
        }
    }

    /// Same three-way identity on the TLB-off variants, where long
    /// sweeps are fast-forward eligible and extrapolation really runs.
    #[test]
    fn analytic_digest_matches_replay_and_reference_tlb_off(
        ops in proptest::collection::vec((0u8..8, 0u64..1 << 16, 0u32..1 << 16), 1..120),
    ) {
        for device in Device::all() {
            let spec = device.spec().without_tlb();
            let label = format!("{} (no TLB)", device);
            assert_three_way(&spec, &ops, &label);
        }
    }
}

/// Deterministic armed-handoff soak: an RMW pass arms every line of a
/// region, then a long unit-stride load sweep (the fast-forward headline
/// shape) re-reads it, then a second RMW pass rewrites it. The planner
/// must either carry the armed bits through extrapolation exactly or
/// refuse; digest identity proves whichever it chose was sound. On
/// Mango's single 8 KiB-modulus L1 the sweep is long enough that
/// fast-forward must actually engage.
#[test]
fn armed_handoff_survives_fast_forward() {
    let trace = |sink: &mut dyn TraceSink| {
        let base = 0x5000_0000_0000u64;
        sink.access_strided_rmw(base, 64, 4096, 8);
        sink.access_strided(base, 64, 1 << 15, 8, false);
        sink.barrier();
        // Backward pass over the same lines: negative stride from the
        // far end, still armed from the RMW prologue.
        sink.access_strided(base + (1 << 15) * 64 - 64, -64, 1 << 14, 8, true);
        sink.access_strided_rmw(base, 8, 4096, 8);
    };
    for device in Device::all() {
        let spec = device.spec().without_tlb();
        let run = |build: fn(Machine) -> Machine| {
            build(Machine::new(spec.clone())).simulate(1, |_tid, sink| trace(sink))
        };
        let analytic = run(|m| m.with_analytic(true));
        let replay = run(|m| m.with_analytic(false));
        let reference = run(Machine::without_fastpath);
        assert_eq!(
            analytic.stats_digest(),
            replay.stats_digest(),
            "armed handoff diverged under fast-forward on {device}"
        );
        assert_eq!(
            replay.stats_digest(),
            reference.stats_digest(),
            "fast path diverged from reference on {device}"
        );
        if *device == Device::MangoPiMqPro {
            assert!(
                analytic.analytic_ops > 0,
                "the 32 Ki-element sweep must fast-forward on Mango's 8 KiB modulus: {analytic:?}"
            );
        }
    }
}

/// Sub-line and zero strides hammer one line (or a handful) per batch —
/// the degenerate periodicities where an off-by-one in the repeat-line
/// fast path interaction would hide. Dense deterministic sweep over
/// every stride in the menu on every TLB-off preset.
#[test]
fn degenerate_strides_are_digest_exact() {
    for device in Device::all() {
        let spec = device.spec().without_tlb();
        for &stride in &STRIDES {
            let trace = move |sink: &mut dyn TraceSink| {
                let base = 0x6000_0000_0000u64 + (1 << 20);
                sink.access_strided(base, stride, 5000, 8, false);
                sink.access_strided_rmw(base + 1024, stride, 2500, 8);
                sink.access_strided(base, stride, 5000, 4, true);
            };
            let analytic = Machine::new(spec.clone())
                .with_analytic(true)
                .simulate(1, |_tid, sink| trace(sink));
            let replay = Machine::new(spec.clone())
                .with_analytic(false)
                .simulate(1, |_tid, sink| trace(sink));
            assert_eq!(
                analytic.stats_digest(),
                replay.stats_digest(),
                "stride {stride} diverged on {device}"
            );
        }
    }
}
