//! Property tests for the simulator: model-based checking of the cache
//! against a brute-force reference, plus global invariants of the
//! machine-level accounting.

use membound_sim::{Cache, CacheConfig, Device, Machine, ReplacementPolicy, Tlb, TlbConfig};
use membound_trace::TraceSink;
use proptest::prelude::*;

/// A brute-force fully-explicit reference model of a set-associative LRU
/// cache, against which the production cache is checked access by access.
struct ReferenceLru {
    sets: Vec<Vec<(u64, bool)>>, // per set: (line, dirty), front = MRU
    ways: usize,
}

impl ReferenceLru {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }

    /// Returns (hit, writeback).
    fn access_and_fill(&mut self, line: u64, write: bool) -> (bool, Option<u64>) {
        let si = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, d) = set.remove(pos);
            set.insert(0, (l, d || write));
            return (true, None);
        }
        set.insert(0, (line, write));
        if set.len() > self.ways {
            let (victim, dirty) = set.pop().expect("overfull set");
            (false, dirty.then_some(victim))
        } else {
            (false, None)
        }
    }
}

proptest! {
    /// The production cache agrees with the reference LRU model on hits,
    /// misses and writebacks for arbitrary access sequences.
    #[test]
    fn cache_matches_reference_lru(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..400),
        ways in 1u16..5,
    ) {
        let sets = 8u64;
        let size = sets * u64::from(ways) * 64;
        let mut cache = Cache::new(CacheConfig::new("t", size, ways, 64));
        let mut reference = ReferenceLru::new(sets as usize, ways as usize);
        for (line, write) in accesses {
            let result = cache.access(line, write);
            let (ref_hit, ref_wb) = reference.access_and_fill(line, write);
            prop_assert_eq!(result.hit, ref_hit, "hit status diverged on line {}", line);
            if !result.hit {
                let wb = cache.fill(line, write, false);
                prop_assert_eq!(wb, ref_wb, "writeback diverged on line {}", line);
            }
        }
    }

    /// No replacement policy ever exceeds capacity or loses the
    /// just-filled line.
    #[test]
    fn capacity_and_presence_invariants(
        lines in proptest::collection::vec(0u64..1000, 1..300),
        policy_idx in 0usize..4,
    ) {
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
            ReplacementPolicy::TreePlru,
        ][policy_idx];
        let mut cache = Cache::new(
            CacheConfig::new("t", 4096, 4, 64).policy(policy),
        );
        for line in lines {
            if !cache.access(line, false).hit {
                cache.fill(line, false, false);
            }
            prop_assert!(cache.resident_lines() <= 64);
            prop_assert!(cache.contains(line), "just-touched line must be resident");
        }
    }

    /// Dirty data is never silently dropped: every dirty fill is either
    /// still resident or was announced as a writeback.
    #[test]
    fn dirty_lines_are_never_lost(
        lines in proptest::collection::vec(0u64..100, 1..300),
    ) {
        let mut cache = Cache::new(CacheConfig::new("t", 2048, 2, 64));
        let mut dirty_somewhere: std::collections::HashSet<u64> = Default::default();
        for line in lines {
            let res = cache.access(line, true);
            if !res.hit {
                if let Some(wb) = cache.fill(line, true, false) {
                    prop_assert!(
                        dirty_somewhere.remove(&wb),
                        "writeback of a line never dirtied: {}", wb
                    );
                }
            }
            dirty_somewhere.insert(line);
        }
        for &line in &dirty_somewhere {
            prop_assert!(
                cache.contains(line),
                "dirty line {} vanished without a writeback", line
            );
        }
    }

    /// The TLB honours its reach: after touching exactly `entries`
    /// distinct pages, all of them still translate.
    #[test]
    fn fully_associative_tlb_reach(entries in 1u32..64) {
        let mut tlb = Tlb::new(TlbConfig::fully_associative("t", entries));
        for vpn in 0..u64::from(entries) {
            tlb.lookup(vpn);
            tlb.fill(vpn);
        }
        for vpn in 0..u64::from(entries) {
            prop_assert!(tlb.lookup(vpn), "page {} within reach must hit", vpn);
        }
    }

    /// Simulation is deterministic: the same trace yields bit-identical
    /// reports.
    #[test]
    fn simulation_is_deterministic(
        addrs in proptest::collection::vec(0u64..1 << 24, 1..200),
    ) {
        let machine = Machine::new(Device::StarFiveVisionFive.spec());
        let run = || {
            machine.simulate(2, |tid, sink| {
                for &a in &addrs {
                    sink.load(a.wrapping_add(u64::from(tid) << 32), 8);
                }
            })
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.dram, b.dram);
    }

    /// Traffic conservation: bytes filled into L1 equal bytes supplied by
    /// the level below it (no bus invents or loses data).
    #[test]
    fn fills_are_conserved_across_levels(
        addrs in proptest::collection::vec(0u64..1 << 22, 1..300),
    ) {
        let machine = Machine::new(Device::MangoPiMqPro.spec());
        let report = machine.simulate(1, |_tid, sink| {
            for &a in &addrs {
                sink.load(a, 8);
            }
        });
        // Single-level device: every L1 fill comes straight from DRAM.
        let l1 = report.cache_stats[0];
        prop_assert_eq!(l1.fill_bytes, report.dram.bytes_read);
        prop_assert_eq!(l1.writeback_bytes, report.dram.bytes_written);
    }

    /// Cross-validation against an independent analysis: a fully
    /// associative LRU cache must miss exactly the accesses whose
    /// reuse (stack) distance is at least its capacity — the classic
    /// stack-distance theorem, with the histogram computed by
    /// `membound_trace::reuse` and the misses by the production cache.
    #[test]
    fn cache_misses_match_stack_distance_theory(
        lines in proptest::collection::vec(0u64..200, 1..600),
        ways in 1u16..32,
    ) {
        use membound_trace::reuse::ReuseHistogram;
        // Fully associative: one set of `ways` lines.
        let mut cache = Cache::new(CacheConfig::new(
            "fa",
            u64::from(ways) * 64,
            ways,
            64,
        ));
        let mut hist = ReuseHistogram::new(64);
        let mut misses = 0u64;
        for &line in &lines {
            hist.record(line * 64);
            if !cache.access(line, false).hit {
                misses += 1;
                cache.fill(line, false, false);
            }
        }
        prop_assert_eq!(
            misses,
            hist.misses_for_capacity(u64::from(ways)),
            "cache model disagrees with the stack-distance theorem"
        );
    }

    /// More work never takes less simulated time (monotonicity).
    #[test]
    fn time_is_monotone_in_work(extra in 1u64..2000) {
        let machine = Machine::new(Device::RaspberryPi4.spec());
        let run = |count: u64| {
            machine
                .simulate(1, |_tid, sink| {
                    for i in 0..count {
                        sink.load(i * 64, 64);
                    }
                })
                .cycles
        };
        let base = run(2000);
        let more = run(2000 + extra);
        prop_assert!(more >= base);
    }
}
