//! Property test for the repeat-line fast path: random reference
//! sequences must produce bit-identical [`SimReport::stats_digest`]
//! values through the fast path and through a reference machine built
//! with [`Machine::without_fastpath`], on every device preset.
//!
//! The sequences mix loads and stores, straddling and page-crossing
//! references, bulk unit-stride ranges (exercising the
//! `TraceSink::access_range` override) and barriers, over a small enough
//! address pool that same-line repeats — the pattern the fast path
//! short-circuits — occur constantly.

use membound_sim::{Device, Machine, SimReport};
use membound_trace::TraceSink;
use proptest::prelude::*;

/// One scripted reference; op selects the flavour.
type Op = (u8, u64, u32);

/// Replay a scripted op sequence into a sink.
///
/// Addresses come from a deliberately small pool (two 4 KiB pages plus a
/// far region that aliases nothing) so lines repeat often; odd sizes up
/// to 72 bytes produce plenty of line-straddling and page-crossing
/// references.
fn replay<S: TraceSink>(ops: &[Op], sink: &mut S) {
    for &(op, raw_addr, raw_size) in ops {
        let addr = match op % 3 {
            // Dense pool: offsets within two adjacent pages.
            0 => 0x1000_0000_0000 + raw_addr % (2 * 4096),
            // Page-boundary hugger: references that cross into the next
            // page when the size runs over.
            1 => 0x1000_0000_0000 + 4096 - (raw_addr % 80),
            // Far region: evicts dense-pool lines now and then.
            _ => 0x2000_0000_0000 + (raw_addr % 64) * 4096,
        };
        let size = 1 + raw_size % 72;
        match op {
            0..=1 => sink.load(addr, size),
            2..=3 => sink.store(addr, size),
            4 => sink.load_range(addr, u64::from(size) * 11),
            5 => sink.store_range(addr, u64::from(size) * 11),
            _ => sink.barrier(),
        }
    }
}

fn digest_on(device: Device, ops: &[Op], fastpath: bool) -> SimReport {
    let machine = if fastpath {
        Machine::new(device.spec())
    } else {
        Machine::new(device.spec()).without_fastpath()
    };
    machine.simulate(1, |_tid, sink| replay(ops, sink))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast path and reference build agree, digest-for-digest, on all
    /// four device presets.
    #[test]
    fn fastpath_digest_matches_reference_on_all_devices(
        ops in proptest::collection::vec((0u8..7, 0u64..1 << 16, 0u32..1 << 16), 1..250),
    ) {
        for &device in Device::all() {
            let fast = digest_on(device, &ops, true);
            let reference = digest_on(device, &ops, false);
            prop_assert_eq!(
                fast.stats_digest(),
                reference.stats_digest(),
                "fast path diverged from reference on {}: {:#?} vs {:#?}",
                device,
                fast,
                reference
            );
        }
    }
}

/// A dense deterministic soak: unit-stride sweeps with interleaved
/// same-line stores — the exact pattern the fast path accelerates — must
/// agree with the reference build everywhere, including multi-threaded
/// partitioned-cache simulation.
#[test]
fn fastpath_digest_matches_reference_on_hot_patterns() {
    for &device in Device::all() {
        let spec = device.spec();
        let threads = spec.cores.min(2);
        let trace = |tid: u32, sink: &mut dyn TraceSink| {
            let base = 0x1000_0000_0000 + u64::from(tid) * (1 << 30);
            // Transpose-style adjacent load/store pairs on one line.
            for i in 0..2000u64 {
                let col = base + i * 520; // strided: new line every time
                let row = base + (1 << 24) + i * 8; // unit stride
                sink.load(col, 8);
                sink.load(row, 8);
                sink.store(row, 8);
                sink.store(col, 8);
            }
            sink.barrier();
            // Bulk ranges with repeat touches at the seams.
            for r in 0..50u64 {
                let a = base + (1 << 25) + r * 4096;
                sink.load_range(a, 4096);
                sink.store_range(a, 64);
                sink.store_range(a, 64);
            }
        };
        let fast = Machine::new(spec.clone()).simulate(threads, |t, s| trace(t, s));
        let reference = Machine::new(spec)
            .without_fastpath()
            .simulate(threads, |t, s| trace(t, s));
        assert_eq!(
            fast.stats_digest(),
            reference.stats_digest(),
            "hot-pattern divergence on {device}"
        );
    }
}
