//! Property tests for the strided-batch replay pipeline: a
//! [`TraceSink::access_strided`] / [`TraceSink::access_strided_rmw`]
//! batch must produce bit-identical [`SimReport::stats_digest`] values
//! to the equivalent per-element scalar emission, on every device
//! preset — and both must agree with a reference machine built with
//! [`Machine::without_fastpath`], which dispatches batches through the
//! trait-default per-element path.
//!
//! The generated programs mix negative strides, strides larger than a
//! page, zero strides (every element repeats the armed line),
//! sub-line strides, and batches whose first elements straddle a line
//! armed by a preceding scalar reference — the interactions the bulk
//! executors special-case.

use membound_sim::{Device, Machine, SimReport};
use membound_trace::synthetic::StridedSweep;
use membound_trace::{strided_addr, TraceSink, TracedProgram};
use proptest::prelude::*;

/// One scripted op: `(kind, base selector, packed stride/count/size)`.
type Op = (u8, u64, u64);

/// Stride menu covering every executor regime: backward and forward,
/// below a line, exactly a line, line-misaligned, around and beyond a
/// 4 KiB page.
const STRIDES: [i64; 19] = [
    -40000, -32768, -4097, -4096, -520, -64, -9, -8, -1, 0, 1, 8, 63, 64, 65, 520, 4096, 4097,
    32768,
];

fn decode(op: &Op) -> (u8, u64, i64, u64, u32) {
    let &(kind, raw_base, packed) = op;
    let base = match raw_base % 3 {
        // Dense pool: two adjacent pages, so batches collide with
        // scalar traffic and with each other.
        0 => 0x1000_0000_0000 + raw_base % (2 * 4096),
        // Page-boundary hugger: first elements sit just below a page
        // edge, so strides walk straight across it.
        1 => 0x1000_0000_0000 + 4096 - (raw_base % 80),
        // Far region: far enough to alias nothing, evicting dense
        // lines when visited.
        _ => 0x2000_0000_0000 + (raw_base % 64) * 4096,
    };
    let stride = STRIDES[packed as usize % STRIDES.len()];
    let count = (packed >> 8) % 40;
    let size = 1 + ((packed >> 16) % 72) as u32;
    (kind, base, stride, count, size)
}

/// Replay through the bulk batch entry points.
fn replay_batched<S: TraceSink + ?Sized>(ops: &[Op], sink: &mut S) {
    for op in ops {
        let (kind, base, stride, count, size) = decode(op);
        match kind {
            0 => sink.access_strided(base, stride, count, size, false),
            1 => sink.access_strided(base, stride, count, size, true),
            2 => sink.access_strided_rmw(base, stride, count, size),
            // Scalar interludes: arm repeat lines right before a batch
            // starts and tear batch state down mid-program.
            3 => sink.load(base, size),
            4 => sink.store(base, size),
            5 => sink.load_range(base, u64::from(size) * 11),
            _ => sink.barrier(),
        }
    }
}

/// Replay the same program with every batch split in two at an
/// arbitrary element boundary (`cuts` selects where, cycling if the
/// program is longer). Nothing is reordered; only the executor's
/// batch-edge behavior — partial accounting sums, arming, same-page
/// VPN tracking — re-groups at the cut.
fn replay_split<S: TraceSink + ?Sized>(ops: &[Op], cuts: &[u64], sink: &mut S) {
    for (op, cut) in ops.iter().zip(cuts.iter().cycle()) {
        let (kind, base, stride, count, size) = decode(op);
        let k = if count == 0 { 0 } else { cut % (count + 1) };
        let rest = strided_addr(base, stride, k);
        match kind {
            0 | 1 => {
                sink.access_strided(base, stride, k, size, kind == 1);
                sink.access_strided(rest, stride, count - k, size, kind == 1);
            }
            2 => {
                sink.access_strided_rmw(base, stride, k, size);
                sink.access_strided_rmw(rest, stride, count - k, size);
            }
            3 => sink.load(base, size),
            4 => sink.store(base, size),
            5 => sink.load_range(base, u64::from(size) * 11),
            _ => sink.barrier(),
        }
    }
}

/// Replay the same program with every batch expanded element by
/// element — the emission `access_strided` replaces.
fn replay_scalar<S: TraceSink + ?Sized>(ops: &[Op], sink: &mut S) {
    for op in ops {
        let (kind, base, stride, count, size) = decode(op);
        match kind {
            0 | 1 => {
                for i in 0..count {
                    let addr = strided_addr(base, stride, i);
                    if kind == 0 {
                        sink.load(addr, size);
                    } else {
                        sink.store(addr, size);
                    }
                }
            }
            2 => {
                for i in 0..count {
                    let addr = strided_addr(base, stride, i);
                    sink.load(addr, size);
                    sink.store(addr, size);
                }
            }
            3 => sink.load(base, size),
            4 => sink.store(base, size),
            5 => sink.load_range(base, u64::from(size) * 11),
            _ => sink.barrier(),
        }
    }
}

fn simulate(device: Device, fastpath: bool, f: impl Fn(&mut dyn TraceSink) + Sync) -> SimReport {
    let machine = if fastpath {
        Machine::new(device.spec())
    } else {
        Machine::new(device.spec()).without_fastpath()
    };
    machine.simulate(1, |_tid, sink| f(sink))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched, scalar-expanded and reference-machine replays agree,
    /// digest-for-digest, on all four device presets.
    #[test]
    fn strided_digest_matches_scalar_on_all_devices(
        ops in proptest::collection::vec((0u8..7, 0u64..1 << 16, 0u64..1 << 24), 1..60),
    ) {
        for &device in Device::all() {
            let batched = simulate(device, true, |s| replay_batched(&ops, s));
            let scalar = simulate(device, true, |s| replay_scalar(&ops, s));
            prop_assert_eq!(
                batched.stats_digest(),
                scalar.stats_digest(),
                "batched vs scalar emission diverged on {}",
                device
            );
            let reference = simulate(device, false, |s| replay_batched(&ops, s));
            prop_assert_eq!(
                batched.stats_digest(),
                reference.stats_digest(),
                "batched fast path diverged from reference machine on {}",
                device
            );
        }
    }

    /// Fixed-point reassociation lock-in (DESIGN.md §13): splitting any
    /// batch at an arbitrary element boundary — which reorders no
    /// reference but re-groups the executor's partial accounting sums
    /// and resets its batch-edge short-circuits (arming, same-page VPN
    /// tracking) at the cut — must leave the digest untouched. The u64
    /// subcycle counters make the accounting sums associative outright;
    /// with the old f64 accumulators the equality depended on every
    /// grouping preserving one canonical summation order.
    #[test]
    fn strided_digest_invariant_under_batch_boundary_reassociation(
        ops in proptest::collection::vec((0u8..7, 0u64..1 << 16, 0u64..1 << 24), 1..40),
        cuts in proptest::collection::vec(0u64..64, 8..9),
    ) {
        for &device in Device::all() {
            let whole = simulate(device, true, |s| replay_batched(&ops, s));
            let split = simulate(device, true, |s| replay_split(&ops, &cuts, s));
            prop_assert_eq!(
                whole.stats_digest(),
                split.stats_digest(),
                "batch-boundary reassociation changed the digest on {}",
                device
            );
        }
    }
}

/// Deterministic soak of the executor seams on every preset: armed-line
/// handoff into a batch, zero stride (pure repeat), sub-line strides,
/// negative page-hopping strides, and the transpose-style rmw column
/// walk with strides beyond a page.
#[test]
fn strided_seams_match_scalar_on_all_devices() {
    let program = |sink: &mut dyn TraceSink| {
        let base = 0x1000_0000_0000u64;
        // Arm a line, then start a batch on that very line: the first
        // elements must replay through the armed path.
        sink.store(base, 8);
        sink.access_strided(base, 8, 16, 8, false);
        // Zero stride: every element after the first replays.
        sink.access_strided(base + 640, 0, 12, 8, true);
        // Sub-line stride crossing lines every eighth element.
        sink.access_strided(base + 8192, 8, 96, 8, false);
        sink.barrier();
        // Column walks: forward and backward, stride far beyond a page.
        sink.access_strided_rmw(base + (1 << 20), 32768, 64, 8);
        sink.access_strided_rmw(base + (1 << 22), -32768, 64, 8);
        // Misaligned stride straddling lines *and* pages.
        sink.access_strided(base + (1 << 23) + 4090, 4097, 32, 16, true);
        sink.barrier();
    };
    let scalar_program = |sink: &mut dyn TraceSink| {
        let base = 0x1000_0000_0000u64;
        sink.store(base, 8);
        for i in 0..16 {
            sink.load(strided_addr(base, 8, i), 8);
        }
        for _ in 0..12 {
            sink.store(base + 640, 8);
        }
        for i in 0..96 {
            sink.load(strided_addr(base + 8192, 8, i), 8);
        }
        sink.barrier();
        for i in 0..64 {
            let a = strided_addr(base + (1 << 20), 32768, i);
            sink.load(a, 8);
            sink.store(a, 8);
        }
        for i in 0..64 {
            let a = strided_addr(base + (1 << 22), -32768, i);
            sink.load(a, 8);
            sink.store(a, 8);
        }
        for i in 0..32 {
            sink.store(strided_addr(base + (1 << 23) + 4090, 4097, i), 16);
        }
        sink.barrier();
    };
    for &device in Device::all() {
        let batched = simulate(device, true, |s| program(s));
        let scalar = simulate(device, true, |s| scalar_program(s));
        assert_eq!(
            batched.stats_digest(),
            scalar.stats_digest(),
            "seam soak diverged on {device}"
        );
    }
}

/// The STREAM calibration generator routes through `access_strided`;
/// its batched trace must simulate identically to the per-element
/// dispatch of the reference machine, forward and backward.
#[test]
fn strided_sweep_simulates_identically_via_batches() {
    for &device in Device::all() {
        for &stride in &[64i64, -64, 192, 8, -8, 32768] {
            let sweep = StridedSweep::new(0x3000_0000_0000, 512, 8, stride).writing();
            let fast = Machine::new(device.spec()).simulate(1, |_t, sink| sweep.trace_all(sink));
            let reference = Machine::new(device.spec())
                .without_fastpath()
                .simulate(1, |_t, sink| sweep.trace_all(sink));
            assert_eq!(
                fast.stats_digest(),
                reference.stats_digest(),
                "StridedSweep stride {stride} diverged on {device}"
            );
        }
    }
}
