//! Properties of the per-core-parallel replay path.
//!
//! Two contracts from the nested-parallelism design (DESIGN.md §9):
//!
//! 1. **Serial/parallel digest identity** — replaying the same traces
//!    with and without a [`JobBudget`] must produce byte-identical
//!    [`SimReport::stats_digest`] values on every device preset, for
//!    arbitrary trace content.
//! 2. **Ragged barrier counts** — cores may emit *different* numbers of
//!    barriers; `Machine::combine` pads the missing phases with empty
//!    accumulators, and that padding must agree between the serial loop
//!    and the fanned-out replay too.

use membound_sim::{Device, JobBudget, Machine, SimReport};
use membound_trace::TraceSink;
use proptest::prelude::*;

/// One scripted reference; op selects the flavour (load/store/range/
/// barrier), sized so barriers are frequent enough to exercise phase
/// alignment.
type Op = (u8, u64, u32);

fn replay(tid: u32, ops: &[Op], barriers_for_tid: u32, sink: &mut dyn TraceSink) {
    let base = 0x4000_0000_0000 + u64::from(tid) * (1 << 32);
    let mut barriers = 0;
    for &(op, raw_addr, raw_size) in ops {
        let addr = base + raw_addr % (4 * 4096);
        let size = 1 + raw_size % 64;
        match op {
            0..=2 => sink.load(addr, size),
            3..=4 => sink.store(addr, size),
            5 => sink.load_range(addr, u64::from(size) * 9),
            _ => {
                // Give each core a *different* barrier count: core `tid`
                // stops emitting barriers after `barriers_for_tid`.
                if barriers < barriers_for_tid {
                    sink.barrier();
                    barriers += 1;
                }
            }
        }
    }
}

fn run(device: Device, ops: &[Op], budget: Option<JobBudget>) -> SimReport {
    let spec = device.spec();
    let threads = spec.cores;
    let machine = match budget {
        Some(b) => Machine::new(spec).with_budget(b),
        None => Machine::new(spec),
    };
    // Core `tid` emits at most `tid` barriers: with 2+ cores the phase
    // lists are ragged by construction.
    machine.simulate(threads, |tid, sink| replay(tid, ops, tid, sink))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial and per-core-parallel replay agree, digest for digest, on
    /// every device preset — including ragged per-core barrier counts.
    #[test]
    fn parallel_replay_digest_matches_serial_on_all_devices(
        ops in proptest::collection::vec((0u8..8, 0u64..1 << 16, 0u32..1 << 16), 1..200),
    ) {
        for &device in Device::all() {
            let serial = run(device, &ops, None);
            let parallel = run(device, &ops, Some(JobBudget::new(device.spec().cores)));
            prop_assert_eq!(
                serial.stats_digest(),
                parallel.stats_digest(),
                "digest diverged on {}: serial {:#?} vs parallel {:#?}",
                device,
                serial,
                parallel
            );
            prop_assert_eq!(serial.threads, parallel.threads);
        }
    }

    /// `Machine::combine` pads ragged phase lists deterministically: the
    /// report has exactly `max(barriers) + 1` phases and re-running is
    /// bit-identical.
    #[test]
    fn ragged_barrier_counts_combine_deterministically(
        ops in proptest::collection::vec((0u8..8, 0u64..1 << 16, 0u32..1 << 16), 1..200),
    ) {
        let device = Device::IntelXeon4310T; // 10 cores: most raggedness
        let spec = device.spec();
        let barrier_ops = ops.iter().filter(|(op, _, _)| *op >= 6).count() as u32;
        let a = run(device, &ops, None);
        let b = run(device, &ops, None);
        prop_assert_eq!(a.stats_digest(), b.stats_digest());
        // The slowest-to-stop core is `cores - 1`, capped by how many
        // barrier ops the script contains at all.
        let max_barriers = barrier_ops.min(spec.cores - 1);
        prop_assert_eq!(a.phases.len() as u32, max_barriers + 1);
        for phase in &a.phases {
            prop_assert!(phase.cycles >= 0.0);
            prop_assert!(phase.cycles.is_finite());
        }
    }

    /// The 64-core SG2044 preset (channel-contended DRAM, so the
    /// analytic fast path is off and every line probe replays) keeps
    /// digests invariant across host worker budgets of 1, 8 and 64 —
    /// the widest fan-out the matrix ever requests.
    #[test]
    fn sg2044_digest_is_jobs_invariant(
        ops in proptest::collection::vec((0u8..8, 0u64..1 << 16, 0u32..1 << 16), 1..100),
    ) {
        let device = Device::SophonSG2044;
        let serial = run(device, &ops, None);
        for jobs in [1u32, 8, 64] {
            let fanned = run(device, &ops, Some(JobBudget::new(jobs)));
            prop_assert_eq!(
                serial.stats_digest(),
                fanned.stats_digest(),
                "digest diverged on {} with --jobs {}",
                device,
                jobs
            );
        }
    }
}

/// A tight deterministic check that an *undersized* budget (fewer spare
/// workers than simulated cores) still yields identical digests — the
/// pool just runs with fewer workers.
#[test]
fn undersized_budget_keeps_digests_identical() {
    let spec = Device::IntelXeon4310T.spec();
    let trace = |tid: u32, sink: &mut dyn TraceSink| {
        let base = 0x2000_0000_0000 + u64::from(tid) * (1 << 30);
        for i in 0..3000u64 {
            sink.load(base + i * 72, 8);
            if i % 1000 == 999 {
                sink.barrier();
            }
        }
    };
    let serial = Machine::new(spec.clone()).simulate(10, |t, s| trace(t, s));
    for budget_size in [1u32, 2, 3, 10, 64] {
        let fanned = Machine::new(spec.clone())
            .with_budget(JobBudget::new(budget_size))
            .simulate(10, |t, s| trace(t, s));
        assert_eq!(
            serial.stats_digest(),
            fanned.stats_digest(),
            "budget {budget_size}"
        );
        assert!(fanned.host_workers >= 1 && fanned.host_workers <= 10);
    }
}
