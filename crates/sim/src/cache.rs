//! Set-associative cache model: write-back, write-allocate.

use crate::assoc::{AssocArray, InsertOutcome, Reserved, FLAG_DIRTY, FLAG_PREFETCHED, FLAG_VALID};
use crate::replacement::ReplacementPolicy;
use crate::stats::LevelStats;
use serde::{Deserialize, Serialize};

/// Geometry and policy of one cache level.
///
/// # Example
///
/// ```
/// use membound_sim::{CacheConfig, ReplacementPolicy};
///
/// // The XuanTie C906 L1 D-cache from §3.1 of the paper:
/// let l1 = CacheConfig::new("L1D", 32 * 1024, 4, 64)
///     .policy(ReplacementPolicy::Lru)
///     .latency(4)
///     .bytes_per_cycle(4.0);
/// assert_eq!(l1.sets(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Display name ("L1D", "L2", ...).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u16,
    /// Line size in bytes (a power of two).
    pub line_bytes: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Load-to-use latency of a hit, in core cycles.
    pub latency_cycles: u32,
    /// Sustained fill bandwidth this level can *supply* to the level above,
    /// in bytes per core cycle.
    pub bytes_per_cycle: f64,
    /// Whether this level is shared between cores. Shared levels are
    /// capacity-partitioned between active cores during parallel simulation
    /// (see `Machine`), and their supply bandwidth is shared.
    pub shared: bool,
}

impl CacheConfig {
    /// A cache level with the given name, capacity, associativity and line
    /// size; LRU, 4-cycle latency, 8 B/cycle, private by default.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, non-power-of-two
    /// line size, capacity not divisible by `ways * line_bytes`).
    #[must_use]
    pub fn new(name: &str, size_bytes: u64, ways: u16, line_bytes: u32) -> Self {
        assert!(size_bytes > 0, "cache size must be nonzero");
        assert!(ways > 0, "cache must have at least one way");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(
            size_bytes % (u64::from(ways) * u64::from(line_bytes)),
            0,
            "capacity must divide evenly into ways x lines"
        );
        let cfg = Self {
            name: name.to_owned(),
            size_bytes,
            ways,
            line_bytes,
            replacement: ReplacementPolicy::Lru,
            latency_cycles: 4,
            bytes_per_cycle: 8.0,
            shared: false,
        };
        assert!(cfg.sets() > 0, "cache must have at least one set");
        cfg
    }

    /// Set the replacement policy.
    #[must_use]
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Set the hit latency in cycles.
    #[must_use]
    pub fn latency(mut self, cycles: u32) -> Self {
        self.latency_cycles = cycles;
        self
    }

    /// Set the supply bandwidth in bytes per core cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bpc` is not finite and positive.
    #[must_use]
    pub fn bytes_per_cycle(mut self, bpc: f64) -> Self {
        assert!(bpc.is_finite() && bpc > 0.0, "bandwidth must be positive");
        self.bytes_per_cycle = bpc;
        self
    }

    /// Mark the level as shared between cores.
    #[must_use]
    pub fn shared(mut self) -> Self {
        self.shared = true;
        self
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * u64::from(self.line_bytes))
    }

    /// A copy of this config with capacity divided by `n` (used to
    /// partition shared levels between active cores). Associativity is
    /// kept; capacity never drops below one set row (`ways ×
    /// line_bytes`).
    ///
    /// Two edges of the arithmetic are deliberate and digest-stable:
    ///
    /// * When `n` exceeds the set count, the per-core share is clamped
    ///   *up* to one full set row, so the partitions jointly model more
    ///   capacity than the physical level. That over-approximation is
    ///   preferred to a degenerate zero-set cache; a one-time warning is
    ///   emitted on stderr so surveys over many-core what-if devices
    ///   don't silently rely on it.
    /// * The quotient set count need not stay a power of two (e.g. 128
    ///   sets split 3 ways gives 42). [`crate::Cache`] handles this: its
    ///   set indexing uses the fast mask only for power-of-two set
    ///   counts and falls back to modulo otherwise, at a small host-time
    ///   (never simulated-result) cost.
    #[must_use]
    pub fn partitioned(&self, n: u64) -> Self {
        let mut cfg = self.clone();
        if n <= 1 {
            return cfg;
        }
        let min_size = u64::from(cfg.ways) * u64::from(cfg.line_bytes);
        if cfg.size_bytes / n < min_size {
            static CLAMPED: std::sync::Once = std::sync::Once::new();
            CLAMPED.call_once(|| {
                eprintln!(
                    "warning: partitioning cache {:?} ({} B, {} ways) across {} cores \
                     clamps each share up to one {} B set row; the partitions jointly \
                     model more capacity than the level has",
                    cfg.name, cfg.size_bytes, cfg.ways, n, min_size
                );
            });
        }
        let target = (cfg.size_bytes / n).max(min_size);
        let rows = (target / min_size).max(1);
        cfg.size_bytes = rows * min_size;
        cfg
    }
}

/// What happened on a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccessResult {
    /// The access hit (data present before the access).
    pub hit: bool,
    /// The hit was served by a line the prefetcher brought in (first demand
    /// touch after a prefetch fill).
    pub prefetch_hit: bool,
    /// A dirty line had to be written back; contains its line address.
    pub writeback: Option<u64>,
}

/// A set-associative cache with write-back + write-allocate semantics.
///
/// The cache stores *line addresses* (byte address >> line shift); callers
/// split byte accesses into lines (see `membound_trace::MemAccess::lines`).
///
/// # Example
///
/// ```
/// use membound_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new("L1D", 1024, 2, 64));
/// assert!(!c.access(0, false).hit); // cold miss
/// c.fill(0, false, false);          // fetch from the level below
/// assert!(c.access(0, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    array: AssocArray,
    stats: LevelStats,
    line_shift: u32,
}

impl Cache {
    /// Build a cache from its configuration.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let array = AssocArray::new(
            config.sets() as usize,
            config.ways as usize,
            config.replacement,
            0x243f_6a88_85a3_08d3,
        );
        Self {
            array,
            stats: LevelStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            config,
        }
    }

    /// The configuration this cache was built from.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Reset counters (state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    /// Mutable counter access (the analytic executor's exact scaled
    /// advance writes counters back after fast-forwarding).
    pub(crate) fn stats_mut(&mut self) -> &mut LevelStats {
        &mut self.stats
    }

    /// Compare the *state* (not counters) against `base` under the
    /// line-address isomorphism `map`. See `AssocArray::ff_shift_eq`.
    pub(crate) fn ff_shift_eq<F: Fn(u64) -> u64>(&self, base: &Cache, map: F) -> bool {
        self.config == base.config && self.array.ff_shift_eq(&base.array, map)
    }

    /// Apply the line-address isomorphism `map` to every resident line.
    pub(crate) fn ff_shift_lines<F: Fn(u64) -> u64>(&mut self, map: F) {
        self.array.ff_shift_tags(map);
    }

    /// Does `ok` hold for every resident line address?
    pub(crate) fn ff_all_lines<F: FnMut(u64) -> bool>(&self, ok: F) -> bool {
        self.array.ff_all_tags(ok)
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        self.config.line_bytes
    }

    /// Convert a byte address to this cache's line address.
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Whether `line_addr` is currently resident (no state change).
    #[must_use]
    #[inline]
    pub fn contains(&self, line_addr: u64) -> bool {
        self.array.peek(line_addr).is_some()
    }

    /// Demand access to `line_addr`. On a miss the line is *not* filled —
    /// call [`Cache::fill`] after fetching from below, mirroring the
    /// request/response flow of a real hierarchy.
    ///
    /// `is_write` marks the resident line dirty on a hit.
    #[inline]
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> CacheAccessResult {
        if let Some((_, prefetch_hit)) = self.array.access_demand(line_addr, is_write) {
            if prefetch_hit {
                self.stats.prefetch_hits += 1;
            }
            self.stats.hits += 1;
            CacheAccessResult {
                hit: true,
                prefetch_hit,
                writeback: None,
            }
        } else {
            self.stats.misses += 1;
            CacheAccessResult {
                hit: false,
                prefetch_hit: false,
                writeback: None,
            }
        }
    }

    /// [`Cache::access`] fused with victim preselection: on a miss, also
    /// return the slot the follow-up [`Cache::fill_reserved`] of this line
    /// will use, so the miss scan is not repeated. The slot is only valid
    /// while nothing else touches *this* cache level (other levels and
    /// DRAM accounting are fine).
    ///
    /// On a hit the third value reports where the line sits and whether
    /// it is dirty after this access — exactly what a follow-up
    /// [`Cache::probe_for_repeat`] of the line would return (the demand
    /// touch consumed any prefetched flag), so repeat fast paths can arm
    /// without rescanning.
    #[inline]
    pub(crate) fn access_reserving(
        &mut self,
        line_addr: u64,
        is_write: bool,
    ) -> (
        CacheAccessResult,
        Option<Reserved>,
        Option<(usize, u32, bool)>,
    ) {
        let (hit, reserved) = self.array.access_demand_reserving(line_addr, is_write);
        if let Some((way, prefetch_hit, dirty)) = hit {
            if prefetch_hit {
                self.stats.prefetch_hits += 1;
            }
            self.stats.hits += 1;
            let set = self.array.set_of(line_addr);
            return (
                CacheAccessResult {
                    hit: true,
                    prefetch_hit,
                    writeback: None,
                },
                None,
                Some((set, way, dirty)),
            );
        }
        self.stats.misses += 1;
        (
            CacheAccessResult {
                hit: false,
                prefetch_hit: false,
                writeback: None,
            },
            reserved,
            None,
        )
    }

    /// Install `line_addr` (after fetching it from the level below),
    /// evicting a victim if the set is full. Returns the line address of a
    /// dirty victim that must be written back, if any.
    ///
    /// `is_write` marks the new line dirty (write-allocate store miss);
    /// `prefetched` tags it as a prefetch fill for accuracy accounting.
    #[inline]
    pub fn fill(&mut self, line_addr: u64, is_write: bool, prefetched: bool) -> Option<u64> {
        let outcome = self
            .array
            .insert(line_addr, Self::fill_flags(is_write, prefetched));
        self.account_fill(outcome, prefetched)
    }

    /// [`Cache::fill`] through a slot remembered by
    /// [`Cache::access_reserving`] (same line, nothing touched this level
    /// in between), skipping the redundant placement scan. Falls back to a
    /// plain fill when the miss could not reserve a slot.
    ///
    /// Returns the dirty victim (if any) and the way the line was
    /// installed at — `(set_of_line(..), way)` is the slot a follow-up
    /// [`Cache::probe_for_repeat`] would locate, letting callers arm
    /// repeat fast paths without rescanning.
    #[inline]
    pub(crate) fn fill_reserved(
        &mut self,
        line_addr: u64,
        is_write: bool,
        reserved: Option<Reserved>,
    ) -> (Option<u64>, u32) {
        let flags = Self::fill_flags(is_write, false);
        let outcome = match reserved {
            Some(r) => self.array.install_reserved(line_addr, flags, r),
            None => self.array.insert(line_addr, flags),
        };
        let way = match outcome {
            InsertOutcome::AlreadyPresent(w)
            | InsertOutcome::Installed(w)
            | InsertOutcome::Evicted { way: w, .. } => w,
        };
        (self.account_fill(outcome, false), way)
    }

    /// Set index of a line address (for pairing with the way returned by
    /// [`Cache::fill_reserved`]).
    #[inline]
    pub(crate) fn set_of_line(&self, line_addr: u64) -> usize {
        self.array.set_of(line_addr)
    }

    #[inline]
    fn fill_flags(is_write: bool, prefetched: bool) -> u8 {
        let mut flags = 0u8;
        if is_write {
            flags |= FLAG_DIRTY;
        }
        if prefetched {
            flags |= FLAG_PREFETCHED;
        }
        flags
    }

    #[inline]
    fn account_fill(&mut self, outcome: InsertOutcome, prefetched: bool) -> Option<u64> {
        match outcome {
            InsertOutcome::AlreadyPresent(_) => None,
            outcome => {
                if prefetched {
                    self.stats.prefetches_issued += 1;
                }
                self.stats.fill_bytes += u64::from(self.config.line_bytes);
                match outcome {
                    InsertOutcome::Evicted {
                        old_tag, old_flags, ..
                    } => {
                        self.stats.evictions += 1;
                        if old_flags & FLAG_DIRTY != 0 {
                            self.stats.writebacks += 1;
                            self.stats.writeback_bytes += u64::from(self.config.line_bytes);
                            Some(old_tag)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
        }
    }

    /// Locate `line_addr` for the pipeline's repeat-line fast path without
    /// changing any state: `Some((set, way, dirty))` when the line is
    /// resident *and* a repeat demand touch of it would be a plain hit —
    /// i.e. its prefetched flag has already been consumed, so
    /// [`Cache::repeat_hit`] reproduces [`Cache::access`] exactly. The
    /// last-hit hint usually resolves this in one comparison (a demand hit
    /// or demand fill of the line leaves the hint on its way).
    #[inline]
    pub(crate) fn probe_for_repeat(&self, line_addr: u64) -> Option<(usize, u32, bool)> {
        let set = self.array.set_of(line_addr);
        let hinted = self.array.hint_of(set);
        let way = if self.array.flags_of(set, hinted) & FLAG_VALID != 0
            && self.array.tag_of(set, hinted) == line_addr
        {
            hinted
        } else {
            self.array.peek(line_addr)?
        };
        let flags = self.array.flags_of(set, way);
        if flags & FLAG_PREFETCHED != 0 {
            // A repeat touch would consume the flag and count a prefetch
            // hit — not a bare hit, so the fast path must not arm on it.
            return None;
        }
        Some((set, way, flags & FLAG_DIRTY != 0))
    }

    /// Whether `(set, way)` currently holds exactly `line_addr` as a
    /// plain resident line — valid and not awaiting its first
    /// post-prefetch demand touch — so a demand read of it is a bare hit
    /// that [`Cache::repeat_hit`] reproduces exactly.
    #[inline]
    pub(crate) fn holds_plain(&self, set: usize, way: u32, line_addr: u64) -> bool {
        self.array.flags_of(set, way) & (FLAG_VALID | FLAG_PREFETCHED) == FLAG_VALID
            && self.array.tag_of(set, way) == line_addr
    }

    /// Account a repeat demand hit of a line located via
    /// [`Cache::probe_for_repeat`]. Bit-identical to [`Cache::access`] of
    /// a resident line with its prefetched flag clear: the hit counter
    /// moves and the way's recency (and last-hit hint) are re-touched —
    /// only the tag scan is skipped. The write half (dirty flag) is
    /// [`Cache::mark_dirty`].
    #[inline]
    pub(crate) fn repeat_hit(&mut self, set: usize, way: u32) {
        self.stats.hits += 1;
        self.array.retouch(set, way);
    }

    /// Mark `(set, way)` dirty — the store half of a repeat hit.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, set: usize, way: u32) {
        self.array.set_flags(set, way, FLAG_DIRTY);
    }

    /// Number of valid lines currently resident (test/diagnostic helper).
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.array.valid_entries()
    }

    /// Invalidate everything (state and dirty bits are dropped; counters
    /// are kept).
    pub fn flush(&mut self) {
        self.array.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        Cache::new(CacheConfig::new("t", 256, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(7, false).hit);
        assert_eq!(c.fill(7, false, false), None);
        let r = c.access(7, false);
        assert!(r.hit);
        assert!(!r.prefetch_hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_within_a_set() {
        let mut c = tiny(); // lines mapping to set 0: even line addresses
        c.fill(0, false, false);
        c.fill(2, false, false);
        assert_eq!(c.resident_lines(), 2);
        // Third even line forces an eviction in set 0.
        assert_eq!(c.fill(4, false, false), None); // clean victim
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.stats().evictions, 1);
        // LRU: line 0 was oldest and must be gone.
        assert!(!c.contains(0));
        assert!(c.contains(2));
        assert!(c.contains(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, true, false); // dirty fill
        c.fill(2, false, false);
        let wb = c.fill(4, false, false);
        assert_eq!(wb, Some(0), "dirty line 0 must be written back");
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().writeback_bytes, 64);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.access(0, true); // dirty it via store hit
        c.fill(2, false, false);
        let wb = c.fill(4, false, false);
        assert_eq!(wb, Some(0));
    }

    #[test]
    fn prefetch_hit_detected_once() {
        let mut c = tiny();
        c.fill(0, false, true); // prefetch fill
        let r1 = c.access(0, false);
        assert!(r1.hit && r1.prefetch_hit);
        let r2 = c.access(0, false);
        assert!(r2.hit && !r2.prefetch_hit, "flag clears after first touch");
        assert_eq!(c.stats().prefetches_issued, 1);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn fill_of_resident_line_does_not_duplicate() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(0, true, false);
        assert_eq!(c.resident_lines(), 1);
        // And the duplicate fill dirtied it.
        c.fill(2, false, false);
        assert_eq!(c.fill(4, false, false), Some(0));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for l in 0..100 {
            c.fill(l, false, false);
        }
        assert!(c.resident_lines() <= 4);
    }

    #[test]
    fn lru_within_set_respects_touch_order() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(2, false, false);
        c.access(0, false); // 0 is now MRU; 2 is the LRU victim
        c.fill(4, false, false);
        assert!(c.contains(0));
        assert!(!c.contains(2));
    }

    #[test]
    fn flush_clears_state_but_not_counters() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.access(0, false);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().hits, 1);
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn sets_geometry() {
        let cfg = CacheConfig::new("L1", 32 * 1024, 4, 64);
        assert_eq!(cfg.sets(), 128);
        let c = Cache::new(cfg);
        assert_eq!(c.line_of(0x1000), 0x40);
    }

    #[test]
    fn partitioned_halves_capacity_and_keeps_geometry_valid() {
        let cfg = CacheConfig::new("L2", 1024 * 1024, 16, 64).shared();
        let half = cfg.partitioned(2);
        assert_eq!(half.size_bytes, 512 * 1024);
        assert_eq!(half.ways, 16);
        assert!(half.sets() > 0);
        // Partitioning by more cores than way-rows clamps to one set row.
        let tiny = CacheConfig::new("x", 2048, 2, 64).partitioned(1000);
        assert_eq!(tiny.size_bytes, 128);
    }

    #[test]
    fn partitioned_by_one_is_identity() {
        let cfg = CacheConfig::new("L2", 128 * 1024, 8, 64);
        assert_eq!(cfg.partitioned(1), cfg);
    }

    #[test]
    fn partitioned_beyond_set_count_clamps_to_one_row_per_core() {
        // 2048 B / (2 ways × 64 B) = 16 sets; asking for 64 partitions
        // would leave a fraction of a row, so each core gets the one-row
        // floor — jointly over-modelling capacity, per the documented
        // approximation (and warned about once on stderr).
        let cfg = CacheConfig::new("L2", 2048, 2, 64).shared();
        let share = cfg.partitioned(64);
        assert_eq!(share.size_bytes, 128, "one 2-way × 64 B set row");
        assert_eq!(share.sets(), 1);
        assert_eq!(share.ways, cfg.ways, "associativity preserved");
        // The clamp floor is also reproducible: same input, same share.
        assert_eq!(share, cfg.partitioned(64));
    }

    #[test]
    fn partitioned_may_produce_non_power_of_two_sets() {
        // 64 KiB / (8 ways × 64 B) = 128 sets; a 5-way split yields 25
        // sets. The cache must stay fully functional on the modulo
        // set-index fallback (the fast mask needs a power of two).
        let cfg = CacheConfig::new("L2", 64 * 1024, 8, 64).shared();
        let share = cfg.partitioned(5);
        assert_eq!(share.sets(), 25);
        assert!(!share.sets().is_power_of_two());
        let mut c = Cache::new(share);
        // Lines that collide under mod-25 indexing still behave like a
        // set-associative cache: fill, re-hit, and evict coherently.
        for line in 0..400u64 {
            if !c.access(line, false).hit {
                c.fill(line, false, false);
            }
        }
        for line in 0..400u64 {
            let _ = c.access(line, false);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 800);
        assert!(s.hits > 0 && s.misses > 0, "{s:?}");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new("bad", 1000, 3, 64);
    }

    #[test]
    fn random_policy_cache_stays_within_capacity() {
        let mut c =
            Cache::new(CacheConfig::new("r", 4096, 4, 64).policy(ReplacementPolicy::Random));
        for l in 0..10_000u64 {
            c.access(l % 97, true);
            c.fill(l % 97, true, false);
        }
        assert!(c.resident_lines() <= 64);
    }

    #[test]
    fn repeated_hits_use_the_hint_path_consistently() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.fill(2, false, false);
        for _ in 0..100 {
            assert!(c.access(0, false).hit);
            assert!(c.access(0, false).hit);
            assert!(c.access(2, false).hit);
        }
        assert_eq!(c.stats().hits, 300);
        assert_eq!(c.stats().misses, 0);
    }
}
