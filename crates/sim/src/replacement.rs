//! Replacement policies for set-associative structures.
//!
//! The paper's devices use two policies: LRU-like (C906 L1, A72, Ice Lake)
//! and *random* replacement (the U74's L1 and L2 — §3.1 calls it "RRP").
//! FIFO and tree-PLRU are included for the ablation benches. The policy
//! state machines themselves live in the shared set-associative engine
//! (`crate::assoc`).

use serde::{Deserialize, Serialize};

/// Which replacement policy a set-associative structure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict the way filled longest ago, ignoring touches.
    Fifo,
    /// Evict a pseudo-random way (deterministic xorshift per structure).
    Random,
    /// Tree pseudo-LRU over a power-of-two number of ways.
    TreePlru,
}

impl ReplacementPolicy {
    /// Human-readable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::TreePlru => "tree-PLRU",
        }
    }

    /// All four policies (ablation sweeps).
    #[must_use]
    pub fn all() -> [ReplacementPolicy; 4] {
        [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
            ReplacementPolicy::TreePlru,
        ]
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Random.to_string(), "random");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::TreePlru.to_string(), "tree-PLRU");
    }

    #[test]
    fn all_lists_each_policy_once() {
        let all = ReplacementPolicy::all();
        for p in all {
            assert_eq!(all.iter().filter(|&&q| q == p).count(), 1);
        }
    }
}
