//! TLB models and the Sv39-style page-walk cost.
//!
//! The paper's §3.1 lists, per device, an L1 TLB (the C906 calls it a
//! "uTLB", fully associative) and an L2 TLB ("jTLB" on the C906, 2-way;
//! direct-mapped 512-entry on the U74). We model both levels as
//! set-associative structures over virtual page numbers, plus a
//! three-level Sv39 page walk whose PTE loads the hierarchy replays
//! through the data caches.

use crate::assoc::{AssocArray, InsertOutcome, Reserved};
use crate::replacement::ReplacementPolicy;
use crate::stats::LevelStats;
use serde::{Deserialize, Serialize};

/// Geometry of one TLB level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Display name ("DTLB", "jTLB", ...).
    pub name: String,
    /// Number of entries.
    pub entries: u32,
    /// Ways per set; use `entries` for fully associative, `1` for
    /// direct-mapped.
    pub ways: u16,
    /// Page size in bytes (4 KiB for Sv39 base pages).
    pub page_bytes: u64,
    /// Extra cycles charged when the lookup has to come from this level
    /// (0 for a first-level TLB hit).
    pub latency_cycles: u32,
    /// Replacement policy between entries of a set.
    pub replacement: ReplacementPolicy,
}

impl TlbConfig {
    /// Fully associative TLB with `entries` entries over 4 KiB pages, LRU.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or exceeds `u16::MAX` (fully associative
    /// sets are capped by the way-index width).
    #[must_use]
    pub fn fully_associative(name: &str, entries: u32) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            entries <= u64::from(u16::MAX) as u32,
            "fully associative TLB too large"
        );
        Self {
            name: name.to_owned(),
            entries,
            ways: entries as u16,
            page_bytes: 4096,
            latency_cycles: 0,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Set-associative TLB with `entries` entries in sets of `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or does not divide `entries`.
    #[must_use]
    pub fn set_associative(name: &str, entries: u32, ways: u16) -> Self {
        assert!(ways > 0, "TLB needs at least one way");
        assert_eq!(
            entries % u32::from(ways),
            0,
            "entries must divide into sets"
        );
        Self {
            ways,
            ..Self::fully_associative_unchecked(name, entries)
        }
    }

    fn fully_associative_unchecked(name: &str, entries: u32) -> Self {
        Self {
            name: name.to_owned(),
            entries,
            ways: 1,
            page_bytes: 4096,
            latency_cycles: 0,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Direct-mapped TLB (one way per set).
    #[must_use]
    pub fn direct_mapped(name: &str, entries: u32) -> Self {
        Self::set_associative(name, entries, 1)
    }

    /// Override the lookup latency.
    #[must_use]
    pub fn latency(mut self, cycles: u32) -> Self {
        self.latency_cycles = cycles;
        self
    }

    /// Override the page size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two.
    #[must_use]
    pub fn page_size(mut self, bytes: u64) -> Self {
        assert!(bytes.is_power_of_two(), "page size must be a power of two");
        self.page_bytes = bytes;
        self
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.entries / u32::from(self.ways)
    }

    /// Address reach in bytes (entries × page size).
    #[must_use]
    pub fn reach_bytes(&self) -> u64 {
        u64::from(self.entries) * self.page_bytes
    }
}

/// One TLB level.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    array: AssocArray,
    stats: LevelStats,
    page_shift: u32,
}

impl Tlb {
    /// Build a TLB from its configuration.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        let array = AssocArray::new(
            config.sets() as usize,
            usize::from(config.ways),
            config.replacement,
            0x1319_8a2e_0370_7344,
        );
        Self {
            array,
            stats: LevelStats::default(),
            page_shift: config.page_bytes.trailing_zeros(),
            config,
        }
    }

    /// The configuration this TLB was built from.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Mutable counter access (the analytic executor's exact scaled
    /// advance writes counters back after fast-forwarding).
    pub(crate) fn stats_mut(&mut self) -> &mut LevelStats {
        &mut self.stats
    }

    /// Compare the *state* (not counters) against `base` under the
    /// identity map: exact entries, exact hints/flags, recency stamps by
    /// per-set order (the clock differs between any two points in time).
    /// The analytic executor only fast-forwards address-shifting loops
    /// with the TLB disabled, so a TLB state is never shifted — this
    /// identity form covers the zero-delta (pure re-reference) loops.
    pub(crate) fn ff_eq(&self, base: &Tlb) -> bool {
        self.config == base.config && self.array.ff_shift_eq(&base.array, |vpn| vpn)
    }

    /// Virtual page number of a byte address.
    #[must_use]
    #[inline]
    pub fn vpn_of(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Look up a virtual page number; returns `true` on a hit. Misses do
    /// not insert — call [`Tlb::fill`].
    pub fn lookup(&mut self, vpn: u64) -> bool {
        if self.array.lookup(vpn).is_some() {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Account a repeat hit of the most recently translated page without
    /// re-scanning the array. Equivalent to [`Tlb::lookup`] of a resident
    /// MRU entry: the hit counter moves and the recency re-touch is a
    /// no-op (the entry is already the most recent).
    #[inline]
    pub(crate) fn note_repeat_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Insert a translation for `vpn`, evicting per policy if needed.
    pub fn fill(&mut self, vpn: u64) {
        if let InsertOutcome::Evicted { .. } = self.array.insert(vpn, 0) {
            self.stats.evictions += 1;
        }
    }

    /// [`Tlb::lookup`] fused with fill-slot preselection: a miss also
    /// reports where the post-walk [`Tlb::fill_reserved`] of this `vpn`
    /// will install, so the set is scanned once instead of twice. The
    /// slot stays valid across the walk because page walks touch the data
    /// caches, never this TLB.
    #[inline]
    pub(crate) fn lookup_reserving(&mut self, vpn: u64) -> (bool, Option<Reserved>) {
        let (hit, reserved) = self.array.access_demand_reserving(vpn, false);
        if hit.is_some() {
            self.stats.hits += 1;
            (true, None)
        } else {
            self.stats.misses += 1;
            (false, reserved)
        }
    }

    /// [`Tlb::fill`] through a slot remembered by
    /// [`Tlb::lookup_reserving`] for the same `vpn`.
    #[inline]
    pub(crate) fn fill_reserved(&mut self, vpn: u64, reserved: Option<Reserved>) {
        let outcome = match reserved {
            Some(r) => self.array.install_reserved(vpn, 0, r),
            None => self.array.insert(vpn, 0),
        };
        if let InsertOutcome::Evicted { .. } = outcome {
            self.stats.evictions += 1;
        }
    }

    /// Number of valid entries (diagnostic).
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.array.valid_entries()
    }
}

/// The Sv39 page-walk model: radix depth and the synthetic page-table
/// addresses whose loads are replayed through the data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageWalk {
    /// Number of radix levels walked on a last-level TLB miss (Sv39: 3).
    pub levels: u32,
    /// Fixed control overhead per walk, in cycles, on top of the PTE loads.
    pub overhead_cycles: u32,
}

impl PageWalk {
    /// The Sv39 walk used by both RISC-V devices in the paper.
    #[must_use]
    pub fn sv39() -> Self {
        Self {
            levels: 3,
            overhead_cycles: 8,
        }
    }

    /// A two-level walk (32-bit style, used in ablations).
    #[must_use]
    pub fn two_level() -> Self {
        Self {
            levels: 2,
            overhead_cycles: 6,
        }
    }

    /// Synthetic PTE byte addresses for walking `vpn`, placed in a
    /// dedicated high address region so they never alias user data.
    ///
    /// Consecutive pages share upper-level PTEs (consecutive VPNs map to
    /// the same level-1/level-2 PTE lines), so walk locality is realistic:
    /// a sequential sweep's walks mostly hit in the data caches.
    #[must_use]
    pub fn pte_addresses(&self, vpn: u64) -> Vec<u64> {
        (0..self.levels).map(|i| self.pte_address(vpn, i)).collect()
    }

    /// The `i`-th PTE byte address of a walk of `vpn` (`i == 0` is the
    /// root level, `i == levels - 1` the leaf). Walks are hot — a thrashed
    /// TLB walks on nearly every reference — so the simulation loop
    /// iterates this directly instead of materializing
    /// [`PageWalk::pte_addresses`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via arithmetic underflow) if
    /// `i >= self.levels`.
    #[must_use]
    pub fn pte_address(&self, vpn: u64, i: u32) -> u64 {
        const PT_BASE: u64 = 0x7f00_0000_0000;
        // Level k index: bits of the VPN, 9 bits per level (512-entry
        // nodes), highest level first. Each PTE is 8 bytes.
        let k = self.levels - 1 - i;
        let idx = (vpn >> (9 * k)) & 0x1ff;
        let node = vpn >> (9 * (k + 1)); // which table node at this level
        let node_hash = node.wrapping_mul(0x9e37_79b9).wrapping_add(u64::from(k));
        PT_BASE + (node_hash % (1 << 20)) * 4096 + idx * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_associative_hits_anywhere() {
        let mut t = Tlb::new(TlbConfig::fully_associative("uTLB", 4));
        for vpn in [1u64, 100, 7_000, 12] {
            assert!(!t.lookup(vpn));
            t.fill(vpn);
        }
        for vpn in [1u64, 100, 7_000, 12] {
            assert!(t.lookup(vpn));
        }
        assert_eq!(t.resident_entries(), 4);
    }

    #[test]
    fn lru_eviction_in_fully_associative() {
        let mut t = Tlb::new(TlbConfig::fully_associative("uTLB", 2));
        t.fill(1);
        t.fill(2);
        assert!(t.lookup(1)); // 2 becomes LRU
        t.fill(3);
        assert!(t.lookup(1));
        assert!(!t.lookup(2), "LRU entry must have been evicted");
    }

    #[test]
    fn direct_mapped_conflicts_on_same_set() {
        let mut t = Tlb::new(TlbConfig::direct_mapped("L2TLB", 16));
        t.fill(0);
        t.fill(16); // same set (0 % 16 == 16 % 16)
        assert!(!t.lookup(0), "direct-mapped conflict must evict");
        assert!(t.lookup(16));
    }

    #[test]
    fn set_associative_geometry() {
        let cfg = TlbConfig::set_associative("jTLB", 128, 2);
        assert_eq!(cfg.sets(), 64);
        assert_eq!(cfg.reach_bytes(), 128 * 4096);
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut t = Tlb::new(TlbConfig::fully_associative("t", 4));
        t.fill(9);
        t.fill(9);
        assert_eq!(t.resident_entries(), 1);
    }

    #[test]
    fn vpn_uses_page_shift() {
        let t = Tlb::new(TlbConfig::fully_associative("t", 4));
        assert_eq!(t.vpn_of(4096 * 3 + 17), 3);
        let big = Tlb::new(TlbConfig::fully_associative("t", 4).page_size(2 * 1024 * 1024));
        assert_eq!(big.vpn_of(2 * 1024 * 1024), 1);
    }

    #[test]
    fn reach_matches_paper_geometries() {
        // C906: 10 D-uTLB entries over 4K pages => 40 KiB reach.
        let utlb = TlbConfig::fully_associative("D-uTLB", 10);
        assert_eq!(utlb.reach_bytes(), 40 * 1024);
        // U74 L2 TLB: 512 direct-mapped entries => 2 MiB reach.
        let l2 = TlbConfig::direct_mapped("L2TLB", 512);
        assert_eq!(l2.reach_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn sv39_walk_has_three_levels_and_stable_addresses() {
        let w = PageWalk::sv39();
        let a = w.pte_addresses(12345);
        let b = w.pte_addresses(12345);
        assert_eq!(a.len(), 3);
        assert_eq!(a, b);
        // All in the reserved page-table region.
        assert!(a.iter().all(|&x| x >= 0x7f00_0000_0000));
    }

    #[test]
    fn adjacent_pages_share_upper_level_ptes() {
        let w = PageWalk::sv39();
        let a = w.pte_addresses(1000);
        let b = w.pte_addresses(1001);
        // Top two levels identical, leaf level adjacent (8 bytes apart).
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        assert_eq!(b[2], a[2] + 8);
    }

    #[test]
    fn leaf_ptes_wrap_within_node() {
        let w = PageWalk::sv39();
        // VPN 511 and 512 differ in the level-1 index; leaf nodes differ.
        let a = w.pte_addresses(511);
        let b = w.pte_addresses(512);
        assert_ne!(a[2], b[2]);
        assert_ne!(a[1], b[1]);
    }

    #[test]
    #[should_panic(expected = "divide into sets")]
    fn bad_set_geometry_rejected() {
        let _ = TlbConfig::set_associative("bad", 100, 3);
    }
}
