//! The flat set-associative storage engine shared by [`crate::Cache`] and
//! [`crate::Tlb`].
//!
//! Tags, per-line flags and replacement-policy state live in flat arrays
//! (one row of `ways` entries per set), and each set keeps a *last-hit
//! way* hint so the repeat-heavy reference streams the kernels generate
//! (64 line probes per page, sliding filter windows) resolve in one
//! comparison instead of a full way scan. Semantics are identical to a
//! naïve per-set implementation; the unit and property tests of `cache`
//! and `tlb` pin that down.

use crate::replacement::ReplacementPolicy;

/// Tag value marking an empty way. Real keys are line addresses
/// (`addr >> 6`, at most 2^58) or virtual page numbers (at most 2^52),
/// so the all-ones pattern can never collide with one; scans can then
/// test occupancy and tag match with a single comparison instead of a
/// flags load plus a tag load per way. `FLAG_VALID` is still maintained
/// for the metadata accessors.
pub(crate) const TAG_INVALID: u64 = u64::MAX;

/// Per-entry flag bits.
pub(crate) const FLAG_VALID: u8 = 1;
/// Entry has been written and differs from the level below.
pub(crate) const FLAG_DIRTY: u8 = 2;
/// Entry was installed by a prefetcher and not yet demanded.
pub(crate) const FLAG_PREFETCHED: u8 = 4;

/// Result of inserting a key into a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InsertOutcome {
    /// The key was already present at this way (flags untouched except as
    /// requested by the caller).
    AlreadyPresent(u32),
    /// Installed into a previously invalid way.
    Installed(u32),
    /// Installed by evicting the previous occupant; its tag and flags are
    /// returned.
    Evicted {
        /// The way that was overwritten.
        way: u32,
        /// Tag of the evicted entry.
        old_tag: u64,
        /// Flags of the evicted entry.
        old_flags: u8,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct AssocArray {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    flags: Vec<u8>,
    policy: ReplacementPolicy,
    /// LRU/FIFO recency stamps (empty for other policies).
    stamps: Vec<u64>,
    /// Tree-PLRU bits, `ways - 1` per set (empty for other policies).
    plru: Vec<bool>,
    clock: u64,
    rng: u64,
    /// Last-hit way per set (fast path for repeated keys).
    hint: Vec<u32>,
    /// `sets - 1` when the set count is a power of two (every shipped
    /// config), else `u64::MAX` as a "use modulo" sentinel — precomputed
    /// so the per-access set index is a single mask.
    set_mask: u64,
}

/// Select-based scan of one set's tags: `(match_way, first_invalid_way)`,
/// each `u32::MAX` when absent. No data-dependent branches — the loop
/// body folds with conditional moves, so the compiler unrolls (and
/// auto-vectorizes) it and a thrashing set costs no branch mispredicts.
/// Keys are unique within a set, so last-write-wins on `found` is exact;
/// `min` keeps first-invalid semantics.
#[inline(always)]
fn scan_tags_fixed<const W: usize>(tags: &[u64], key: u64) -> (u32, u32) {
    let tags: &[u64; W] = tags.try_into().expect("way count");
    let mut found = u32::MAX;
    let mut first_invalid = u32::MAX;
    for (w, &t) in tags.iter().enumerate() {
        if t == key {
            found = w as u32;
        }
        if t == TAG_INVALID {
            first_invalid = first_invalid.min(w as u32);
        }
    }
    (found, first_invalid)
}

fn scan_tags_dyn(tags: &[u64], key: u64) -> (u32, u32) {
    let mut found = u32::MAX;
    let mut first_invalid = u32::MAX;
    for (w, &t) in tags.iter().enumerate() {
        if t == key {
            found = w as u32;
        }
        if t == TAG_INVALID {
            first_invalid = first_invalid.min(w as u32);
        }
    }
    (found, first_invalid)
}

/// Dispatch to a fully unrolled scan for the way counts the shipped
/// device models use (2/4/8-way caches and TLBs, the C906's 10-entry and
/// larger fully associative uTLBs).
#[inline(always)]
fn scan_tags(tags: &[u64], key: u64) -> (u32, u32) {
    match tags.len() {
        2 => scan_tags_fixed::<2>(tags, key),
        4 => scan_tags_fixed::<4>(tags, key),
        8 => scan_tags_fixed::<8>(tags, key),
        10 => scan_tags_fixed::<10>(tags, key),
        16 => scan_tags_fixed::<16>(tags, key),
        32 => scan_tags_fixed::<32>(tags, key),
        _ => scan_tags_dyn(tags, key),
    }
}

/// First way holding the minimum stamp, via a branch-free fold over
/// `(stamp, way)` keys (the way bits break ties toward the first
/// minimum, matching the original first-strict-minimum scan). Only
/// meaningful when the whole set is valid — exactly the case the victim
/// scan is consulted in.
///
/// The fixed-width variants pack the key into one `u64` — `stamp << 6 |
/// way` — which is exact because `W <= 32` fits in 6 bits and stamps are
/// access-clock values far below `2^58` (the clock advances once per
/// touched reference; a simulation long enough to overflow would run for
/// years). `debug_assert`s on the clock in `touch`/`stamp_fill` pin the
/// bound.
#[inline(always)]
fn scan_oldest_fixed<const W: usize>(stamps: &[u64]) -> u32 {
    let stamps: &[u64; W] = stamps.try_into().expect("way count");
    let mut best = u64::MAX;
    for (w, &s) in stamps.iter().enumerate() {
        best = best.min((s << 6) | w as u64);
    }
    (best & 63) as u32
}

fn scan_oldest_dyn(stamps: &[u64]) -> u32 {
    let mut best = u128::MAX;
    for (w, &s) in stamps.iter().enumerate() {
        best = best.min((u128::from(s) << 32) | w as u128);
    }
    (best & u128::from(u32::MAX)) as u32
}

#[inline(always)]
fn scan_oldest(stamps: &[u64]) -> u32 {
    match stamps.len() {
        2 => scan_oldest_fixed::<2>(stamps),
        4 => scan_oldest_fixed::<4>(stamps),
        8 => scan_oldest_fixed::<8>(stamps),
        10 => scan_oldest_fixed::<10>(stamps),
        16 => scan_oldest_fixed::<16>(stamps),
        32 => scan_oldest_fixed::<32>(stamps),
        _ => scan_oldest_dyn(stamps),
    }
}

/// A fill slot remembered from a miss scan: where a subsequent
/// [`AssocArray::install_reserved`] of the same key will land. The slot
/// stays valid only while no other operation touches the array in
/// between (the page-walk window for TLBs, the probe-to-fill window of
/// one demand reference for caches).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Reserved {
    way: u32,
    /// The slot holds a valid entry that installation will evict.
    evict: bool,
}

impl AssocArray {
    pub(crate) fn new(sets: usize, ways: usize, policy: ReplacementPolicy, rng_seed: u64) -> Self {
        assert!(sets > 0 && ways > 0, "need at least one set and way");
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                ways.is_power_of_two(),
                "tree-PLRU requires a power-of-two way count"
            );
        }
        let n = sets * ways;
        let stamped = matches!(policy, ReplacementPolicy::Lru | ReplacementPolicy::Fifo);
        Self {
            sets,
            ways,
            tags: vec![TAG_INVALID; n],
            flags: vec![0; n],
            policy,
            stamps: if stamped { vec![0; n] } else { Vec::new() },
            plru: if policy == ReplacementPolicy::TreePlru {
                vec![false; sets * (ways - 1)]
            } else {
                Vec::new()
            },
            clock: 0,
            rng: rng_seed,
            hint: vec![0; sets],
            set_mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                u64::MAX
            },
        }
    }

    #[inline]
    pub(crate) fn set_of(&self, key: u64) -> usize {
        // Power-of-two set counts (every shipped config) index with a
        // mask; the modulo fallback keeps arbitrary geometries working.
        if self.set_mask != u64::MAX {
            (key & self.set_mask) as usize
        } else {
            (key % self.sets as u64) as usize
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: u32) -> usize {
        set * self.ways + way as usize
    }

    /// Find `key` in its set and update recency. Returns the way on a hit.
    #[inline]
    pub(crate) fn lookup(&mut self, key: u64) -> Option<u32> {
        let set = self.set_of(key);
        let base = set * self.ways;
        // Fast path: the way that hit last time.
        let h = self.hint[set];
        let hi = base + h as usize;
        if (h as usize) < self.ways && self.tags[hi] == key {
            self.touch(set, h);
            return Some(h);
        }
        let (found, _) = scan_tags(&self.tags[base..base + self.ways], key);
        if found == u32::MAX {
            return None;
        }
        self.hint[set] = found;
        self.touch(set, found);
        Some(found)
    }

    /// One-pass demand access: locate `key` (hint first), touch recency,
    /// consume the prefetched flag, and optionally mark dirty — the fused
    /// equivalent of `lookup` + `flags_of` + flag updates,
    /// reading each entry's metadata once. Returns `(way, was_prefetched)`
    /// on a hit.
    #[inline]
    pub(crate) fn access_demand(&mut self, key: u64, set_dirty: bool) -> Option<(u32, bool)> {
        let set = self.set_of(key);
        let base = set * self.ways;
        let h = self.hint[set];
        let hi = base + h as usize;
        let way = if (h as usize) < self.ways && self.tags[hi] == key {
            h
        } else {
            let (found, _) = scan_tags(&self.tags[base..base + self.ways], key);
            if found == u32::MAX {
                return None;
            }
            self.hint[set] = found;
            found
        };
        let (was_prefetched, _) = self.demand_touch(set, way, set_dirty);
        Some((way, was_prefetched))
    }

    /// The state updates of a demand hit at `(set, way)`: consume the
    /// prefetched flag, optionally mark dirty, touch recency. Returns
    /// whether the line was a fresh prefetch fill, and whether it is
    /// dirty *after* this touch (so callers can arm repeat fast paths
    /// without re-reading the flags).
    #[inline]
    fn demand_touch(&mut self, set: usize, way: u32, set_dirty: bool) -> (bool, bool) {
        let i = set * self.ways + way as usize;
        let was_prefetched = self.flags[i] & FLAG_PREFETCHED != 0;
        let mut f = self.flags[i] & !FLAG_PREFETCHED;
        if set_dirty {
            f |= FLAG_DIRTY;
        }
        self.flags[i] = f;
        self.touch(set, way);
        (was_prefetched, f & FLAG_DIRTY != 0)
    }

    /// [`AssocArray::access_demand`] fused with victim preselection: on a
    /// miss, additionally return the slot a subsequent
    /// [`AssocArray::install_reserved`] of the same key will fill — the
    /// single miss scan serves both the probe and the fill. `None` is
    /// returned for policies whose victim choice must happen at fill time
    /// (random replacement advances its RNG when evicting); callers then
    /// fall back to a plain [`AssocArray::insert`].
    #[inline]
    pub(crate) fn access_demand_reserving(
        &mut self,
        key: u64,
        set_dirty: bool,
    ) -> (Option<(u32, bool, bool)>, Option<Reserved>) {
        let set = self.set_of(key);
        let base = set * self.ways;
        let h = self.hint[set];
        let hi = base + h as usize;
        if (h as usize) < self.ways && self.tags[hi] == key {
            let (was_prefetched, dirty) = self.demand_touch(set, h, set_dirty);
            return (Some((h, was_prefetched, dirty)), None);
        }
        let (found, first_invalid) = scan_tags(&self.tags[base..base + self.ways], key);
        if found != u32::MAX {
            self.hint[set] = found;
            let (was_prefetched, dirty) = self.demand_touch(set, found, set_dirty);
            return (Some((found, was_prefetched, dirty)), None);
        }
        // Miss. Preselect the fill slot for the stamped policies: the
        // first invalid way, else the oldest stamp (the victim scan only
        // runs on a full set, where every stamp participates — identical
        // to the fused first-strict-minimum tracking it replaces).
        let reserved = if matches!(
            self.policy,
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo
        ) {
            Some(if first_invalid != u32::MAX {
                Reserved {
                    way: first_invalid,
                    evict: false,
                }
            } else {
                Reserved {
                    way: scan_oldest(&self.stamps[base..base + self.ways]),
                    evict: true,
                }
            })
        } else {
            None
        };
        (None, reserved)
    }

    /// Install `key` at a slot remembered by
    /// [`AssocArray::access_demand_reserving`] for the *same* key with no
    /// intervening operations on this array. Behaves exactly like
    /// [`AssocArray::insert`] (which would rediscover the same slot), with
    /// the redundant scan skipped; the key is known absent, so the
    /// `AlreadyPresent` arm cannot apply.
    #[inline]
    pub(crate) fn install_reserved(
        &mut self,
        key: u64,
        new_flags: u8,
        r: Reserved,
    ) -> InsertOutcome {
        // Installing the sentinel would create a phantom "empty" way that
        // is silently lost to every later scan; catch it on both install
        // paths (see `insert` for the same guard).
        debug_assert_ne!(key, TAG_INVALID, "key collides with the empty-way sentinel");
        debug_assert!(
            self.peek(key).is_none(),
            "reserved install of a present key"
        );
        let set = self.set_of(key);
        let i = self.idx(set, r.way);
        if !r.evict {
            debug_assert_eq!(self.tags[i], TAG_INVALID);
            self.tags[i] = key;
            self.flags[i] = FLAG_VALID | new_flags;
            self.stamp_fill(set, r.way);
            self.hint[set] = r.way;
            return InsertOutcome::Installed(r.way);
        }
        let old_tag = self.tags[i];
        let old_flags = self.flags[i];
        self.tags[i] = key;
        self.flags[i] = FLAG_VALID | new_flags;
        self.stamp_fill(set, r.way);
        self.hint[set] = r.way;
        InsertOutcome::Evicted {
            way: r.way,
            old_tag,
            old_flags,
        }
    }

    /// Find `key` without changing any state.
    #[inline]
    pub(crate) fn peek(&self, key: u64) -> Option<u32> {
        let set = self.set_of(key);
        let base = set * self.ways;
        let (found, _) = scan_tags(&self.tags[base..base + self.ways], key);
        (found != u32::MAX).then_some(found)
    }

    /// Update recency state for a touch (hit) of `way`.
    #[inline]
    fn touch(&mut self, set: usize, way: u32) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                debug_assert!(
                    self.clock < 1 << 58,
                    "stamp would overflow the u64 scan key"
                );
                let i = self.idx(set, way);
                self.stamps[i] = self.clock;
            }
            ReplacementPolicy::Fifo | ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => self.touch_plru(set, way),
        }
    }

    /// Update recency state for a fill of `way`.
    #[inline]
    fn stamp_fill(&mut self, set: usize, way: u32) {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                self.clock += 1;
                debug_assert!(
                    self.clock < 1 << 58,
                    "stamp would overflow the u64 scan key"
                );
                let i = self.idx(set, way);
                self.stamps[i] = self.clock;
            }
            ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => self.touch_plru(set, way),
        }
    }

    fn touch_plru(&mut self, set: usize, way: u32) {
        if self.ways <= 1 {
            return;
        }
        let bits = &mut self.plru[set * (self.ways - 1)..(set + 1) * (self.ways - 1)];
        let mut node = bits.len() + way as usize;
        while node > 0 {
            let parent = (node - 1) / 2;
            let went_left = 2 * parent + 1 == node;
            bits[parent] = went_left;
            node = parent;
        }
    }

    fn victim(&mut self, set: usize) -> u32 {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let base = set * self.ways;
                let mut best = 0usize;
                for w in 1..self.ways {
                    if self.stamps[base + w] < self.stamps[base + best] {
                        best = w;
                    }
                }
                best as u32
            }
            ReplacementPolicy::Random => {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.ways as u64) as u32
            }
            ReplacementPolicy::TreePlru => {
                if self.ways == 1 {
                    return 0;
                }
                let bits = &self.plru[set * (self.ways - 1)..(set + 1) * (self.ways - 1)];
                let mut node = 0usize;
                while node < bits.len() {
                    node = 2 * node + 1 + usize::from(bits[node]);
                }
                (node - bits.len()) as u32
            }
        }
    }

    /// Insert `key` with `new_flags` (FLAG_VALID is implied). If the key
    /// is already present, nothing changes except recency and the flags
    /// are OR-ed in.
    pub(crate) fn insert(&mut self, key: u64, new_flags: u8) -> InsertOutcome {
        debug_assert_ne!(key, TAG_INVALID, "key collides with the empty-way sentinel");
        let set = self.set_of(key);
        let base = set * self.ways;
        let (found, first_invalid) = scan_tags(&self.tags[base..base + self.ways], key);
        if found != u32::MAX {
            let i = base + found as usize;
            self.flags[i] |= new_flags;
            self.stamp_fill(set, found);
            return InsertOutcome::AlreadyPresent(found);
        }
        if first_invalid != u32::MAX {
            let w = first_invalid as usize;
            let i = base + w;
            self.tags[i] = key;
            self.flags[i] = FLAG_VALID | new_flags;
            self.stamp_fill(set, w as u32);
            self.hint[set] = w as u32;
            return InsertOutcome::Installed(w as u32);
        }
        // Evict. Stamped policies take the oldest-stamp way (the set is
        // full, so every stamp participates — same first-minimum choice
        // `victim` makes); the others defer to their policy state/RNG.
        let stamped = matches!(
            self.policy,
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo
        );
        let w = if stamped {
            scan_oldest(&self.stamps[base..base + self.ways])
        } else {
            self.victim(set)
        };
        let i = base + w as usize;
        let old_tag = self.tags[i];
        let old_flags = self.flags[i];
        self.tags[i] = key;
        self.flags[i] = FLAG_VALID | new_flags;
        self.stamp_fill(set, w);
        self.hint[set] = w;
        InsertOutcome::Evicted {
            way: w,
            old_tag,
            old_flags,
        }
    }

    /// Re-touch `(set, way)` exactly as a [`Self::lookup`] hit of that way
    /// would: recency update plus the last-hit hint. Used by the pipeline's
    /// repeat-line fast path, which already knows where the line lives and
    /// skips the tag scan.
    #[inline]
    pub(crate) fn retouch(&mut self, set: usize, way: u32) {
        self.hint[set] = way;
        self.touch(set, way);
    }

    /// Read the flags of `(set, way)`.
    #[inline]
    pub(crate) fn flags_of(&self, set: usize, way: u32) -> u8 {
        self.flags[set * self.ways + way as usize]
    }

    /// The last-hit way recorded for `set`. Right after a [`Self::lookup`]
    /// hit this is the way that hit, which the pipeline's repeat-line fast
    /// path captures instead of re-scanning the set.
    #[inline]
    pub(crate) fn hint_of(&self, set: usize) -> u32 {
        self.hint[set]
    }

    /// Read the tag of `(set, way)` (valid bit not checked).
    #[inline]
    pub(crate) fn tag_of(&self, set: usize, way: u32) -> u64 {
        self.tags[set * self.ways + way as usize]
    }

    /// OR flag bits into `(set, way)`.
    #[inline]
    pub(crate) fn set_flags(&mut self, set: usize, way: u32, bits: u8) {
        self.flags[set * self.ways + way as usize] |= bits;
    }

    /// Number of valid entries.
    pub(crate) fn valid_entries(&self) -> usize {
        self.flags.iter().filter(|&&f| f & FLAG_VALID != 0).count()
    }

    /// Invalidate everything.
    pub(crate) fn clear(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.flags.fill(0);
        self.hint.fill(0);
    }

    /// Compare against `base` under the tag isomorphism `map` — the
    /// fast-forward verification primitive. Two states are equivalent when
    /// every *future* operation behaves identically modulo `map`:
    ///
    /// * per set, tags and flags compare positionally (`map`-ped tags for
    ///   valid entries; invalid ways hold the sentinel on both sides) with
    ///   LRU/FIFO stamps compared by pairwise *order* (including ties) —
    ///   victim scans and their tie-breaks consume only the relative
    ///   order, never the absolute clock values;
    /// * a set that fails positionally may still match **way-agnostically**
    ///   for the stamped policies (LRU/FIFO) when both sets are full with
    ///   strictly ordered stamps: the recency-ranked `(map(tag), flags)`
    ///   sequences must be equal. Way indices are immaterial there — hits
    ///   locate by tag, victims by strict-minimum stamp, and the
    ///   first-invalid-way rule cannot fire on a full set. This absorbs
    ///   way-rotation phase: a level receiving fewer than `ways` fills per
    ///   set per period rotates its fill way chunk-to-chunk while the
    ///   resident *content* is already periodic;
    /// * PLRU bits and the replacement RNG compare exactly (positional
    ///   policies never take the way-agnostic path: `plru` is empty for
    ///   stamped policies and vice versa) — random replacement therefore
    ///   only matches when the RNG took zero draws between the states;
    /// * the last-hit way `hint` is excluded: it is a scan shortcut and
    ///   never changes an access outcome, only how the way is found;
    /// * the access clock itself is excluded: it differs between any two
    ///   points in time, and no decision reads it directly.
    pub(crate) fn ff_shift_eq<F: Fn(u64) -> u64>(&self, base: &AssocArray, map: F) -> bool {
        if self.sets != base.sets || self.ways != base.ways || self.policy != base.policy {
            return false;
        }
        if self.plru != base.plru || self.rng != base.rng {
            return false;
        }
        if self.stamps.len() != base.stamps.len() {
            return false;
        }
        for set in 0..self.sets {
            if !self.set_eq_positional(base, set, &map) && !self.set_eq_recency(base, set, &map) {
                return false;
            }
        }
        true
    }

    /// Positional set compare for [`AssocArray::ff_shift_eq`].
    fn set_eq_positional<F: Fn(u64) -> u64>(&self, base: &AssocArray, set: usize, map: &F) -> bool {
        let b = set * self.ways;
        for i in b..b + self.ways {
            if self.flags[i] != base.flags[i] {
                return false;
            }
            let want = if base.flags[i] & FLAG_VALID != 0 {
                map(base.tags[i])
            } else {
                base.tags[i]
            };
            if self.tags[i] != want {
                return false;
            }
        }
        if self.stamps.is_empty() {
            return true;
        }
        let cur = &self.stamps[b..b + self.ways];
        let old = &base.stamps[b..b + self.ways];
        for i in 0..self.ways {
            for j in i + 1..self.ways {
                if (cur[i] < cur[j]) != (old[i] < old[j]) || (cur[i] > cur[j]) != (old[i] > old[j])
                {
                    return false;
                }
            }
        }
        true
    }

    /// Way-agnostic set compare for [`AssocArray::ff_shift_eq`]: both
    /// sets full, stamps strictly ordered, recency-ranked `(map(tag),
    /// flags)` sequences equal.
    fn set_eq_recency<F: Fn(u64) -> u64>(&self, base: &AssocArray, set: usize, map: &F) -> bool {
        if self.stamps.is_empty() {
            return false;
        }
        let b = set * self.ways;
        if (b..b + self.ways)
            .any(|i| self.flags[i] & FLAG_VALID == 0 || base.flags[i] & FLAG_VALID == 0)
        {
            return false;
        }
        let mut cur_ways: Vec<usize> = (0..self.ways).collect();
        let mut base_ways: Vec<usize> = (0..self.ways).collect();
        cur_ways.sort_unstable_by_key(|&w| self.stamps[b + w]);
        base_ways.sort_unstable_by_key(|&w| base.stamps[b + w]);
        for r in 0..self.ways {
            let (cw, bw) = (b + cur_ways[r], b + base_ways[r]);
            // Strict stamp order (a tie would make the rank ambiguous).
            if r + 1 < self.ways
                && (self.stamps[b + cur_ways[r]] == self.stamps[b + cur_ways[r + 1]]
                    || base.stamps[b + base_ways[r]] == base.stamps[b + base_ways[r + 1]])
            {
                return false;
            }
            if self.flags[cw] != base.flags[bw] || self.tags[cw] != map(base.tags[bw]) {
                return false;
            }
        }
        true
    }

    /// Does `ok` hold for every valid tag? (Fast-forward uses this to
    /// prove a frozen level's resident lines cannot collide with the
    /// remaining footprint of an op.)
    pub(crate) fn ff_all_tags<F: FnMut(u64) -> bool>(&self, mut ok: F) -> bool {
        self.tags
            .iter()
            .zip(&self.flags)
            .all(|(&t, &f)| f & FLAG_VALID == 0 || ok(t))
    }

    /// Apply the tag isomorphism `map` to every valid entry (the
    /// fast-forward state advance). Recency state is untouched: stamps,
    /// PLRU bits, hints and the RNG are position-based and `map` moves
    /// tags, not ways.
    pub(crate) fn ff_shift_tags<F: Fn(u64) -> u64>(&mut self, map: F) {
        for i in 0..self.tags.len() {
            if self.flags[i] & FLAG_VALID != 0 {
                self.tags[i] = map(self.tags[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let mut a = AssocArray::new(4, 2, ReplacementPolicy::Lru, 1);
        assert_eq!(a.lookup(13), None);
        assert!(matches!(a.insert(13, 0), InsertOutcome::Installed(_)));
        assert!(a.lookup(13).is_some());
        assert_eq!(a.valid_entries(), 1);
    }

    /// The top line of the address space hashes to `u64::MAX` for 1-byte
    /// lines (see `membound_trace::MemAccess::lines` and its
    /// end-of-address-space clamp test); storing it would alias the
    /// empty-way sentinel and leak the way. Both install paths must
    /// refuse it in debug builds.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "empty-way sentinel"))]
    fn insert_rejects_the_sentinel_key() {
        if !cfg!(debug_assertions) {
            panic!("empty-way sentinel"); // keep the expectation meaningful
        }
        let mut a = AssocArray::new(4, 2, ReplacementPolicy::Lru, 1);
        let _ = a.insert(TAG_INVALID, 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "empty-way sentinel"))]
    fn install_reserved_rejects_the_sentinel_key() {
        if !cfg!(debug_assertions) {
            panic!("empty-way sentinel");
        }
        let mut a = AssocArray::new(4, 2, ReplacementPolicy::Lru, 1);
        // Reserve a slot through the normal miss flow, then try to land
        // the sentinel in it: the guard must fire before any state
        // changes, exactly as on the fused fast path.
        let (hit, reserved) = a.access_demand_reserving(7, false);
        assert!(hit.is_none());
        let r = reserved.expect("LRU reserves a victim on miss");
        let _ = a.install_reserved(TAG_INVALID, 0, r);
    }

    #[test]
    fn hint_path_gives_same_answer_as_scan() {
        let mut a = AssocArray::new(1, 4, ReplacementPolicy::Lru, 1);
        for k in 0..4u64 {
            a.insert(k, 0);
        }
        // Alternate between two keys; both paths must keep hitting.
        for _ in 0..10 {
            assert!(a.lookup(1).is_some());
            assert!(a.lookup(1).is_some()); // hint fast path
            assert!(a.lookup(3).is_some());
        }
        // LRU order reflects the touches: 0 and 2 are cold.
        let out = a.insert(9, 0);
        match out {
            InsertOutcome::Evicted { old_tag, .. } => assert!(old_tag == 0 || old_tag == 2),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn insert_of_present_key_ors_flags() {
        let mut a = AssocArray::new(2, 2, ReplacementPolicy::Lru, 1);
        a.insert(5, 0);
        assert!(matches!(
            a.insert(5, FLAG_DIRTY),
            InsertOutcome::AlreadyPresent(_)
        ));
        let w = a.peek(5).unwrap();
        assert_ne!(a.flags_of(a.set_of(5), w) & FLAG_DIRTY, 0);
        assert_eq!(a.valid_entries(), 1);
    }

    #[test]
    fn eviction_returns_old_state() {
        let mut a = AssocArray::new(1, 1, ReplacementPolicy::Lru, 1);
        a.insert(7, FLAG_DIRTY);
        match a.insert(8, 0) {
            InsertOutcome::Evicted {
                old_tag, old_flags, ..
            } => {
                assert_eq!(old_tag, 7);
                assert_ne!(old_flags & FLAG_DIRTY, 0);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut a = AssocArray::new(1, 4, ReplacementPolicy::Fifo, 1);
        for k in 0..4u64 {
            a.insert(k, 0);
        }
        a.lookup(0);
        a.lookup(0);
        match a.insert(9, 0) {
            InsertOutcome::Evicted { old_tag, .. } => {
                assert_eq!(old_tag, 0, "FIFO must evict the oldest fill")
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut a = AssocArray::new(1, 4, ReplacementPolicy::Lru, 1);
        for k in 0..4u64 {
            a.insert(k, 0);
        }
        a.lookup(0); // 1 is now coldest
        match a.insert(9, 0) {
            InsertOutcome::Evicted { old_tag, .. } => assert_eq!(old_tag, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn random_is_deterministic_and_covers_all_ways() {
        let mut seen = std::collections::HashSet::new();
        let mut a = AssocArray::new(1, 4, ReplacementPolicy::Random, 7);
        let mut b = AssocArray::new(1, 4, ReplacementPolicy::Random, 7);
        for k in 0..4u64 {
            a.insert(k, 0);
            b.insert(k, 0);
        }
        for k in 100..356u64 {
            let va = a.insert(k, 0);
            let vb = b.insert(k, 0);
            assert_eq!(va, vb, "same seed must give same victims");
            if let InsertOutcome::Evicted { way, .. } = va {
                seen.insert(way);
            }
        }
        assert_eq!(seen.len(), 4, "all ways should eventually be chosen");
    }

    #[test]
    fn plru_victim_avoids_recently_touched() {
        let mut a = AssocArray::new(1, 4, ReplacementPolicy::TreePlru, 1);
        for k in 0..4u64 {
            a.insert(k, 0);
        }
        a.lookup(3);
        if let InsertOutcome::Evicted { old_tag, .. } = a.insert(9, 0) {
            assert_ne!(old_tag, 3, "PLRU must not evict the hottest way");
        } else {
            panic!("expected eviction");
        }
    }

    #[test]
    fn plru_rotates_victims_under_round_robin_fills() {
        let mut a = AssocArray::new(1, 8, ReplacementPolicy::TreePlru, 1);
        for k in 0..8u64 {
            a.insert(k, 0);
        }
        let mut ways = std::collections::HashSet::new();
        for k in 100..108u64 {
            if let InsertOutcome::Evicted { way, .. } = a.insert(k, 0) {
                ways.insert(way);
            }
        }
        assert_eq!(ways.len(), 8, "PLRU round-robin should rotate victims");
    }

    #[test]
    fn single_way_always_evicts_way_zero() {
        for policy in ReplacementPolicy::all() {
            let mut a = AssocArray::new(2, 1, policy, 1);
            a.insert(0, 0);
            match a.insert(2, 0) {
                InsertOutcome::Evicted { way, .. } => assert_eq!(way, 0, "{policy}"),
                other => panic!("{policy}: expected eviction, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two_ways() {
        let _ = AssocArray::new(1, 6, ReplacementPolicy::TreePlru, 1);
    }

    #[test]
    fn clear_resets_validity() {
        let mut a = AssocArray::new(2, 2, ReplacementPolicy::Random, 3);
        a.insert(1, 0);
        a.insert(2, 0);
        a.clear();
        assert_eq!(a.valid_entries(), 0);
        assert_eq!(a.lookup(1), None);
    }
}
