//! Hit/miss/traffic counters and cycle accounting.

use serde::{Deserialize, Serialize};

/// Counters for one cache or TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand accesses that hit in this level.
    pub hits: u64,
    /// Demand accesses that missed in this level.
    pub misses: u64,
    /// Lines (or entries) evicted to make room.
    pub evictions: u64,
    /// Dirty lines written back to the level below.
    pub writebacks: u64,
    /// Prefetch fills this level's prefetcher requested.
    pub prefetches_issued: u64,
    /// Demand hits on lines that were brought in by the prefetcher.
    pub prefetch_hits: u64,
    /// Bytes filled into this level from the level below (demand + prefetch).
    pub fill_bytes: u64,
    /// Bytes written back from this level to the level below.
    pub writeback_bytes: u64,
}

impl LevelStats {
    /// Total demand accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Demand hit rate in `[0, 1]`; `1.0` for an untouched level.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of issued prefetches that later served a demand hit.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetches_issued as f64
        }
    }

    /// Accumulate another level's counters into this one.
    pub fn merge(&mut self, other: &LevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.fill_bytes += other.fill_bytes;
        self.writeback_bytes += other.writeback_bytes;
    }
}

/// DRAM traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read from DRAM (demand fills and prefetch fills).
    pub bytes_read: u64,
    /// Bytes written to DRAM (writebacks).
    pub bytes_written: u64,
    /// Number of line reads.
    pub reads: u64,
    /// Number of line writes.
    pub writes: u64,
}

impl DramStats {
    /// Total bytes moved over the memory channels.
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

/// Cycle accounting for one simulated core over one phase (between
/// barriers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles spent issuing instructions (compute + memory ops).
    pub issue_cycles: f64,
    /// Cycles stalled waiting on cache/TLB/DRAM latency (after MLP overlap).
    pub stall_cycles: f64,
}

impl CycleBreakdown {
    /// Total cycles of this breakdown.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.issue_cycles + self.stall_cycles
    }

    /// Accumulate another breakdown.
    pub fn merge(&mut self, other: &CycleBreakdown) {
        self.issue_cycles += other.issue_cycles;
        self.stall_cycles += other.stall_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_of_untouched_level_is_one() {
        assert_eq!(LevelStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_counts_hits_over_accesses() {
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..LevelStats::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prefetch_accuracy_zero_when_none_issued() {
        assert_eq!(LevelStats::default().prefetch_accuracy(), 0.0);
    }

    #[test]
    fn prefetch_accuracy_ratio() {
        let s = LevelStats {
            prefetches_issued: 10,
            prefetch_hits: 7,
            ..LevelStats::default()
        };
        assert!((s.prefetch_accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let a = LevelStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            writebacks: 4,
            prefetches_issued: 5,
            prefetch_hits: 6,
            fill_bytes: 7,
            writeback_bytes: 8,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.writeback_bytes, 16);
    }

    #[test]
    fn dram_totals_and_merge() {
        let mut d = DramStats {
            bytes_read: 100,
            bytes_written: 50,
            reads: 2,
            writes: 1,
        };
        assert_eq!(d.bytes_total(), 150);
        d.merge(&d.clone());
        assert_eq!(d.bytes_total(), 300);
        assert_eq!(d.writes, 2);
    }

    #[test]
    fn cycle_breakdown_totals() {
        let mut c = CycleBreakdown {
            issue_cycles: 10.0,
            stall_cycles: 5.0,
        };
        assert_eq!(c.total(), 15.0);
        c.merge(&CycleBreakdown {
            issue_cycles: 1.0,
            stall_cycles: 2.0,
        });
        assert_eq!(c.total(), 18.0);
    }
}
