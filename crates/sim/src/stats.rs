//! Hit/miss/traffic counters and cycle accounting.

use serde::{Deserialize, Serialize};

/// Counters for one cache or TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand accesses that hit in this level.
    pub hits: u64,
    /// Demand accesses that missed in this level.
    pub misses: u64,
    /// Lines (or entries) evicted to make room.
    pub evictions: u64,
    /// Dirty lines written back to the level below.
    pub writebacks: u64,
    /// Prefetch fills this level's prefetcher requested.
    pub prefetches_issued: u64,
    /// Demand hits on lines that were brought in by the prefetcher.
    pub prefetch_hits: u64,
    /// Bytes filled into this level from the level below (demand + prefetch).
    pub fill_bytes: u64,
    /// Bytes written back from this level to the level below.
    pub writeback_bytes: u64,
}

impl LevelStats {
    /// Total demand accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Demand hit rate in `[0, 1]`; `1.0` for an untouched level.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of issued prefetches that later served a demand hit.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetches_issued as f64
        }
    }

    /// Accumulate another level's counters into this one.
    pub fn merge(&mut self, other: &LevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.fill_bytes += other.fill_bytes;
        self.writeback_bytes += other.writeback_bytes;
    }
}

/// DRAM traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read from DRAM (demand fills and prefetch fills).
    pub bytes_read: u64,
    /// Bytes written to DRAM (writebacks).
    pub bytes_written: u64,
    /// Number of line reads.
    pub reads: u64,
    /// Number of line writes.
    pub writes: u64,
}

impl DramStats {
    /// Total bytes moved over the memory channels.
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

/// Fractional bits of the fixed-point cycle unit: cycle accounting is
/// carried in *subcycles* of 1/2^16 cycle each.
pub const SUBCYCLE_SHIFT: u32 = 16;

/// One full cycle in subcycle units (`1 << SUBCYCLE_SHIFT`).
pub const SUBCYCLE_ONE: u64 = 1 << SUBCYCLE_SHIFT;

/// Cycle accounting for one simulated core over one phase (between
/// barriers).
///
/// Counters are exact fixed-point integers in [`SUBCYCLE_ONE`] units, so
/// accumulation is associative: partial sums can be reordered, batched or
/// vectorized without changing the totals (u64 addition is exact), unlike
/// the f64 accumulators this struct used before, which silently lost
/// precision past 2^53 subcycles and pinned an arbitrary summation order
/// into the digest. Every contribution is quantized *once*, at
/// configuration time (`latency / mlp`, `slots / issue_width` — see
/// DESIGN.md §13 for the exactness argument); f64 cycle values are
/// derived outputs, never accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Subcycles spent issuing instructions (compute + memory ops).
    pub issue_subcycles: u64,
    /// Subcycles stalled waiting on cache/TLB/DRAM latency (after MLP
    /// overlap).
    pub stall_subcycles: u64,
}

impl CycleBreakdown {
    /// Issue time in cycles (derived; exact for totals below 2^53
    /// subcycles).
    #[must_use]
    pub fn issue_cycles(&self) -> f64 {
        self.issue_subcycles as f64 / SUBCYCLE_ONE as f64
    }

    /// Stall time in cycles (derived).
    #[must_use]
    pub fn stall_cycles(&self) -> f64 {
        self.stall_subcycles as f64 / SUBCYCLE_ONE as f64
    }

    /// Total time of this breakdown in subcycle units.
    #[must_use]
    pub fn total_subcycles(&self) -> u64 {
        self.issue_subcycles + self.stall_subcycles
    }

    /// Total time of this breakdown in cycles (derived).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total_subcycles() as f64 / SUBCYCLE_ONE as f64
    }

    /// Accumulate another breakdown (exact integer addition).
    pub fn merge(&mut self, other: &CycleBreakdown) {
        self.issue_subcycles += other.issue_subcycles;
        self.stall_subcycles += other.stall_subcycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_of_untouched_level_is_one() {
        assert_eq!(LevelStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_counts_hits_over_accesses() {
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..LevelStats::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prefetch_accuracy_zero_when_none_issued() {
        assert_eq!(LevelStats::default().prefetch_accuracy(), 0.0);
    }

    #[test]
    fn prefetch_accuracy_ratio() {
        let s = LevelStats {
            prefetches_issued: 10,
            prefetch_hits: 7,
            ..LevelStats::default()
        };
        assert!((s.prefetch_accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let a = LevelStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            writebacks: 4,
            prefetches_issued: 5,
            prefetch_hits: 6,
            fill_bytes: 7,
            writeback_bytes: 8,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.writeback_bytes, 16);
    }

    #[test]
    fn dram_totals_and_merge() {
        let mut d = DramStats {
            bytes_read: 100,
            bytes_written: 50,
            reads: 2,
            writes: 1,
        };
        assert_eq!(d.bytes_total(), 150);
        d.merge(&d.clone());
        assert_eq!(d.bytes_total(), 300);
        assert_eq!(d.writes, 2);
    }

    #[test]
    fn cycle_breakdown_totals() {
        let mut c = CycleBreakdown {
            issue_subcycles: 10 * SUBCYCLE_ONE,
            stall_subcycles: 5 * SUBCYCLE_ONE,
        };
        assert_eq!(c.total_subcycles(), 15 * SUBCYCLE_ONE);
        assert_eq!(c.total(), 15.0);
        c.merge(&CycleBreakdown {
            issue_subcycles: SUBCYCLE_ONE,
            stall_subcycles: 2 * SUBCYCLE_ONE,
        });
        assert_eq!(c.total_subcycles(), 18 * SUBCYCLE_ONE);
        assert_eq!(c.issue_cycles(), 11.0);
        assert_eq!(c.stall_cycles(), 7.0);
    }

    /// The regression the fixed-point representation exists to fix: an
    /// f64 accumulator absorbs (loses) single-subcycle contributions once
    /// the running sum passes 2^53, and its partial sums are
    /// order-sensitive; the u64 counters stay exact and
    /// permutation-invariant.
    #[test]
    fn fixed_point_counters_are_exact_and_permutation_invariant_where_f64_drifts() {
        // f64 drift: past 2^53 the next +1.0 is rounded away entirely.
        let big = (1u64 << 53) as f64;
        assert_eq!(big + 1.0, big, "f64 silently drops the contribution");
        let mut exact = CycleBreakdown {
            issue_subcycles: 0,
            stall_subcycles: 1 << 53,
        };
        exact.merge(&CycleBreakdown {
            issue_subcycles: 0,
            stall_subcycles: 1,
        });
        assert_eq!(exact.stall_subcycles, (1 << 53) + 1, "u64 keeps it");

        // f64 order sensitivity: the same three contributions summed in a
        // different order give a different bit pattern.
        let contributions = [big, 1.0, -1.0];
        let forward: f64 = contributions.iter().sum();
        let reverse: f64 = contributions.iter().rev().sum();
        assert_ne!(forward.to_bits(), reverse.to_bits());

        // The integer counters are permutation-invariant by construction.
        let parts = [7u64, 1 << 40, 3, (1 << 52) + 1, 65_535];
        let mut fwd = CycleBreakdown::default();
        for &p in &parts {
            fwd.merge(&CycleBreakdown {
                issue_subcycles: p,
                stall_subcycles: p / 2,
            });
        }
        let mut rev = CycleBreakdown::default();
        for &p in parts.iter().rev() {
            rev.merge(&CycleBreakdown {
                issue_subcycles: p,
                stall_subcycles: p / 2,
            });
        }
        assert_eq!(fwd, rev);
    }
}
