//! Analytic steady-state execution of trace-IR programs.
//!
//! The per-element replay wall: simulating `n` references costs `O(n)`
//! pipeline steps even when the hierarchy's behaviour is perfectly
//! periodic. This module breaks it for provably periodic loop nests by
//! *fast-forwarding*: execute a warm-up prefix of the loop concretely,
//! prove that one more *chunk* (a set-index period of iterations) maps
//! the pipeline state onto itself under the address shift `Δ·P` (a state
//! isomorphism `Φ`), and then advance all counters by exact `u64`
//! multiplication over the remaining chunk count while shifting the
//! resident-line state by `Φ^k`.
//!
//! The proof obligations, checked per fast-forward attempt (DESIGN.md
//! §15 carries the full argument):
//!
//! * **Uniform shift** — every address-bearing op in the loop body moves
//!   by the same per-iteration delta `Δ`. Mixed steps are rejected.
//! * **Index periodicity** — the chunk length `P = M / gcd(M, |Δ|)`
//!   iterations, where `M` is the least common multiple of every cache
//!   level's `sets × line_bytes`, makes the chunk shift `Δ·P` a multiple
//!   of every level's indexing period, so `Φ` maps each set to itself.
//! * **Translation invariance** — a nonzero `Δ` is only accepted with
//!   TLB simulation disabled (`translate` provably never touches state);
//!   `Δ = 0` (identity `Φ`, `P = 1`) is accepted with the TLB on and
//!   compares TLB state exactly.
//! * **Address envelope** — the loop footprint, widened by the maximum
//!   prefetch reach, must sit inside `[2^22, 2^62)`: prefetch target
//!   clamping at address 0 and `line << shift` overflow behave
//!   identically across all chunks, and resident lines outside the
//!   envelope windows are compared (and left) as-is.
//! * **State isomorphism** — after the warm-up, the full per-core state
//!   (cache tags/flags/recency *order*, prefetcher tables, armed line,
//!   walk memo) must equal the pre-chunk snapshot under `Φ`; replacement
//!   RNG and frozen prefetcher streaks compare exactly, so random
//!   replacement (U74) and retraining streams fall back honestly.
//!
//! Anything unproven replays through the raw per-element paths — the
//! fallback is the reference semantics, so analytic execution is
//! digest-preserving by construction (`tests/prop_analytic.rs` and the
//! CI `analytic-gate` hold it to that).

use crate::cache::Cache;
use crate::hierarchy::{ArmedLine, CorePipeline, MAX_WALK_LEVELS};
use crate::machine::DeviceSpec;
use crate::prefetch::{Prefetcher, PrefetcherConfig};
use crate::stats::LevelStats;
use crate::tlb::Tlb;
use membound_trace::ir::DEFAULT_RECORDER_CAP;
use membound_trace::{strided_addr, MemAccess, Recorder, TraceOp};

/// Minimum whole chunks an op must span before fast-forward is attempted
/// (below this the warm-up would eat the gain).
const MIN_CHUNKS: u64 = 8;

/// Largest accepted chunk length in loop iterations (a period larger
/// than this replays concretely: the chunk itself would dominate).
const MAX_PERIOD_ITERS: u64 = 1 << 22;

/// Largest accepted indexing modulus `M` in bytes (guards the `lcm`
/// blow-up of pathological non-power-of-two partitioned geometries).
const MAX_MODULUS: u64 = 1 << 28;

/// Warm-up schedule, in chunks: snapshot after `w` chunks, verify the
/// isomorphism over chunk `w + 1`, growing exponentially while the
/// transient (cold fills, prefetcher training) still shows.
const WARMUPS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Fast-forward address envelope: loop windows must fit in
/// `[ENVELOPE_LO, ENVELOPE_HI)`.
const ENVELOPE_LO: u64 = 1 << 22;
const ENVELOPE_HI: u64 = 1 << 62;

/// Element count from which a failed fast-forward attempt counts toward
/// disabling the recorder (small ops never pay for the warm-up anyway).
const BIG_ELEMS: u64 = 4096;

/// Consecutive big-op failures (with no success ever) after which the
/// analytic layer turns itself off for the rest of the run, bounding
/// recording overhead on workloads that can never fast-forward.
const MAX_FAILS: u32 = 8;

/// Disable analytic execution for the run once this many expanded
/// elements have been replayed through failed attempts with no success
/// yet, regardless of individual attempt sizes — bounds the recording
/// overhead of workloads made of many small ineligible loops.
const MAX_FAIL_ELEMS: u64 = 1 << 18;

/// Per-core analytic executor: records the sink stream into trace IR,
/// executes the IR, and fast-forwards the provably periodic parts.
#[derive(Debug)]
pub(crate) struct Analytic {
    recorder: Recorder,
    out: Vec<TraceOp>,
    scratch: Vec<TraceOp>,
    /// False once disabled; the sink dispatch then bypasses recording.
    pub(crate) live: bool,
    fails: u32,
    /// Cumulative expanded elements of failed attempts while nothing has
    /// succeeded yet — catches workloads made of many small ineligible
    /// loops (each under [`BIG_ELEMS`]) that would otherwise pay
    /// recording overhead forever.
    failed_elems: u64,
    successes: u64,
    /// Elements advanced analytically (never executed).
    pub(crate) analytic_ops: u64,
    /// Elements replayed raw inside failed fast-forward attempts.
    pub(crate) replay_fallback_ops: u64,
}

impl Analytic {
    pub(crate) fn new() -> Self {
        Analytic {
            recorder: Recorder::new(DEFAULT_RECORDER_CAP),
            out: Vec::new(),
            scratch: Vec::new(),
            live: true,
            fails: 0,
            failed_elems: 0,
            successes: 0,
            analytic_ops: 0,
            replay_fallback_ops: 0,
        }
    }

    fn note_success(&mut self, elems: u64) {
        self.successes += 1;
        self.analytic_ops = self.analytic_ops.saturating_add(elems);
    }

    fn note_fail(&mut self, elems: u64) {
        self.replay_fallback_ops = self.replay_fallback_ops.saturating_add(elems);
        if self.successes == 0 {
            if elems >= BIG_ELEMS {
                self.fails += 1;
            }
            self.failed_elems = self.failed_elems.saturating_add(elems);
            if self.fails >= MAX_FAILS || self.failed_elems >= MAX_FAIL_ELEMS {
                self.live = false;
            }
        }
    }
}

/// Greatest common divisor (Euclid); `gcd(m, 0) = m`.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Rough expanded element count of an op (what a raw replay would cost),
/// used for coverage accounting and the disable heuristic.
fn op_elems(op: &TraceOp) -> u64 {
    match op {
        TraceOp::Access { .. } => 1,
        TraceOp::Compute { .. } | TraceOp::Barrier => 0,
        TraceOp::Range { len, .. } => len.div_ceil(64),
        TraceOp::Strided { count, .. } => *count,
        TraceOp::StridedRmw { count, .. } => count.saturating_mul(2),
        TraceOp::Repeat { body, count, .. } => body
            .iter()
            .fold(0u64, |a, op| a.saturating_add(op_elems(op)))
            .saturating_mul(*count),
        TraceOp::Seq(ops) => ops
            .iter()
            .fold(0u64, |a, op| a.saturating_add(op_elems(op))),
    }
}

/// The line-address isomorphism `Φ` (or `Φ^k`): lines whose byte address
/// falls inside one of the (sorted, disjoint) windows shift by `delta`
/// bytes; everything else is identity. `delta` is always a multiple of
/// the line size, so the byte/line conversion is exact.
#[derive(Debug, Clone)]
pub(crate) struct LineMap {
    windows: Vec<(u64, u64)>,
    delta: i64,
    shift: u32,
}

impl LineMap {
    fn line(&self, line: u64) -> u64 {
        if self.delta == 0 {
            return line;
        }
        let byte = u128::from(line) << self.shift;
        let Ok(byte) = u64::try_from(byte) else {
            return line; // shifted out of the address space: outside windows
        };
        if self.windows.iter().any(|&(lo, hi)| byte >= lo && byte < hi) {
            byte.wrapping_add_signed(self.delta) >> self.shift
        } else {
            line
        }
    }

    fn is_identity(&self) -> bool {
        self.delta == 0
    }
}

/// A proven-eligible fast-forward plan for one linear loop.
struct FfPlan {
    /// Loop iterations per chunk.
    p: u64,
    /// Whole chunks available.
    chunks: u64,
    /// Byte shift per chunk (`Δ·P`, a multiple of the modulus `M`).
    chunk_delta: i64,
    /// Chunk-to-chunk isomorphism.
    map: LineMap,
    /// Per-stream single-iteration byte footprints (iteration 0), used
    /// to compute the *forward* windows — the byte ranges the remaining
    /// iterations can still touch — when validating frozen levels.
    streams: Vec<(i128, i128)>,
    /// Per-iteration byte shift.
    step: i64,
    /// Total loop iterations (the planned op's, not just whole chunks).
    count: u64,
    /// Prefetch-reach margin in bytes (window widening).
    margin: u64,
}

impl FfPlan {
    /// Byte ranges iterations `t0..count` can still touch (probe, fill
    /// or prefetch), one per stream, margin-widened.
    fn forward_windows(&self, t0: u64) -> Vec<(i128, i128)> {
        let near = i128::from(self.step) * i128::from(t0);
        let far = i128::from(self.step) * i128::from(self.count.saturating_sub(1));
        self.streams
            .iter()
            .map(|&(lo, hi)| {
                (
                    lo + near.min(far) - i128::from(self.margin),
                    hi + near.max(far) + i128::from(self.margin),
                )
            })
            .collect()
    }
}

/// Device-level fast-forward gate parameters, shared between the live
/// planner and the static coverage estimator.
pub(crate) struct FfParams {
    modulus: Option<u64>,
    tlb: bool,
    margin: u64,
    line_bytes: u32,
}

fn prefetch_reach_lines(configs: impl Iterator<Item = PrefetcherConfig>) -> u64 {
    configs
        .map(|c| match c {
            PrefetcherConfig::None => 0,
            PrefetcherConfig::NextLine { degree } => u64::from(degree),
            PrefetcherConfig::Stride {
                max_stride_lines,
                degree,
                ..
            } => u64::from(max_stride_lines) * u64::from(degree),
        })
        .max()
        .unwrap_or(0)
}

fn modulus_of(periods: impl Iterator<Item = Option<u64>>) -> Option<u64> {
    let mut m = 1u64;
    for period in periods {
        let period = period?;
        m = m.checked_mul(period / gcd(m, period))?;
        if m > MAX_MODULUS {
            return None;
        }
    }
    Some(m)
}

impl FfParams {
    /// Gate parameters as seen by one core of `spec` (unpartitioned, i.e.
    /// the single-thread view — the estimator's resolution).
    pub(crate) fn of_spec(spec: &DeviceSpec) -> FfParams {
        let line_bytes = spec.caches[0].line_bytes;
        FfParams {
            modulus: modulus_of(
                spec.caches
                    .iter()
                    .map(|c| c.sets().checked_mul(u64::from(c.line_bytes))),
            ),
            tlb: spec.tlb_enabled,
            margin: (prefetch_reach_lines(spec.prefetchers.iter().copied()) + 1)
                * u64::from(line_bytes),
            line_bytes,
        }
    }

    /// Plan a linear loop: `count` iterations advancing by `stride` bytes
    /// each, with absolute byte footprint `fp` (over *all* iterations).
    /// Returns `(P, chunks, chunk_delta, windows)`.
    #[allow(clippy::type_complexity)]
    fn plan_linear(
        &self,
        stride: i64,
        count: u64,
        fp: Option<(i128, i128)>,
    ) -> Option<(u64, u64, i64, Vec<(u64, u64)>)> {
        let m = self.modulus?;
        let (p, chunk_delta) = if stride == 0 {
            (1, 0)
        } else {
            if self.tlb {
                return None; // nonzero shift requires frozen translation
            }
            let p = m / gcd(m, stride.unsigned_abs());
            if p > MAX_PERIOD_ITERS {
                return None;
            }
            (p, i64::try_from(i128::from(stride) * i128::from(p)).ok()?)
        };
        let chunks = count / p;
        if chunks < MIN_CHUNKS {
            return None;
        }
        let windows = if chunk_delta == 0 {
            Vec::new()
        } else {
            let (lo, hi) = fp?;
            let lo = lo - i128::from(self.margin);
            let hi = hi + i128::from(self.margin);
            if lo < i128::from(ENVELOPE_LO) || hi > i128::from(ENVELOPE_HI) {
                return None;
            }
            vec![(lo as u64, hi as u64)]
        };
        Some((p, chunks, chunk_delta, windows))
    }

    fn line_shift(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }
}

/// Snapshot of everything [`CorePipeline`] carries between sink calls:
/// the comparison baseline for the isomorphism check, plus the counter
/// vector the per-chunk deltas are measured against.
struct PipeSnapshot {
    levels: Vec<Cache>,
    dtlb: Tlb,
    l2tlb: Option<Tlb>,
    prefetchers: Vec<Option<Prefetcher>>,
    armed: Option<ArmedLine>,
    walk_memo: [Option<(u64, usize, u32)>; MAX_WALK_LEVELS],
    walk_upper_node: Option<u64>,
    counters: Vec<u64>,
}

fn push_level(v: &mut Vec<u64>, s: &LevelStats) {
    v.extend([
        s.hits,
        s.misses,
        s.evictions,
        s.writebacks,
        s.prefetches_issued,
        s.prefetch_hits,
        s.fill_bytes,
        s.writeback_bytes,
    ]);
}

fn read_level(it: &mut impl Iterator<Item = u64>) -> LevelStats {
    LevelStats {
        hits: it.next().unwrap(),
        misses: it.next().unwrap(),
        evictions: it.next().unwrap(),
        writebacks: it.next().unwrap(),
        prefetches_issued: it.next().unwrap(),
        prefetch_hits: it.next().unwrap(),
        fill_bytes: it.next().unwrap(),
        writeback_bytes: it.next().unwrap(),
    }
}

impl CorePipeline {
    // ---- sink-side dispatch --------------------------------------------

    /// Whether sink calls should be routed through the recorder.
    pub(crate) fn analytic_live(&self) -> bool {
        self.analytic.as_ref().is_some_and(|a| a.live)
    }

    /// Record one op; executes whatever structured program the recorder
    /// emits (its buffer keeps only a bounded folding frontier).
    pub(crate) fn analytic_push(&mut self, op: TraceOp) {
        let Some(mut an) = self.analytic.take() else {
            return;
        };
        an.recorder.push(op, &mut an.out);
        self.drain_analytic(&mut an);
        self.analytic = Some(an);
    }

    /// Flush and execute everything still buffered (barrier / end of run).
    pub(crate) fn analytic_flush(&mut self) {
        let Some(mut an) = self.analytic.take() else {
            return;
        };
        an.recorder.flush(&mut an.out);
        self.drain_analytic(&mut an);
        self.analytic = Some(an);
    }

    fn drain_analytic(&mut self, an: &mut Analytic) {
        let mut ops = std::mem::take(&mut an.scratch);
        loop {
            std::mem::swap(&mut ops, &mut an.out);
            if ops.is_empty() {
                // A mid-drain disable leaves ops parked in the recorder;
                // spill and execute them too, then stay raw.
                if an.live || an.recorder.is_empty() {
                    break;
                }
                an.recorder.flush(&mut an.out);
                continue;
            }
            for op in &ops {
                self.execute_op(op, 0, an);
            }
            ops.clear();
        }
        an.scratch = ops;
    }

    // ---- IR execution --------------------------------------------------

    /// Execute one op shifted by `delta` bytes, attempting fast-forward
    /// on the loop-shaped nodes.
    fn execute_op(&mut self, op: &TraceOp, delta: i64, an: &mut Analytic) {
        match op {
            TraceOp::Access { addr, size, write } => {
                let a = addr.wrapping_add_signed(delta);
                self.raw_access(if *write {
                    MemAccess::store(a, *size)
                } else {
                    MemAccess::load(a, *size)
                });
            }
            TraceOp::Compute { cost, iters } => self.raw_compute(*cost, *iters),
            TraceOp::Barrier => self.raw_barrier(),
            TraceOp::Range { addr, len, write } => {
                self.exec_range(addr.wrapping_add_signed(delta), *len, *write, an);
            }
            TraceOp::Strided {
                base,
                stride,
                count,
                size,
                write,
            } => self.exec_strided(
                base.wrapping_add_signed(delta),
                *stride,
                *count,
                *size,
                *write,
                false,
                an,
            ),
            TraceOp::StridedRmw {
                base,
                stride,
                count,
                size,
            } => self.exec_strided(
                base.wrapping_add_signed(delta),
                *stride,
                *count,
                *size,
                true,
                true,
                an,
            ),
            TraceOp::Repeat { body, steps, count } => {
                self.exec_repeat(body, steps, *count, delta, an)
            }
            TraceOp::Seq(ops) => {
                for op in ops {
                    self.execute_op(op, delta, an);
                }
            }
        }
    }

    /// Execute one op raw, never attempting fast-forward — the chunk body
    /// of a fast-forward attempt (warm-up chunks must be plain concrete
    /// execution for the isomorphism argument to be about the raw
    /// semantics).
    fn execute_op_raw(&mut self, op: &TraceOp, delta: i64) {
        match op {
            TraceOp::Access { addr, size, write } => {
                let a = addr.wrapping_add_signed(delta);
                self.raw_access(if *write {
                    MemAccess::store(a, *size)
                } else {
                    MemAccess::load(a, *size)
                });
            }
            TraceOp::Compute { cost, iters } => self.raw_compute(*cost, *iters),
            TraceOp::Barrier => self.raw_barrier(),
            TraceOp::Range { addr, len, write } => {
                self.raw_access_range(addr.wrapping_add_signed(delta), *len, *write);
            }
            TraceOp::Strided {
                base,
                stride,
                count,
                size,
                write,
            } => self.raw_access_strided(
                base.wrapping_add_signed(delta),
                *stride,
                *count,
                *size,
                *write,
            ),
            TraceOp::StridedRmw {
                base,
                stride,
                count,
                size,
            } => {
                self.raw_access_strided_rmw(base.wrapping_add_signed(delta), *stride, *count, *size)
            }
            TraceOp::Repeat { body, steps, count } => {
                for i in 0..*count {
                    for (op, step) in body.iter().zip(steps) {
                        self.execute_op_raw(op, delta.wrapping_add(step.wrapping_mul(i as i64)));
                    }
                }
            }
            TraceOp::Seq(ops) => {
                for op in ops {
                    self.execute_op_raw(op, delta);
                }
            }
        }
    }

    fn ff_params(&self) -> FfParams {
        FfParams {
            modulus: modulus_of(
                self.levels
                    .iter()
                    .map(|c| c.config().sets().checked_mul(u64::from(self.line_bytes))),
            ),
            tlb: self.tlb_enabled,
            margin: (prefetch_reach_lines(
                self.prefetchers.iter().flatten().map(Prefetcher::config),
            ) + 1)
                * u64::from(self.line_bytes),
            line_bytes: self.line_bytes,
        }
    }

    fn exec_repeat(
        &mut self,
        body: &[TraceOp],
        steps: &[i64],
        count: u64,
        delta: i64,
        an: &mut Analytic,
    ) {
        let iter_elems = body
            .iter()
            .fold(0u64, |a, op| a.saturating_add(op_elems(op)));
        if let Some(plan) = self.plan_repeat(body, steps, count, delta) {
            let p = plan.p;
            let skipped = self.ff_drive(&plan, |pipe, c| {
                for i in (c * p)..((c + 1) * p) {
                    for (op, step) in body.iter().zip(steps) {
                        pipe.execute_op_raw(op, delta.wrapping_add(step.wrapping_mul(i as i64)));
                    }
                }
            });
            for i in (plan.chunks * p)..count {
                for (op, step) in body.iter().zip(steps) {
                    self.execute_op_raw(op, delta.wrapping_add(step.wrapping_mul(i as i64)));
                }
            }
            if skipped > 0 {
                an.note_success(skipped.saturating_mul(p).saturating_mul(iter_elems));
            } else {
                an.note_fail(iter_elems.saturating_mul(count));
            }
            return;
        }
        // Not plannable as a whole: replay per iteration, giving nested
        // loop-shaped ops their own fast-forward chances (they do their
        // own success/fail accounting).
        for i in 0..count {
            for (op, step) in body.iter().zip(steps) {
                self.execute_op(op, delta.wrapping_add(step.wrapping_mul(i as i64)), an);
            }
        }
    }

    fn plan_repeat(
        &self,
        body: &[TraceOp],
        steps: &[i64],
        count: u64,
        delta: i64,
    ) -> Option<FfPlan> {
        debug_assert!(self.fastpath);
        if body.is_empty() || body.iter().any(|op| matches!(op, TraceOp::Barrier)) {
            return None;
        }
        // Uniform per-iteration shift across address-bearing body ops.
        let mut d: Option<i64> = None;
        for (op, step) in body.iter().zip(steps) {
            if matches!(op, TraceOp::Compute { .. }) {
                continue;
            }
            match d {
                None => d = Some(*step),
                Some(prev) if prev != *step => return None,
                Some(_) => {}
            }
        }
        let d = d?;
        // Absolute footprint over all iterations, in the shifted frame.
        let mut fp: Option<(i128, i128)> = None;
        for (op, step) in body.iter().zip(steps) {
            if let Some((lo, hi)) = op.footprint() {
                let span = i128::from(*step) * i128::from(count - 1);
                let lo = lo + span.min(0) + i128::from(delta);
                let hi = hi + span.max(0) + i128::from(delta);
                fp = Some(match fp {
                    Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                    None => (lo, hi),
                });
            }
        }
        fp?;
        let params = self.ff_params();
        let (p, chunks, chunk_delta, windows) = params.plan_linear(d, count, fp)?;
        let streams = body
            .iter()
            .filter_map(TraceOp::footprint)
            .map(|(lo, hi)| (lo + i128::from(delta), hi + i128::from(delta)))
            .collect();
        Some(FfPlan {
            p,
            chunks,
            chunk_delta,
            map: LineMap {
                windows,
                delta: chunk_delta,
                shift: params.line_shift(),
            },
            streams,
            step: d,
            count,
            margin: params.margin,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_strided(
        &mut self,
        base: u64,
        stride: i64,
        count: u64,
        size: u32,
        write: bool,
        rmw: bool,
        an: &mut Analytic,
    ) {
        let elems = if rmw { count.saturating_mul(2) } else { count };
        if let Some(plan) = self.plan_strided(base, stride, count, size) {
            let p = plan.p;
            let skipped = self.ff_drive(&plan, |pipe, c| {
                let b = strided_addr(base, stride, c * p);
                if rmw {
                    pipe.raw_access_strided_rmw(b, stride, p, size);
                } else {
                    pipe.raw_access_strided(b, stride, p, size, write);
                }
            });
            let done = plan.chunks * p;
            if count > done {
                let b = strided_addr(base, stride, done);
                if rmw {
                    self.raw_access_strided_rmw(b, stride, count - done, size);
                } else {
                    self.raw_access_strided(b, stride, count - done, size, write);
                }
            }
            if skipped > 0 {
                an.note_success(
                    skipped
                        .saturating_mul(p)
                        .saturating_mul(if rmw { 2 } else { 1 }),
                );
            } else {
                an.note_fail(elems);
            }
            return;
        }
        if rmw {
            self.raw_access_strided_rmw(base, stride, count, size);
        } else {
            self.raw_access_strided(base, stride, count, size, write);
        }
        an.note_fail(elems);
    }

    fn plan_strided(&self, base: u64, stride: i64, count: u64, size: u32) -> Option<FfPlan> {
        debug_assert!(self.fastpath);
        if count == 0 {
            return None;
        }
        let span = i128::from(stride) * i128::from(count - 1);
        let fp = (
            i128::from(base) + span.min(0),
            i128::from(base) + span.max(0) + i128::from(size.max(1)),
        );
        let params = self.ff_params();
        let (p, chunks, chunk_delta, windows) = params.plan_linear(stride, count, Some(fp))?;
        Some(FfPlan {
            p,
            chunks,
            chunk_delta,
            map: LineMap {
                windows,
                delta: chunk_delta,
                shift: params.line_shift(),
            },
            streams: vec![(i128::from(base), i128::from(base) + i128::from(size.max(1)))],
            step: stride,
            count,
            margin: params.margin,
        })
    }

    fn exec_range(&mut self, addr: u64, len: u64, write: bool, an: &mut Analytic) {
        let shift = self.line_bytes.trailing_zeros();
        if let Some(plan) = self.plan_range(addr, len) {
            let p = plan.p;
            let first = addr >> shift;
            let end = addr.saturating_add(len);
            let skipped = self.ff_drive(&plan, |pipe, c| {
                let line_lo = first + c * p;
                let start = if c == 0 { addr } else { line_lo << shift };
                let stop = ((line_lo + p) << shift).min(end);
                pipe.raw_access_range(start, stop - start, write);
            });
            let done_line = first + plan.chunks * p;
            if (done_line << shift) < end {
                let start = done_line << shift;
                self.raw_access_range(start, end - start, write);
            }
            if skipped > 0 {
                an.note_success(skipped.saturating_mul(p));
            } else {
                an.note_fail(len.div_ceil(u64::from(self.line_bytes)));
            }
            return;
        }
        self.raw_access_range(addr, len, write);
        an.note_fail(len.div_ceil(u64::from(self.line_bytes)));
    }

    fn plan_range(&self, addr: u64, len: u64) -> Option<FfPlan> {
        debug_assert!(self.fastpath);
        if len == 0 {
            return None;
        }
        let params = self.ff_params();
        let m = params.modulus?;
        let line = u64::from(self.line_bytes);
        let p = m / line; // lines per chunk; chunk shift = M exactly
        let shift = params.line_shift();
        let end = addr.saturating_add(len);
        let lines = ((end - 1) >> shift) - (addr >> shift) + 1;
        let chunks = lines / p;
        if chunks < MIN_CHUNKS || params.tlb {
            return None;
        }
        let chunk_delta = i64::try_from(m).ok()?;
        let lo = i128::from(addr) - i128::from(params.margin);
        let hi = i128::from(end) + i128::from(params.margin);
        if lo < i128::from(ENVELOPE_LO) || hi > i128::from(ENVELOPE_HI) {
            return None;
        }
        Some(FfPlan {
            p,
            chunks,
            chunk_delta,
            map: LineMap {
                windows: vec![(lo as u64, hi as u64)],
                delta: chunk_delta,
                shift,
            },
            // One "iteration" of a range sweep is one line.
            streams: vec![(i128::from(addr), i128::from(addr) + i128::from(line))],
            step: i64::try_from(line).ok()?,
            count: lines,
            margin: params.margin,
        })
    }

    // ---- fast-forward driver -------------------------------------------

    /// Run the plan's chunks, fast-forwarding once a chunk provably maps
    /// the state onto itself. Returns the number of chunks skipped
    /// analytically (0 when every chunk was executed concretely). All
    /// `plan.chunks` chunks are accounted for either way; the caller only
    /// runs the sub-chunk remainder.
    fn ff_drive<F: FnMut(&mut CorePipeline, u64)>(
        &mut self,
        plan: &FfPlan,
        mut run_chunk: F,
    ) -> u64 {
        let total = plan.chunks;
        let mut next = 0u64;
        for &w in &WARMUPS {
            if w + 1 > total || w > total / 4 {
                break;
            }
            while next < w {
                run_chunk(self, next);
                next += 1;
            }
            let base = self.ff_snapshot();
            run_chunk(self, next);
            next += 1;
            let Some(frozen) = self.ff_state_matches(&base, &plan.map) else {
                continue;
            };
            let k = total - next;
            if k == 0 {
                return 0;
            }
            // Frozen levels are only extrapolation-safe when none of
            // their resident lines can be touched (probed, prefetched
            // over, or evicted) by the remaining iterations.
            let forward = plan.forward_windows(next * plan.p);
            let shift = plan.map.shift;
            let lb = i128::from(1u64 << shift);
            let clear = frozen.iter().zip(&self.levels).all(|(&fz, level)| {
                !fz || level.ff_all_lines(|line| {
                    let b = i128::from(line) << shift;
                    forward.iter().all(|&(lo, hi)| b + lb <= lo || b >= hi)
                })
            });
            if !clear {
                continue;
            }
            let total_shift = i128::from(plan.chunk_delta) * i128::from(k);
            let Ok(total_shift) = i64::try_from(total_shift) else {
                break;
            };
            let total_map = LineMap {
                windows: plan.map.windows.clone(),
                delta: total_shift,
                shift: plan.map.shift,
            };
            if self.ff_apply(&base, k, &total_map, &frozen) {
                return k;
            }
            break;
        }
        while next < total {
            run_chunk(self, next);
            next += 1;
        }
        0
    }

    /// The counter vector scaled by fast-forward, in one fixed order
    /// (mirrored exactly by [`CorePipeline::ff_set_counters`]).
    fn ff_counters(&self) -> Vec<u64> {
        let mut v =
            Vec::with_capacity(8 + self.cur.supply_bytes.len() + 8 * (self.levels.len() + 2));
        v.push(self.cur.cycles.issue_subcycles);
        v.push(self.cur.cycles.stall_subcycles);
        v.extend_from_slice(&self.cur.supply_bytes);
        v.extend([
            self.cur.dram.bytes_read,
            self.cur.dram.bytes_written,
            self.cur.dram.reads,
            self.cur.dram.writes,
        ]);
        for c in &self.levels {
            push_level(&mut v, &c.stats());
        }
        push_level(&mut v, &self.dtlb.stats());
        if let Some(l2) = &self.l2tlb {
            push_level(&mut v, &l2.stats());
        }
        v.push(self.strided_batches);
        v
    }

    fn ff_set_counters(&mut self, vals: &[u64]) {
        let mut it = vals.iter().copied();
        self.cur.cycles.issue_subcycles = it.next().unwrap();
        self.cur.cycles.stall_subcycles = it.next().unwrap();
        for b in &mut self.cur.supply_bytes {
            *b = it.next().unwrap();
        }
        self.cur.dram.bytes_read = it.next().unwrap();
        self.cur.dram.bytes_written = it.next().unwrap();
        self.cur.dram.reads = it.next().unwrap();
        self.cur.dram.writes = it.next().unwrap();
        for c in &mut self.levels {
            *c.stats_mut() = read_level(&mut it);
        }
        *self.dtlb.stats_mut() = read_level(&mut it);
        if let Some(l2) = &mut self.l2tlb {
            *l2.stats_mut() = read_level(&mut it);
        }
        self.strided_batches = it.next().unwrap();
        debug_assert!(it.next().is_none());
    }

    // `pred_buf` is pure scratch (cleared on entry to `run_prefetcher`),
    // so snapshots neither capture nor compare it.
    fn ff_snapshot(&self) -> PipeSnapshot {
        PipeSnapshot {
            levels: self.levels.clone(),
            dtlb: self.dtlb.clone(),
            l2tlb: self.l2tlb.clone(),
            prefetchers: self.prefetchers.clone(),
            armed: self.armed,
            walk_memo: self.walk_memo,
            walk_upper_node: self.walk_upper_node,
            counters: self.ff_counters(),
        }
    }

    /// Start of level `k`'s stats block in the [`CorePipeline::ff_counters`]
    /// vector.
    fn ff_level_stats_offset(&self, k: usize) -> usize {
        2 + (self.levels.len() + 1) + 4 + 8 * k
    }

    /// Does the current state equal `base` under the isomorphism `map`?
    ///
    /// Returns `None` on mismatch; on match, one flag per cache level:
    /// `true` marks a **frozen** level — one that did not move under
    /// `map` but is bitwise-identical to `base` with a zero stats delta
    /// across the chunk, i.e. the chunk provably never touched it (every
    /// probe, fill or writeback bumps a stat). A frozen level holds
    /// stale lines at absolute addresses (e.g. an inner level's cold
    /// fills from before the outer prefetcher took over); it stays
    /// untouched under extrapolation *provided* none of its lines can
    /// collide with the op's remaining footprint — the caller checks
    /// that against [`FfPlan::forward_windows`] before applying.
    fn ff_state_matches(&self, base: &PipeSnapshot, map: &LineMap) -> Option<Vec<bool>> {
        let cur_counters = self.ff_counters();
        let mut frozen = vec![false; self.levels.len()];
        for (k, (cur, b)) in self.levels.iter().zip(&base.levels).enumerate() {
            if cur.ff_shift_eq(b, |l| map.line(l)) {
                continue;
            }
            let off = self.ff_level_stats_offset(k);
            let untouched = cur_counters[off..off + 8] == base.counters[off..off + 8];
            if untouched && cur.ff_shift_eq(b, |l| l) {
                frozen[k] = true;
            } else {
                return None;
            }
        }
        if !self.dtlb.ff_eq(&base.dtlb) {
            return None;
        }
        match (&self.l2tlb, &base.l2tlb) {
            (Some(a), Some(b)) if a.ff_eq(b) => {}
            (None, None) => {}
            _ => return None,
        }
        for (cur, b) in self.prefetchers.iter().zip(&base.prefetchers) {
            match (cur, b) {
                // Frozen first: an equal clock proves zero observations
                // across the chunk (every mutator bumps it), so the table
                // is inert — and since observation occurrence at this
                // level is itself determined by the compared upper state,
                // no extrapolated chunk consults it either. `ff_apply`
                // re-detects this and leaves the table at absolute values.
                (Some(a), Some(b)) if a.ff_frozen_eq(b) => {}
                (Some(a), Some(b)) if a.ff_shift_eq(b, |l| map.line(l)) => {}
                (None, None) => {}
                _ => return None,
            }
        }
        // The armed way is NOT compared: it is a representation detail in
        // the same sense as a set's way permutation. The L1 set compare
        // above already proved the armed line exists in both states at
        // the same recency rank (lines are unique within a set), and
        // `self.armed.way` stays self-consistent with the *current*
        // arrays, whose way positions `ff_apply` preserves.
        let armed_ok = match (self.armed, base.armed) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.line == map.line(b.line) && a.set == b.set && a.dirty == b.dirty
            }
            _ => false,
        };
        if armed_ok
            && self.walk_memo == base.walk_memo
            && self.walk_upper_node == base.walk_upper_node
        {
            Some(frozen)
        } else {
            None
        }
    }

    /// Advance counters by `k` times the verified chunk's delta and shift
    /// the resident-line state by the accumulated isomorphism. Counters
    /// are scaled fully (checked) before anything mutates; `false` means
    /// an overflow aborted the fast-forward with the state untouched.
    fn ff_apply(
        &mut self,
        base: &PipeSnapshot,
        k: u64,
        total_map: &LineMap,
        frozen: &[bool],
    ) -> bool {
        let cur = self.ff_counters();
        let mut scaled = Vec::with_capacity(cur.len());
        for (&c, &b) in cur.iter().zip(&base.counters) {
            debug_assert!(c >= b, "per-chunk counters are monotone");
            let Some(v) = (c - b).checked_mul(k).and_then(|d| c.checked_add(d)) else {
                return false;
            };
            scaled.push(v);
        }
        self.ff_set_counters(&scaled);
        if !total_map.is_identity() {
            for (c, &fz) in self.levels.iter_mut().zip(frozen) {
                if !fz {
                    c.ff_shift_lines(|l| total_map.line(l));
                }
            }
            for (p, b) in self.prefetchers.iter_mut().zip(&base.prefetchers) {
                if let (Some(p), Some(b)) = (p, b) {
                    if !p.ff_frozen_eq(b) {
                        p.ff_shift_lines(b, |l| total_map.line(l));
                    }
                }
            }
            if let Some(a) = &mut self.armed {
                a.line = total_map.line(a.line);
            }
        }
        true
    }
}

/// Static fast-forward coverage estimate of a trace program on a device
/// (the `membound-cli trace-ir` metric): how many expanded elements sit
/// in loops that pass the *shape* gates (uniform shift, period, chunk
/// count, envelope). An upper bound — runtime warm-up can still fail
/// (e.g. random replacement or retraining streams) and fall back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Expanded elements inside shape-eligible loops.
    pub eligible_elems: u64,
    /// Total expanded elements of the program.
    pub total_elems: u64,
}

impl Coverage {
    /// Eligible fraction in percent (100.0 for an empty program).
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.total_elems == 0 {
            100.0
        } else {
            self.eligible_elems as f64 / self.total_elems as f64 * 100.0
        }
    }
}

/// Estimate analytic coverage of `program` on `spec` (single-core view).
#[must_use]
pub fn estimate_coverage(spec: &DeviceSpec, program: &[TraceOp]) -> Coverage {
    let params = FfParams::of_spec(spec);
    let mut cov = Coverage::default();
    for op in program {
        let (eligible, total) = coverage_op(&params, op);
        cov.eligible_elems = cov.eligible_elems.saturating_add(eligible);
        cov.total_elems = cov.total_elems.saturating_add(total);
    }
    cov
}

fn coverage_op(params: &FfParams, op: &TraceOp) -> (u64, u64) {
    let total = op_elems(op);
    match op {
        TraceOp::Strided { stride, count, .. } | TraceOp::StridedRmw { stride, count, .. } => {
            let per = total.checked_div(*count).unwrap_or(0);
            match params.plan_linear(*stride, *count, op.footprint()) {
                Some((p, chunks, _, _)) => (chunks * p * per, total),
                None => (0, total),
            }
        }
        TraceOp::Range { len, .. } => {
            let m = params.modulus.unwrap_or(0);
            let line = u64::from(params.line_bytes);
            let eligible = if m > 0 && !params.tlb && *len / m >= MIN_CHUNKS {
                (*len / m) * (m / line)
            } else {
                0
            };
            (eligible, total)
        }
        TraceOp::Repeat { body, steps, count } => {
            let mut d: Option<i64> = None;
            let mut uniform = true;
            for (op, step) in body.iter().zip(steps) {
                if matches!(op, TraceOp::Compute { .. }) {
                    continue;
                }
                match d {
                    None => d = Some(*step),
                    Some(prev) if prev != *step => uniform = false,
                    Some(_) => {}
                }
            }
            if uniform {
                if let Some(d) = d {
                    if let Some((p, chunks, _, _)) = params.plan_linear(d, *count, op.footprint()) {
                        let per_iter = body
                            .iter()
                            .fold(0u64, |a, op| a.saturating_add(op_elems(op)));
                        return (chunks.saturating_mul(p).saturating_mul(per_iter), total);
                    }
                }
            }
            // Whole loop not plannable: nested loops still get chances.
            let (e, t) = body.iter().fold((0u64, 0u64), |(e, t), op| {
                let (ce, ct) = coverage_op(params, op);
                (e.saturating_add(ce), t.saturating_add(ct))
            });
            (
                e.saturating_mul(*count),
                t.saturating_mul(*count).max(total),
            )
        }
        TraceOp::Seq(ops) => ops.iter().fold((0u64, 0u64), |(e, t), op| {
            let (ce, ct) = coverage_op(params, op);
            (e.saturating_add(ce), t.saturating_add(ct))
        }),
        _ => (0, total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::core::CoreConfig;
    use crate::devices::Device;
    use crate::dram::DramConfig;
    use crate::machine::Machine;
    use crate::replacement::ReplacementPolicy;
    use crate::tlb::{PageWalk, TlbConfig};
    use membound_trace::TraceSink;

    /// Two-level test device: L1 4KB/4w/64 (16 sets), L2 64KB/8w/64
    /// (128 sets) — modulus `M = lcm(1024, 8192) = 8192` bytes.
    fn tiny_spec() -> DeviceSpec {
        DeviceSpec {
            name: "tiny".into(),
            isa: "test".into(),
            cores: 1,
            core: CoreConfig::new("test", 1.0, 1, 0, 1.0),
            caches: vec![
                CacheConfig::new("L1", 4096, 4, 64)
                    .policy(ReplacementPolicy::Lru)
                    .latency(4)
                    .bytes_per_cycle(8.0),
                CacheConfig::new("L2", 65536, 8, 64)
                    .latency(12)
                    .bytes_per_cycle(8.0),
            ],
            prefetchers: vec![PrefetcherConfig::c906(), PrefetcherConfig::None],
            dtlb: TlbConfig::fully_associative("DTLB", 16),
            l2tlb: None,
            walk: PageWalk::sv39(),
            dram: DramConfig::new(100, 1.0, 1),
            dram_capacity_bytes: 1 << 30,
            tlb_enabled: false,
        }
    }

    #[test]
    fn gcd_and_period_math() {
        assert_eq!(gcd(8192, 64), 64);
        assert_eq!(gcd(12, 0), 12);
        assert_eq!(gcd(0, 12), 12);
        let m = modulus_of([Some(1024u64), Some(8192)].into_iter()).unwrap();
        assert_eq!(m, 8192);
        assert_eq!(modulus_of([None].into_iter()), None);
        // Non-power-of-two periods compose by lcm.
        assert_eq!(modulus_of([Some(6u64), Some(10)].into_iter()), Some(30));
    }

    #[test]
    fn linemap_shifts_only_inside_windows() {
        let map = LineMap {
            windows: vec![(1 << 22, (1 << 22) + 4096)],
            delta: 128,
            shift: 6,
        };
        let inside = (1u64 << 22) >> 6;
        assert_eq!(map.line(inside), inside + 2);
        let outside = ((1u64 << 22) + 8192) >> 6;
        assert_eq!(map.line(outside), outside);
        // Lines whose byte address overflows u64 are (vacuously) outside.
        assert_eq!(map.line(u64::MAX >> 2), u64::MAX >> 2);
    }

    #[test]
    fn plan_gates_tlb_and_chunk_count() {
        let spec = tiny_spec();
        let p = FfParams::of_spec(&spec);
        // stride 64 over 4096 elements: P = 8192/64 = 128, 32 chunks.
        let fp = Some((i128::from(1u64 << 30), i128::from((1u64 << 30) + 4096 * 64)));
        let (period, chunks, delta, _) = p.plan_linear(64, 4096, fp).unwrap();
        assert_eq!(period, 128);
        assert_eq!(chunks, 32);
        assert_eq!(delta, 8192);
        // Too few chunks.
        assert!(p.plan_linear(64, 512, fp).is_none());
        // Zero stride: identity plan, allowed even with the TLB on.
        let with_tlb = FfParams {
            tlb: true,
            ..FfParams::of_spec(&spec)
        };
        assert!(with_tlb.plan_linear(0, 64, None).is_some());
        assert!(with_tlb.plan_linear(64, 4096, fp).is_none());
    }

    #[test]
    fn envelope_rejects_address_space_extremes() {
        let spec = tiny_spec();
        let p = FfParams::of_spec(&spec);
        // Footprint hugging u64::MAX (the PR-4 `emit_range` clamp
        // pattern): must fall outside the envelope and replay raw.
        let hi_fp = Some((i128::from(u64::MAX - 8 * 4096), i128::from(u64::MAX)));
        assert!(p.plan_linear(8, 4096, hi_fp).is_none());
        // Footprint below the floor likewise.
        let lo_fp = Some((0i128, 4096 * 64));
        assert!(p.plan_linear(64, 4096, lo_fp).is_none());
    }

    #[test]
    fn fast_forward_engages_and_preserves_digest() {
        let spec = tiny_spec();
        let trace = |_tid: u32, sink: &mut CorePipeline| {
            sink.access_strided(1 << 30, 64, 4096, 8, false);
        };
        let analytic = Machine::new(spec.clone())
            .with_analytic(true)
            .simulate(1, trace);
        let replay = Machine::new(spec.clone())
            .with_analytic(false)
            .simulate(1, trace);
        let reference = Machine::new(spec)
            .with_analytic(false)
            .without_fastpath()
            .simulate(1, trace);
        assert!(
            analytic.analytic_ops > 0,
            "steady sweep must fast-forward: {analytic:?}"
        );
        assert_eq!(replay.analytic_ops, 0);
        assert_eq!(analytic.stats_digest(), replay.stats_digest());
        assert_eq!(analytic.stats_digest(), reference.stats_digest());
    }

    #[test]
    fn ops_near_address_space_top_fall_back_bit_exactly() {
        // Satellite of the PR-4 end-of-address-space clamps: the analytic
        // path must reject (envelope) and replay identically to the
        // non-analytic machine right up against u64::MAX.
        let spec = tiny_spec();
        let base = u64::MAX - 64 * 4096;
        let trace = |_tid: u32, sink: &mut CorePipeline| {
            sink.access_strided(base, 64, 4096, 8, false);
            sink.access_range(u64::MAX - 8, u64::MAX, false);
        };
        let analytic = Machine::new(spec.clone())
            .with_analytic(true)
            .simulate(1, trace);
        let replay = Machine::new(spec).with_analytic(false).simulate(1, trace);
        assert_eq!(analytic.analytic_ops, 0, "envelope must reject");
        assert!(analytic.replay_fallback_ops > 0);
        assert_eq!(analytic.stats_digest(), replay.stats_digest());
    }

    #[test]
    fn random_replacement_falls_back_honestly() {
        // U74-style random replacement advances its RNG per eviction; the
        // exact RNG compare must fail and force concrete replay.
        let mut spec = tiny_spec();
        spec.caches[0] = CacheConfig::new("L1", 4096, 4, 64)
            .policy(ReplacementPolicy::Random)
            .latency(4)
            .bytes_per_cycle(8.0);
        let trace = |_tid: u32, sink: &mut CorePipeline| {
            sink.access_strided(1 << 30, 64, 1 << 14, 8, false);
        };
        let analytic = Machine::new(spec.clone())
            .with_analytic(true)
            .simulate(1, trace);
        let replay = Machine::new(spec).with_analytic(false).simulate(1, trace);
        assert_eq!(
            analytic.analytic_ops, 0,
            "random replacement must never fast-forward"
        );
        assert_eq!(analytic.stats_digest(), replay.stats_digest());
    }

    #[test]
    fn repeat_fast_forward_matches_replay() {
        // A recorded Repeat (triad-like multi-op body, uniform step)
        // through the full sink dispatch: per-element loads fold into a
        // Repeat in the recorder and fast-forward from there.
        // P = 8192/8 = 1024 iterations per chunk; 256 chunks gives the
        // warm-up room (up to 32 chunks) for L2's cold fills to age out
        // of their sets so the state goes fully periodic.
        let spec = tiny_spec();
        let trace = |_tid: u32, sink: &mut CorePipeline| {
            for i in 0..(1u64 << 18) {
                sink.load((1 << 30) + i * 8, 8);
                sink.load((1 << 31) + i * 8, 8);
                sink.store((3 << 30) + i * 8, 8);
            }
        };
        let analytic = Machine::new(spec.clone())
            .with_analytic(true)
            .simulate(1, trace);
        let replay = Machine::new(spec.clone())
            .with_analytic(false)
            .simulate(1, trace);
        let reference = Machine::new(spec)
            .with_analytic(false)
            .without_fastpath()
            .simulate(1, trace);
        assert!(
            analytic.analytic_ops > 0,
            "triad must fast-forward: {analytic:?}"
        );
        assert_eq!(analytic.stats_digest(), replay.stats_digest());
        assert_eq!(analytic.stats_digest(), reference.stats_digest());
    }

    #[test]
    fn xeon_blocked_triad_fast_forwards() {
        // Three-level hierarchy with an L2 prefetcher that goes cold
        // after startup (the L1 prefetcher absorbs all demand): exercises
        // the frozen-prefetcher acceptance alongside the streaming L3.
        let spec = Device::IntelXeon4310T.spec().without_tlb();
        let n = 1u64 << 25;
        let trace = move |_tid: u32, sink: &mut CorePipeline| {
            let mut i = 0;
            while i < n {
                let hi = (i + 1024).min(n);
                let bytes = (hi - i) * 8;
                sink.load_range((1 << 41) + i * 8, bytes);
                sink.load_range((1 << 42) + i * 8, bytes);
                sink.store_range((3 << 41) + i * 8, bytes);
                i = hi;
            }
        };
        let analytic = Machine::new(spec.clone())
            .with_analytic(true)
            .simulate(1, trace);
        let replay = Machine::new(spec).with_analytic(false).simulate(1, trace);
        assert!(analytic.analytic_ops > 0, "{analytic:?}");
        assert_eq!(analytic.stats_digest(), replay.stats_digest());
    }

    #[test]
    fn tlb_on_devices_stay_digest_identical() {
        // Mango Pi (TLB on): nonzero-shift loops are rejected by the
        // translation gate, so everything replays; digests must match
        // with zero analytic coverage and the disable kicking in.
        let spec = Device::MangoPiMqPro.spec();
        let trace = |_tid: u32, sink: &mut CorePipeline| {
            for row in 0..64u64 {
                sink.access_strided((1 << 30) + row * 8192, 8, 1024, 8, false);
            }
        };
        let analytic = Machine::new(spec.clone())
            .with_analytic(true)
            .simulate(1, trace);
        let replay = Machine::new(spec).with_analytic(false).simulate(1, trace);
        assert_eq!(analytic.analytic_ops, 0);
        assert_eq!(analytic.stats_digest(), replay.stats_digest());
    }

    #[test]
    fn coverage_estimator_matches_gates() {
        let spec = tiny_spec();
        let program = vec![
            TraceOp::Strided {
                base: 1 << 30,
                stride: 64,
                count: 4096,
                size: 8,
                write: false,
            },
            TraceOp::Access {
                addr: 1 << 30,
                size: 8,
                write: false,
            },
        ];
        let cov = estimate_coverage(&spec, &program);
        assert_eq!(cov.total_elems, 4097);
        assert_eq!(cov.eligible_elems, 4096);
        assert!(cov.percent() > 99.9);
        // The TLB gate zeroes nonzero-stride eligibility.
        let mut tlb_spec = tiny_spec();
        tlb_spec.tlb_enabled = true;
        let cov = estimate_coverage(&tlb_spec, &program);
        assert_eq!(cov.eligible_elems, 0);
    }

    #[test]
    fn analytic_env_default_parsing() {
        // `analytic_default` honours the override in both directions.
        crate::machine::set_analytic_override(Some(false));
        assert!(!crate::machine::analytic_default());
        crate::machine::set_analytic_override(Some(true));
        assert!(crate::machine::analytic_default());
        crate::machine::set_analytic_override(None);
    }
}
