//! The per-core memory pipeline: TLBs → caches → DRAM.
//!
//! [`CorePipeline`] implements [`TraceSink`]: kernels (or recorded
//! [`membound_trace::TraceBuffer`]s) stream references into it and it
//! charges each one against the device model, accumulating cycle and
//! traffic accounting per *phase* (the stretches between barriers).

use crate::cache::{Cache, CacheConfig};
use crate::core::CoreConfig;
use crate::dram::DramConfig;
use crate::prefetch::{Prefetcher, PrefetcherConfig};
use crate::stats::{CycleBreakdown, DramStats, LevelStats};
use crate::tlb::{PageWalk, Tlb, TlbConfig};
use membound_trace::{IterCost, MemAccess, TraceSink};
use serde::{Deserialize, Serialize};

/// Traffic and cycle accounting for one phase (between barriers) on one
/// core.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseAccum {
    /// Issue + stall cycles of this core during the phase.
    pub cycles: CycleBreakdown,
    /// `supply_bytes[j]` = bytes moved over the bus *supplied by* cache
    /// level `j` (fills downward and writebacks upward both occupy it).
    /// Index 0 is unused (the L1→core path is modelled as issue slots);
    /// the last index (`levels`) is the DRAM bus.
    pub supply_bytes: Vec<u64>,
    /// DRAM byte counters for this phase.
    pub dram: DramStats,
}

impl PhaseAccum {
    pub(crate) fn new(levels: usize) -> Self {
        Self {
            cycles: CycleBreakdown::default(),
            supply_bytes: vec![0; levels + 1],
            dram: DramStats::default(),
        }
    }

    /// Whether nothing was recorded in this phase.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.total() == 0.0 && self.supply_bytes.iter().all(|&b| b == 0)
    }
}

/// One simulated core plus its private slice of the memory hierarchy.
///
/// Created by [`crate::Machine::simulate`]; owns per-core instances of every
/// cache level (shared levels arrive capacity-partitioned), the TLBs and
/// the prefetchers.
///
/// # Example
///
/// ```
/// use membound_sim::{Device, Machine};
/// use membound_trace::TraceSink;
///
/// let machine = Machine::new(Device::MangoPiMqPro.spec());
/// let report = machine.simulate(1, |_tid, sink| {
///     for i in 0..1024u64 {
///         sink.load(i * 8, 8);
///     }
/// });
/// assert!(report.seconds > 0.0);
/// ```
#[derive(Debug)]
pub struct CorePipeline {
    core: CoreConfig,
    dtlb: Tlb,
    l2tlb: Option<Tlb>,
    walk: PageWalk,
    levels: Vec<Cache>,
    prefetchers: Vec<Option<Prefetcher>>,
    dram: DramConfig,
    line_bytes: u32,
    cur: PhaseAccum,
    done: Vec<PhaseAccum>,
    pred_buf: Vec<u64>,
    tlb_enabled: bool,
}

/// Everything needed to build one core's pipeline.
#[derive(Debug, Clone)]
pub(crate) struct PipelineConfig {
    pub core: CoreConfig,
    pub caches: Vec<CacheConfig>,
    pub prefetchers: Vec<PrefetcherConfig>,
    pub dtlb: TlbConfig,
    pub l2tlb: Option<TlbConfig>,
    pub walk: PageWalk,
    pub dram: DramConfig,
    pub tlb_enabled: bool,
}

impl CorePipeline {
    pub(crate) fn new(cfg: PipelineConfig) -> Self {
        assert!(!cfg.caches.is_empty(), "need at least an L1 cache");
        assert_eq!(
            cfg.caches.len(),
            cfg.prefetchers.len(),
            "one prefetcher slot per cache level"
        );
        let line_bytes = cfg.caches[0].line_bytes;
        assert!(
            cfg.caches.iter().all(|c| c.line_bytes == line_bytes),
            "all levels must share one line size in this model"
        );
        let n = cfg.caches.len();
        Self {
            core: cfg.core,
            dtlb: Tlb::new(cfg.dtlb),
            l2tlb: cfg.l2tlb.map(Tlb::new),
            walk: cfg.walk,
            levels: cfg.caches.into_iter().map(Cache::new).collect(),
            prefetchers: cfg
                .prefetchers
                .into_iter()
                .map(|p| match p {
                    PrefetcherConfig::None => None,
                    other => Some(Prefetcher::new(other)),
                })
                .collect(),
            dram: cfg.dram,
            line_bytes,
            cur: PhaseAccum::new(n),
            done: Vec::new(),
            pred_buf: Vec::new(),
            tlb_enabled: cfg.tlb_enabled,
        }
    }

    /// The core model driving this pipeline.
    #[must_use]
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// Per-level cache statistics (L1 first).
    #[must_use]
    pub fn cache_stats(&self) -> Vec<LevelStats> {
        self.levels.iter().map(Cache::stats).collect()
    }

    /// First-level TLB statistics.
    #[must_use]
    pub fn dtlb_stats(&self) -> LevelStats {
        self.dtlb.stats()
    }

    /// Second-level TLB statistics, if the device has one.
    #[must_use]
    pub fn l2tlb_stats(&self) -> Option<LevelStats> {
        self.l2tlb.as_ref().map(Tlb::stats)
    }

    /// Finish the current phase and return all per-phase accounting.
    pub(crate) fn finish(mut self) -> CoreOutcome {
        self.flush_phase();
        CoreOutcome {
            phases: self.done,
            cache_stats: self.levels.iter().map(Cache::stats).collect(),
            dtlb_stats: self.dtlb.stats(),
            l2tlb_stats: self.l2tlb.as_ref().map(Tlb::stats),
        }
    }

    fn flush_phase(&mut self) {
        let n = self.levels.len();
        let cur = std::mem::replace(&mut self.cur, PhaseAccum::new(n));
        self.done.push(cur);
    }

    /// Translate one probe's page; charges TLB latencies and page-walk
    /// references. Returns `true` when a full page walk was needed — the
    /// caller then charges the subsequent data miss *unoverlapped*,
    /// because the data address is not known until the walk completes, so
    /// memory-level parallelism cannot hide it.
    fn translate(&mut self, addr: u64) -> bool {
        if !self.tlb_enabled {
            return false;
        }
        let vpn = self.dtlb.vpn_of(addr);
        if self.dtlb.lookup(vpn) {
            return false;
        }
        if let Some(l2) = self.l2tlb.as_mut() {
            let latency = l2.config().latency_cycles;
            if l2.lookup(vpn) {
                self.cur.cycles.stall_cycles += f64::from(latency);
                self.dtlb.fill(vpn);
                return false;
            }
        }
        // Full walk: fixed overhead plus PTE loads replayed through the
        // data caches (no prefetcher training on page-table addresses).
        self.cur.cycles.stall_cycles += f64::from(self.walk.overhead_cycles);
        for pte in self.walk.pte_addresses(vpn) {
            let line = pte >> self.line_bytes.trailing_zeros();
            self.demand_line(line, false, false, false);
        }
        if let Some(l2) = self.l2tlb.as_mut() {
            l2.fill(vpn);
        }
        self.dtlb.fill(vpn);
        true
    }

    /// Charge one line-granular demand reference.
    ///
    /// `train_prefetch` is false for page-walk side traffic. `serialize`
    /// charges the full miss latency instead of the MLP-overlapped share
    /// (set after a page walk, which the data access depends on).
    fn demand_line(&mut self, line: u64, is_write: bool, train_prefetch: bool, serialize: bool) {
        let n = self.levels.len();
        // Probe levels outward until a hit.
        let mut found: Option<usize> = None;
        for k in 0..n {
            let res = self.levels[k].access(line, is_write && k == 0);
            if res.hit {
                found = Some(k);
                break;
            }
        }

        let exposed = |core: &CoreConfig, lat: u32| {
            if serialize {
                f64::from(lat)
            } else {
                core.exposed_latency(lat)
            }
        };
        match found {
            Some(0) => {} // L1 hit: pipelined, no extra stall.
            Some(k) => {
                let lat = self.levels[k].config().latency_cycles;
                self.cur.cycles.stall_cycles += exposed(&self.core, lat);
                // Line moves across each bus from level k down to L1.
                for j in 1..=k {
                    self.cur.supply_bytes[j] += u64::from(self.line_bytes);
                }
                self.fill_levels(line, k, is_write);
            }
            None => {
                self.cur.cycles.stall_cycles += exposed(&self.core, self.dram.latency_cycles);
                for j in 1..=n {
                    self.cur.supply_bytes[j] += u64::from(self.line_bytes);
                }
                self.cur.dram.bytes_read += u64::from(self.line_bytes);
                self.cur.dram.reads += 1;
                self.fill_levels(line, n, is_write);
            }
        }

        // Train prefetchers: level k's prefetcher sees the references that
        // reach level k (i.e. misses of every level above it).
        if train_prefetch {
            let deepest = found.unwrap_or(n);
            for k in 0..n.min(deepest + 1) {
                if self.prefetchers[k].is_some() {
                    self.run_prefetcher(k, line);
                }
            }
        }
    }

    /// Fill `line` into levels `0..upto` (it was found at `upto`, or DRAM
    /// when `upto == levels.len()`), handling dirty-victim writebacks.
    fn fill_levels(&mut self, line: u64, upto: usize, is_write: bool) {
        for j in (0..upto).rev() {
            // Only the L1 copy is dirtied by a store; lower copies stay clean.
            let dirty = is_write && j == 0;
            if let Some(victim) = self.levels[j].fill(line, dirty, false) {
                self.writeback(victim, j);
            }
        }
    }

    /// Write a dirty victim evicted from level `j` into level `j + 1`
    /// (or DRAM), cascading if the insertion evicts another dirty line.
    fn writeback(&mut self, mut victim: u64, mut from_level: usize) {
        let n = self.levels.len();
        loop {
            let next = from_level + 1;
            self.cur.supply_bytes[next] += u64::from(self.line_bytes);
            if next == n {
                self.cur.dram.bytes_written += u64::from(self.line_bytes);
                self.cur.dram.writes += 1;
                return;
            }
            match self.levels[next].fill(victim, true, false) {
                Some(v2) => {
                    victim = v2;
                    from_level = next;
                }
                None => return,
            }
        }
    }

    /// Let level `k`'s prefetcher observe `line` and perform its fills.
    fn run_prefetcher(&mut self, k: usize, line: u64) {
        let mut preds = std::mem::take(&mut self.pred_buf);
        preds.clear();
        if let Some(pf) = self.prefetchers[k].as_mut() {
            pf.observe(line, &mut preds);
        }
        let n = self.levels.len();
        for &p in &preds {
            if self.levels[k].contains(p) {
                continue;
            }
            // Find the closest level below k that already holds the line.
            let mut source = n; // DRAM by default
            for j in (k + 1)..n {
                if self.levels[j].contains(p) {
                    source = j;
                    break;
                }
            }
            // The line crosses every bus between the source and level k.
            for j in (k + 1)..=source {
                self.cur.supply_bytes[j] += u64::from(self.line_bytes);
            }
            if source == n {
                self.cur.dram.bytes_read += u64::from(self.line_bytes);
                self.cur.dram.reads += 1;
            }
            if let Some(victim) = self.levels[k].fill(p, false, true) {
                self.writeback(victim, k);
            }
        }
        self.pred_buf = preds;
    }
}

impl TraceSink for CorePipeline {
    fn access(&mut self, access: MemAccess) {
        let line_size = u64::from(self.line_bytes);
        for line in access.lines(line_size) {
            let walked = self.translate(line << self.line_bytes.trailing_zeros());
            self.demand_line(line, access.kind.is_write(), true, walked);
        }
    }

    fn compute(&mut self, cost: IterCost, iters: u64) {
        self.cur.cycles.issue_cycles += self.core.issue_cycles(&cost, iters);
    }

    fn barrier(&mut self) {
        self.flush_phase();
    }
}

/// Everything a finished core run hands back to the machine.
#[derive(Debug, Clone)]
pub(crate) struct CoreOutcome {
    pub phases: Vec<PhaseAccum>,
    pub cache_stats: Vec<LevelStats>,
    pub dtlb_stats: LevelStats,
    pub l2tlb_stats: Option<LevelStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    fn test_pipeline(prefetch: PrefetcherConfig) -> CorePipeline {
        CorePipeline::new(PipelineConfig {
            core: CoreConfig::new("test", 1.0, 1, 0, 1.0),
            caches: vec![
                CacheConfig::new("L1", 4096, 4, 64)
                    .policy(ReplacementPolicy::Lru)
                    .latency(4)
                    .bytes_per_cycle(8.0),
                CacheConfig::new("L2", 65536, 8, 64)
                    .latency(12)
                    .bytes_per_cycle(8.0),
            ],
            prefetchers: vec![prefetch, PrefetcherConfig::None],
            dtlb: TlbConfig::fully_associative("DTLB", 16),
            l2tlb: Some(TlbConfig::direct_mapped("L2TLB", 64).latency(10)),
            walk: PageWalk::sv39(),
            dram: DramConfig::new(100, 1.0, 1),
            tlb_enabled: false,
        })
    }

    #[test]
    fn cold_miss_reaches_dram_then_hits() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8);
        assert_eq!(p.cur.dram.bytes_read, 64);
        let stall_after_miss = p.cur.cycles.stall_cycles;
        assert!((stall_after_miss - 100.0).abs() < 1e-9);
        p.load(8, 8); // same line: L1 hit
        assert!((p.cur.cycles.stall_cycles - stall_after_miss).abs() < 1e-9);
        assert_eq!(p.cache_stats()[0].hits, 1);
    }

    #[test]
    fn l2_hit_charges_l2_latency_and_bus() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        // Fill L1 set 0 with conflicting lines; L1 is 4KB/4w/64B = 16 sets.
        // Lines 0, 16, 32, 48, 64 map to set 0.
        for l in [0u64, 16, 32, 48, 64] {
            p.load(l * 64, 8);
        }
        // Line 0 evicted from L1 (LRU) but still in L2.
        let before = p.cur.cycles.stall_cycles;
        let dram_before = p.cur.dram.bytes_read;
        p.load(0, 8);
        assert_eq!(
            p.cur.dram.bytes_read, dram_before,
            "L2 hit: no DRAM traffic"
        );
        assert!((p.cur.cycles.stall_cycles - before - 12.0).abs() < 1e-9);
    }

    #[test]
    fn store_miss_allocates_and_writeback_happens_on_eviction() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.store(0, 8); // write-allocate: DRAM read
        assert_eq!(p.cur.dram.bytes_read, 64);
        assert_eq!(p.cur.dram.bytes_written, 0);
        // Evict line 0 from L1 via conflicting fills, then out of L2 too.
        // L2 is 64KB/8w/64B = 128 sets; lines k*128 map to L2 set 0 (and to
        // L1 set 0). The L1 eviction writes line 0 back into L2 (refreshing
        // its recency there), so it takes a dozen more conflicting fills to
        // push the dirty copy out of the 8-way L2 set and into DRAM.
        for i in 1..=20u64 {
            p.load(i * 128 * 64, 8);
        }
        assert_eq!(
            p.cur.dram.bytes_written, 64,
            "dirty line must be written back to DRAM eventually"
        );
    }

    #[test]
    fn sequential_sweep_with_prefetch_mostly_prefetch_hits() {
        let mut p = test_pipeline(PrefetcherConfig::c906());
        for i in 0..256u64 {
            p.load(i * 64, 8);
        }
        let l1 = p.cache_stats()[0];
        assert!(
            l1.prefetch_hits > 200,
            "sequential sweep should be covered by prefetch: {l1:?}"
        );
    }

    #[test]
    fn prefetch_consumes_dram_bandwidth() {
        let mut with = test_pipeline(PrefetcherConfig::c906());
        let mut without = test_pipeline(PrefetcherConfig::None);
        // A short sweep, abandoned: prefetcher overfetches past the end.
        for i in 0..8u64 {
            with.load(i * 64, 8);
            without.load(i * 64, 8);
        }
        assert!(
            with.cur.dram.bytes_read >= without.cur.dram.bytes_read,
            "prefetching must not reduce DRAM reads on a cold sweep"
        );
    }

    #[test]
    fn stall_reduced_by_prefetching_on_long_sweep() {
        let mut with = test_pipeline(PrefetcherConfig::c906());
        let mut without = test_pipeline(PrefetcherConfig::None);
        for i in 0..512u64 {
            with.load(i * 64, 8);
            without.load(i * 64, 8);
        }
        assert!(
            with.cur.cycles.stall_cycles < without.cur.cycles.stall_cycles * 0.5,
            "prefetch should hide most DRAM latency: {} vs {}",
            with.cur.cycles.stall_cycles,
            without.cur.cycles.stall_cycles
        );
    }

    #[test]
    fn barrier_splits_phases() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8);
        p.barrier();
        p.load(4096, 8);
        let out = p.finish();
        assert_eq!(out.phases.len(), 2);
        assert!(out.phases.iter().all(|ph| ph.dram.bytes_read == 64));
    }

    #[test]
    fn compute_charges_issue_cycles() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.compute(IterCost::new(2, 1).mem(1, 0), 100);
        assert!((p.cur.cycles.issue_cycles - 400.0).abs() < 1e-9);
    }

    #[test]
    fn tlb_walk_charged_when_enabled() {
        let mut cfg_pipeline = test_pipeline(PrefetcherConfig::None);
        cfg_pipeline.tlb_enabled = true;
        // Touch many distinct pages: DTLB (16) and L2 TLB (64) overflow.
        for page in 0..256u64 {
            cfg_pipeline.load(page * 4096, 8);
        }
        let d = cfg_pipeline.dtlb_stats();
        assert_eq!(d.accesses(), 256);
        assert!(d.misses >= 256, "every new page misses the DTLB");
        let l2 = cfg_pipeline.l2tlb_stats().expect("has L2 TLB");
        assert!(l2.misses > 0);
        // Walk PTE loads show up as extra cache traffic.
        assert!(cfg_pipeline.cache_stats()[0].accesses() > 256);
    }

    #[test]
    fn page_walks_serialize_the_dependent_miss() {
        // With TLB simulation on, a page-crossing strided walk pays the
        // *full* DRAM latency per miss (the data address depends on the
        // walk); with it off, MLP overlaps part of it. The enabled run
        // must therefore stall strictly more per access.
        let mut with_tlb = test_pipeline(PrefetcherConfig::None);
        with_tlb.tlb_enabled = true;
        let mut without_tlb = test_pipeline(PrefetcherConfig::None);
        for i in 0..512u64 {
            with_tlb.load(i * 8192, 8);
            without_tlb.load(i * 8192, 8);
        }
        // The test core has mlp 1.0, so serialization alone changes
        // nothing — but walk overhead and PTE loads must show up.
        assert!(
            with_tlb.cur.cycles.stall_cycles > without_tlb.cur.cycles.stall_cycles,
            "walks must cost cycles: {} vs {}",
            with_tlb.cur.cycles.stall_cycles,
            without_tlb.cur.cycles.stall_cycles
        );
        // And with an overlapping core, the serialized path still pays
        // full latency per walked miss.
        let mut mlp_core = test_pipeline(PrefetcherConfig::None);
        mlp_core.core = CoreConfig::new("ooo", 1.0, 4, 0, 8.0);
        mlp_core.tlb_enabled = true;
        mlp_core.load(1 << 30, 8); // fresh page: walk + serialized miss
        assert!(
            mlp_core.cur.cycles.stall_cycles >= 100.0,
            "serialized DRAM miss must not be divided by MLP: {}",
            mlp_core.cur.cycles.stall_cycles
        );
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(60, 8); // crosses line 0 into line 1
        assert_eq!(p.cur.dram.reads, 2);
    }

    #[test]
    fn supply_bytes_accumulate_per_bus() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8); // miss to DRAM: both buses + DRAM
        assert_eq!(p.cur.supply_bytes[1], 64, "L2->L1 bus");
        assert_eq!(p.cur.supply_bytes[2], 64, "DRAM bus");
    }
}
