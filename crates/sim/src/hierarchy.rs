//! The per-core memory pipeline: TLBs → caches → DRAM.
//!
//! [`CorePipeline`] implements [`TraceSink`]: kernels (or recorded
//! [`membound_trace::TraceBuffer`]s) stream references into it and it
//! charges each one against the device model, accumulating cycle and
//! traffic accounting per *phase* (the stretches between barriers).

use crate::analytic::Analytic;
use crate::assoc::Reserved;
use crate::cache::{Cache, CacheConfig};
use crate::core::CoreConfig;
use crate::dram::DramConfig;
use crate::prefetch::{Prefetcher, PrefetcherConfig};
use crate::stats::{CycleBreakdown, DramStats, LevelStats, SUBCYCLE_SHIFT};
use crate::tlb::{PageWalk, Tlb, TlbConfig};
use membound_trace::{strided_addr, IterCost, MemAccess, TraceOp, TraceSink};
use serde::{Deserialize, Serialize};

/// Upper bound on modelled cache levels (real devices have 2-3); sized
/// so per-access fill-slot bookkeeping can live on the stack.
pub(crate) const MAX_LEVELS: usize = 4;

/// Upper bound on memoized page-walk radix levels (Sv39 walks 3).
pub(crate) const MAX_WALK_LEVELS: usize = 4;

/// Traffic and cycle accounting for one phase (between barriers) on one
/// core.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseAccum {
    /// Issue + stall cycles of this core during the phase.
    pub cycles: CycleBreakdown,
    /// `supply_bytes[j]` = bytes moved over the bus *supplied by* cache
    /// level `j` (fills downward and writebacks upward both occupy it).
    /// Index 0 is unused (the L1→core path is modelled as issue slots);
    /// the last index (`levels`) is the DRAM bus.
    pub supply_bytes: Vec<u64>,
    /// DRAM byte counters for this phase.
    pub dram: DramStats,
    /// Per-channel DRAM bytes, populated only when the device's
    /// [`DramConfig::contended`] channel model is on (empty otherwise —
    /// the aggregate `dram` counters then fully describe the traffic).
    /// Lines interleave over channels by line address, so the entries
    /// always sum to `dram.bytes_total()`.
    #[serde(default)]
    pub channel_bytes: Vec<u64>,
}

impl PhaseAccum {
    pub(crate) fn new(levels: usize) -> Self {
        Self::with_channels(levels, 0)
    }

    /// An accumulator with `channels` per-channel DRAM byte slots
    /// (0 = channel contention off).
    pub(crate) fn with_channels(levels: usize, channels: u32) -> Self {
        Self {
            cycles: CycleBreakdown::default(),
            supply_bytes: vec![0; levels + 1],
            dram: DramStats::default(),
            channel_bytes: vec![0; channels as usize],
        }
    }

    /// Whether nothing was recorded in this phase.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.total_subcycles() == 0 && self.supply_bytes.iter().all(|&b| b == 0)
    }
}

/// One simulated core plus its private slice of the memory hierarchy.
///
/// Created by [`crate::Machine::simulate`]; owns per-core instances of every
/// cache level (shared levels arrive capacity-partitioned), the TLBs and
/// the prefetchers.
///
/// # Example
///
/// ```
/// use membound_sim::{Device, Machine};
/// use membound_trace::TraceSink;
///
/// let machine = Machine::new(Device::MangoPiMqPro.spec());
/// let report = machine.simulate(1, |_tid, sink| {
///     for i in 0..1024u64 {
///         sink.load(i * 8, 8);
///     }
/// });
/// assert!(report.seconds > 0.0);
/// ```
#[derive(Debug)]
pub struct CorePipeline {
    pub(crate) core: CoreConfig,
    pub(crate) dtlb: Tlb,
    pub(crate) l2tlb: Option<Tlb>,
    pub(crate) walk: PageWalk,
    pub(crate) levels: Vec<Cache>,
    pub(crate) prefetchers: Vec<Option<Prefetcher>>,
    pub(crate) line_bytes: u32,
    /// Channel count of the contended DRAM model, 0 when the device uses
    /// the aggregate model (every paper board). Non-zero routes each
    /// DRAM line transfer into `cur.channel_bytes[line % channels]`.
    pub(crate) dram_channels: u32,
    /// `exposed_subcycles` of each cache level (then DRAM at index
    /// `levels.len()`), precomputed once: the MLP division is quantized
    /// to an integer subcycle constant here and nowhere else, so the
    /// per-miss stall adds in `demand_line` are exact integer
    /// accumulation. A stack array (not a `Vec`) so the per-miss lookup
    /// is a direct indexed load.
    pub(crate) exposed: [u64; MAX_LEVELS + 1],
    /// Full (serialized) latency of each cache level then DRAM, in
    /// subcycles — charged when a miss depends on a just-finished page
    /// walk and MLP cannot overlap it.
    pub(crate) full_latency: [u64; MAX_LEVELS + 1],
    pub(crate) cur: PhaseAccum,
    pub(crate) done: Vec<PhaseAccum>,
    pub(crate) pred_buf: Vec<u64>,
    pub(crate) tlb_enabled: bool,
    pub(crate) fastpath: bool,
    pub(crate) armed: Option<ArmedLine>,
    /// Constant-stride batches received through
    /// [`TraceSink::access_strided`] / [`TraceSink::access_strided_rmw`]
    /// — a digest-excluded diagnostic surfaced through
    /// [`crate::SimReport`].
    pub(crate) strided_batches: u64,
    /// Per radix level, where the previous page walk's PTE line sat in L1
    /// (`(line, set, way)`). Consecutive walks of nearby pages share their
    /// upper-level PTE lines, so most re-probes replay as direct hits; the
    /// slot is re-validated against the live L1 state before every use.
    pub(crate) walk_memo: [Option<(u64, usize, u32)>; MAX_WALK_LEVELS],
    /// `vpn >> 9` of the previous page walk. Every *non-leaf* PTE address
    /// depends on the VPN only through these bits (each level consumes 9
    /// index bits and the leaf level is the only one reading the low 9),
    /// so while they are unchanged the memoized upper-level lines are
    /// this walk's lines too and `PageWalk::pte_address` need not be
    /// recomputed for them.
    pub(crate) walk_upper_node: Option<u64>,
    /// The analytic executor (recorder + fast-forward engine), present
    /// when the machine runs with analytic execution enabled. `None`
    /// means every sink call takes the raw per-element path directly.
    pub(crate) analytic: Option<Box<Analytic>>,
}

/// The repeat-line fast path's memory of the last data line referenced:
/// where it sits in L1, so an immediately following touch of the same
/// line replays as a handful of direct state updates instead of a full
/// translate + multi-level probe (see `CorePipeline::replay_repeat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArmedLine {
    /// L1 line address of the access.
    pub(crate) line: u64,
    /// L1 set holding it.
    pub(crate) set: usize,
    /// L1 way holding it.
    pub(crate) way: u32,
    /// Whether the line is already dirty (a repeat store then skips the
    /// redundant flag write).
    pub(crate) dirty: bool,
}

/// Everything needed to build one core's pipeline.
#[derive(Debug, Clone)]
pub(crate) struct PipelineConfig {
    pub core: CoreConfig,
    pub caches: Vec<CacheConfig>,
    pub prefetchers: Vec<PrefetcherConfig>,
    pub dtlb: TlbConfig,
    pub l2tlb: Option<TlbConfig>,
    pub walk: PageWalk,
    pub dram: DramConfig,
    pub tlb_enabled: bool,
    pub fastpath: bool,
    pub analytic: bool,
}

impl CorePipeline {
    pub(crate) fn new(cfg: PipelineConfig) -> Self {
        assert!(!cfg.caches.is_empty(), "need at least an L1 cache");
        assert!(
            cfg.caches.len() <= MAX_LEVELS,
            "at most {MAX_LEVELS} cache levels supported"
        );
        assert_eq!(
            cfg.caches.len(),
            cfg.prefetchers.len(),
            "one prefetcher slot per cache level"
        );
        let line_bytes = cfg.caches[0].line_bytes;
        assert!(
            cfg.caches.iter().all(|c| c.line_bytes == line_bytes),
            "all levels must share one line size in this model"
        );
        let n = cfg.caches.len();
        let mut exposed = [0u64; MAX_LEVELS + 1];
        let mut full_latency = [0u64; MAX_LEVELS + 1];
        for (k, c) in cfg.caches.iter().enumerate() {
            exposed[k] = cfg.core.exposed_subcycles(c.latency_cycles);
            full_latency[k] = u64::from(c.latency_cycles) << SUBCYCLE_SHIFT;
        }
        exposed[n] = cfg.core.exposed_subcycles(cfg.dram.latency_cycles);
        full_latency[n] = u64::from(cfg.dram.latency_cycles) << SUBCYCLE_SHIFT;
        let dram_channels = if cfg.dram.contended {
            cfg.dram.channels
        } else {
            0
        };
        Self {
            core: cfg.core,
            dtlb: Tlb::new(cfg.dtlb),
            l2tlb: cfg.l2tlb.map(Tlb::new),
            walk: cfg.walk,
            levels: cfg.caches.into_iter().map(Cache::new).collect(),
            prefetchers: cfg
                .prefetchers
                .into_iter()
                .map(|p| match p {
                    PrefetcherConfig::None => None,
                    other => Some(Prefetcher::new(other)),
                })
                .collect(),
            line_bytes,
            dram_channels,
            exposed,
            full_latency,
            cur: PhaseAccum::with_channels(n, dram_channels),
            done: Vec::new(),
            pred_buf: Vec::new(),
            tlb_enabled: cfg.tlb_enabled,
            fastpath: cfg.fastpath,
            armed: None,
            strided_batches: 0,
            walk_memo: [None; MAX_WALK_LEVELS],
            walk_upper_node: None,
            // Analytic fast-forward scales counters *linearly* over a
            // periodic chunk; a per-channel tally (`line % channels`) is
            // not linear in the chunk's line delta, so contended devices
            // always replay (DESIGN.md §16).
            analytic: if cfg.analytic && cfg.fastpath && !cfg.dram.contended {
                Some(Box::new(Analytic::new()))
            } else {
                None
            },
        }
    }

    /// The core model driving this pipeline.
    #[must_use]
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// Per-level cache statistics (L1 first).
    #[must_use]
    pub fn cache_stats(&self) -> Vec<LevelStats> {
        self.levels.iter().map(Cache::stats).collect()
    }

    /// First-level TLB statistics.
    #[must_use]
    pub fn dtlb_stats(&self) -> LevelStats {
        self.dtlb.stats()
    }

    /// Second-level TLB statistics, if the device has one.
    #[must_use]
    pub fn l2tlb_stats(&self) -> Option<LevelStats> {
        self.l2tlb.as_ref().map(Tlb::stats)
    }

    /// Finish the current phase and return all per-phase accounting.
    pub(crate) fn finish(mut self) -> CoreOutcome {
        self.analytic_flush();
        self.flush_phase();
        let (analytic_ops, replay_fallback_ops) = self
            .analytic
            .as_ref()
            .map_or((0, 0), |a| (a.analytic_ops, a.replay_fallback_ops));
        CoreOutcome {
            phases: self.done,
            cache_stats: self.levels.iter().map(Cache::stats).collect(),
            dtlb_stats: self.dtlb.stats(),
            l2tlb_stats: self.l2tlb.as_ref().map(Tlb::stats),
            strided_batches: self.strided_batches,
            analytic_ops,
            replay_fallback_ops,
        }
    }

    pub(crate) fn flush_phase(&mut self) {
        let n = self.levels.len();
        let fresh = PhaseAccum::with_channels(n, self.dram_channels);
        let cur = std::mem::replace(&mut self.cur, fresh);
        self.done.push(cur);
    }

    /// Book one DRAM line transfer against its channel (line-interleaved
    /// mapping) when the contended channel model is on; a no-op for the
    /// aggregate model so the paper boards' accounting is untouched.
    #[inline]
    fn tally_dram_channel(&mut self, line: u64) {
        if self.dram_channels != 0 {
            let ch = (line % u64::from(self.dram_channels)) as usize;
            self.cur.channel_bytes[ch] += u64::from(self.line_bytes);
        }
    }

    /// Translate one probe's page; charges TLB latencies and page-walk
    /// references. Returns `true` when a full page walk was needed — the
    /// caller then charges the subsequent data miss *unoverlapped*,
    /// because the data address is not known until the walk completes, so
    /// memory-level parallelism cannot hide it.
    pub(crate) fn translate(&mut self, addr: u64) -> bool {
        if !self.tlb_enabled {
            return false;
        }
        let vpn = self.dtlb.vpn_of(addr);
        // Misses remember their fill slot so the post-walk fills below
        // need no second scan; page walks only touch the data caches, so
        // the slots stay valid across them.
        let (dtlb_hit, dtlb_slot) = self.dtlb.lookup_reserving(vpn);
        if dtlb_hit {
            return false;
        }
        let mut l2_slot = None;
        if let Some(l2) = self.l2tlb.as_mut() {
            let latency = l2.config().latency_cycles;
            let (l2_hit, slot) = l2.lookup_reserving(vpn);
            if l2_hit {
                self.cur.cycles.stall_subcycles += u64::from(latency) << SUBCYCLE_SHIFT;
                self.dtlb.fill_reserved(vpn, dtlb_slot);
                return false;
            }
            l2_slot = slot;
        }
        // Full walk: fixed overhead plus PTE loads replayed through the
        // data caches (no prefetcher training on page-table addresses).
        self.cur.cycles.stall_subcycles += u64::from(self.walk.overhead_cycles) << SUBCYCLE_SHIFT;
        let line_shift = self.line_bytes.trailing_zeros();
        let node = vpn >> 9;
        // Non-leaf levels (`i < upper`) read none of the VPN's low 9
        // bits, so an unchanged `node` means their PTE lines are exactly
        // the previous walk's — the memo invariant below keeps
        // `walk_memo[i]`'s line equal to the *previous* walk's level-`i`
        // line whenever it is populated.
        let upper = self.walk.levels.saturating_sub(1);
        let node_unchanged = self.fastpath && self.walk_upper_node == Some(node);
        for i in 0..self.walk.levels {
            let memo = self.walk_memo.get(i as usize).copied().flatten();
            if self.fastpath {
                // Same PTE line as the previous walk at this level and
                // still plainly resident at the remembered slot: a demand
                // probe of it is an L1 hit with no side effects beyond
                // the hit count and recency — replay those directly. Any
                // staleness (evicted, moved, re-filled by a prefetch)
                // fails the check and takes the full path below, which
                // also refreshes the memo. For upper levels with `node`
                // unchanged the memoized line needs no address
                // recomputation at all.
                if let Some((mline, set, way)) = memo {
                    if i < upper && node_unchanged {
                        if self.levels[0].holds_plain(set, way, mline) {
                            self.levels[0].repeat_hit(set, way);
                        } else {
                            // Stale slot, but the line itself is still
                            // the memoized one: demand it and re-memoize
                            // from the slot the demand reports (walk
                            // traffic trains no prefetcher, so it is
                            // always known).
                            let s = self.demand_line(mline, false, false, false);
                            if let Some(slot) = self.walk_memo.get_mut(i as usize) {
                                *slot = s.map(|(set, way, _)| (mline, set, way));
                            }
                        }
                        continue;
                    }
                    let line = self.walk.pte_address(vpn, i) >> line_shift;
                    if mline == line && self.levels[0].holds_plain(set, way, line) {
                        self.levels[0].repeat_hit(set, way);
                        continue;
                    }
                    let s = self.demand_line(line, false, false, false);
                    if let Some(slot) = self.walk_memo.get_mut(i as usize) {
                        *slot = s.map(|(set, way, _)| (line, set, way));
                    }
                    continue;
                }
                let line = self.walk.pte_address(vpn, i) >> line_shift;
                let s = self.demand_line(line, false, false, false);
                if let Some(slot) = self.walk_memo.get_mut(i as usize) {
                    *slot = s.map(|(set, way, _)| (line, set, way));
                }
            } else {
                let line = self.walk.pte_address(vpn, i) >> line_shift;
                self.demand_line(line, false, false, false);
            }
        }
        if self.fastpath {
            self.walk_upper_node = Some(node);
        }
        if let Some(l2) = self.l2tlb.as_mut() {
            l2.fill_reserved(vpn, l2_slot);
        }
        self.dtlb.fill_reserved(vpn, dtlb_slot);
        true
    }

    /// Charge one line-granular demand reference.
    ///
    /// `train_prefetch` is false for page-walk side traffic. `serialize`
    /// charges the full miss latency instead of the MLP-overlapped share
    /// (set after a page walk, which the data access depends on).
    ///
    /// Returns the line's L1 slot `(set, way, dirty)` when it is known to
    /// end the access plainly resident there — exactly what a follow-up
    /// [`Cache::probe_for_repeat`] of the line would report — so callers
    /// can arm the repeat fast path without rescanning. `None` means
    /// "unknown" (an L1 prefetch fill ran after the slot was determined
    /// and may have displaced the line): callers fall back to the probe.
    pub(crate) fn demand_line(
        &mut self,
        line: u64,
        is_write: bool,
        train_prefetch: bool,
        serialize: bool,
    ) -> Option<(usize, u32, bool)> {
        let n = self.levels.len();
        // L1 first, with an early out on a hit: no stall, no fills — only
        // the L1 prefetcher (which sees every reference) may need to run.
        let (res0, slot0, hit_slot) = self.levels[0].access_reserving(line, is_write);
        if res0.hit {
            if train_prefetch && self.prefetchers[0].is_some() && self.run_prefetcher(0, line) {
                return None;
            }
            return hit_slot;
        }
        // Single-level hierarchies (the MangoPi model) go straight to
        // DRAM on an L1 miss; skip the generic multi-level scaffolding.
        if n == 1 {
            self.cur.cycles.stall_subcycles += if serialize {
                self.full_latency[1]
            } else {
                self.exposed[1]
            };
            let lb = u64::from(self.line_bytes);
            self.cur.supply_bytes[1] += lb;
            self.cur.dram.bytes_read += lb;
            self.cur.dram.reads += 1;
            self.tally_dram_channel(line);
            let (victim, way) = self.levels[0].fill_reserved(line, is_write, slot0);
            if let Some(victim) = victim {
                self.writeback(victim, 0);
            }
            if train_prefetch && self.prefetchers[0].is_some() && self.run_prefetcher(0, line) {
                return None;
            }
            return Some((self.levels[0].set_of_line(line), way, is_write));
        }
        // Probe the remaining levels outward until a hit; each missed
        // level remembers its fill slot so `fill_levels` needs no second
        // placement scan (only other levels are touched between a level's
        // miss and its fill, so the slots stay valid).
        let mut found: Option<usize> = None;
        let mut slots = [None; MAX_LEVELS];
        slots[0] = slot0;
        #[allow(clippy::needless_range_loop)] // indexes both `levels` and `slots`
        for k in 1..n {
            let (res, slot, _) = self.levels[k].access_reserving(line, false);
            if res.hit {
                found = Some(k);
                break;
            }
            slots[k] = slot;
        }

        let l1_way = match found {
            Some(0) => None, // L1 hit: handled by the early out above.
            Some(k) => {
                self.cur.cycles.stall_subcycles += if serialize {
                    self.full_latency[k]
                } else {
                    self.exposed[k]
                };
                // Line moves across each bus from level k down to L1.
                for j in 1..=k {
                    self.cur.supply_bytes[j] += u64::from(self.line_bytes);
                }
                Some(self.fill_levels(line, k, is_write, &slots))
            }
            None => {
                self.cur.cycles.stall_subcycles += if serialize {
                    self.full_latency[n]
                } else {
                    self.exposed[n]
                };
                for j in 1..=n {
                    self.cur.supply_bytes[j] += u64::from(self.line_bytes);
                }
                self.cur.dram.bytes_read += u64::from(self.line_bytes);
                self.cur.dram.reads += 1;
                self.tally_dram_channel(line);
                Some(self.fill_levels(line, n, is_write, &slots))
            }
        };

        // Train prefetchers: level k's prefetcher sees the references that
        // reach level k (i.e. misses of every level above it).
        let mut l1_disturbed = false;
        if train_prefetch {
            let deepest = found.unwrap_or(n);
            for k in 0..n.min(deepest + 1) {
                if self.prefetchers[k].is_some() && self.run_prefetcher(k, line) && k == 0 {
                    l1_disturbed = true;
                }
            }
        }
        if l1_disturbed {
            None
        } else {
            l1_way.map(|w| (self.levels[0].set_of_line(line), w, is_write))
        }
    }

    /// Fill `line` into levels `0..upto` (it was found at `upto`, or DRAM
    /// when `upto == levels.len()`), handling dirty-victim writebacks.
    /// Returns the L1 way the line was installed at.
    fn fill_levels(
        &mut self,
        line: u64,
        upto: usize,
        is_write: bool,
        slots: &[Option<Reserved>; MAX_LEVELS],
    ) -> u32 {
        let mut l1_way = 0;
        for j in (0..upto).rev() {
            // Only the L1 copy is dirtied by a store; lower copies stay clean.
            let dirty = is_write && j == 0;
            let (victim, way) = self.levels[j].fill_reserved(line, dirty, slots[j]);
            if j == 0 {
                l1_way = way;
            }
            if let Some(victim) = victim {
                self.writeback(victim, j);
            }
        }
        l1_way
    }

    /// Write a dirty victim evicted from level `j` into level `j + 1`
    /// (or DRAM), cascading if the insertion evicts another dirty line.
    fn writeback(&mut self, mut victim: u64, mut from_level: usize) {
        let n = self.levels.len();
        loop {
            let next = from_level + 1;
            self.cur.supply_bytes[next] += u64::from(self.line_bytes);
            if next == n {
                self.cur.dram.bytes_written += u64::from(self.line_bytes);
                self.cur.dram.writes += 1;
                self.tally_dram_channel(victim);
                return;
            }
            match self.levels[next].fill(victim, true, false) {
                Some(v2) => {
                    victim = v2;
                    from_level = next;
                }
                None => return,
            }
        }
    }

    /// Let level `k`'s prefetcher observe `line` and perform its fills.
    /// Returns `true` when at least one prefetch line was filled into
    /// level `k` (so any slot remembered for that level may be stale).
    fn run_prefetcher(&mut self, k: usize, line: u64) -> bool {
        self.pred_buf.clear();
        if let Some(pf) = self.prefetchers[k].as_mut() {
            pf.observe(line, &mut self.pred_buf);
        }
        if self.pred_buf.is_empty() {
            return false;
        }
        let mut filled = false;
        let preds = std::mem::take(&mut self.pred_buf);
        let n = self.levels.len();
        for &p in &preds {
            if self.levels[k].contains(p) {
                continue;
            }
            filled = true;
            // Find the closest level below k that already holds the line.
            let mut source = n; // DRAM by default
            for j in (k + 1)..n {
                if self.levels[j].contains(p) {
                    source = j;
                    break;
                }
            }
            // The line crosses every bus between the source and level k.
            for j in (k + 1)..=source {
                self.cur.supply_bytes[j] += u64::from(self.line_bytes);
            }
            if source == n {
                self.cur.dram.bytes_read += u64::from(self.line_bytes);
                self.cur.dram.reads += 1;
                self.tally_dram_channel(p);
            }
            if let Some(victim) = self.levels[k].fill(p, false, true) {
                self.writeback(victim, k);
            }
        }
        self.pred_buf = preds;
        filled
    }

    /// Arm the repeat-line fast path on `line`, the data line whose
    /// translate + demand flow just completed; `slot` is the L1 slot
    /// `demand_line` reported for it (`None` = unknown, probe instead).
    ///
    /// Arming succeeds whenever the line ended the access resident in L1
    /// with its prefetched flag consumed — hit or miss, with or without
    /// prefetch fills along the way (`Cache::probe_for_repeat` re-checks
    /// residency *after* any such fills, so an unlucky same-set eviction
    /// simply leaves the path disarmed). The other two replay
    /// preconditions hold by construction: the line's page was the last
    /// DTLB translation, and the L1 prefetcher's last observation was
    /// this line (page-walk traffic trains no prefetcher).
    pub(crate) fn arm(&mut self, line: u64, slot: Option<(usize, u32, bool)>) {
        self.armed =
            slot.or_else(|| self.levels[0].probe_for_repeat(line))
                .map(|(set, way, dirty)| ArmedLine {
                    line,
                    set,
                    way,
                    dirty,
                });
    }

    /// Replay a touch of the armed line with direct state updates.
    ///
    /// Bit-identical to the full path for a repeat reference: the DTLB
    /// lookup would hit its MRU entry (so only the hit counter moves —
    /// re-touching the most recent entry cannot change LRU order), the L1
    /// probe would hit the armed way ([`Cache::repeat_hit`] bumps the hit
    /// counter and re-touches that way's recency exactly as the scan
    /// would, with no stall or traffic), and the L1 prefetcher would
    /// re-observe the same line (clock tick plus a recency refresh of the
    /// matched stream entry, no predictions — see
    /// [`Prefetcher::refresh_repeat`]). A store additionally sets the
    /// dirty flag, exactly as a full-path store hit would.
    pub(crate) fn replay_repeat(&mut self, is_write: bool) {
        if self.tlb_enabled {
            self.dtlb.note_repeat_hit();
        }
        if let Some(armed) = self.armed.as_mut() {
            self.levels[0].repeat_hit(armed.set, armed.way);
            if is_write && !armed.dirty {
                armed.dirty = true;
                let (set, way) = (armed.set, armed.way);
                self.levels[0].mark_dirty(set, way);
            }
        }
        if let Some(pf) = self.prefetchers[0].as_mut() {
            pf.refresh_repeat();
        }
    }
}

/// The raw per-element execution paths — the pre-analytic [`TraceSink`]
/// bodies, verbatim. The trait impl below routes here either directly
/// (analytic execution off or disabled) or through the analytic
/// executor's recorder, whose replay calls these same methods.
impl CorePipeline {
    pub(crate) fn raw_access(&mut self, access: MemAccess) {
        let shift = self.line_bytes.trailing_zeros();
        let is_write = access.kind.is_write();
        // Repeat-line fast path: a single-line touch of the data line
        // referenced immediately before replays as direct state updates
        // (see `replay_repeat` for the equivalence argument).
        if let Some(armed) = self.armed {
            if access.addr >> shift == armed.line
                && (access.size == 0 || (access.end() - 1) >> shift <= armed.line)
            {
                self.replay_repeat(is_write);
                return;
            }
        }
        self.armed = None;
        // Scalar probes (the overwhelmingly common case) touch one line;
        // go straight to it without the line-splitting iterator.
        let first = access.addr >> shift;
        let last = if access.size == 0 {
            first
        } else {
            (access.end() - 1) >> shift
        };
        if first == last {
            let walked = self.translate(access.addr);
            let slot = self.demand_line(first, is_write, true, walked);
            if self.fastpath {
                self.arm(first, slot);
            }
            return;
        }
        let line_size = u64::from(self.line_bytes);
        let mut last_line = 0;
        let mut last_slot = None;
        for line in access.lines(line_size) {
            let walked = self.translate(line << shift);
            last_slot = self.demand_line(line, is_write, true, walked);
            last_line = line;
        }
        if self.fastpath {
            self.arm(last_line, last_slot);
        }
    }

    pub(crate) fn raw_compute(&mut self, cost: IterCost, iters: u64) {
        self.cur.cycles.issue_subcycles += self.core.issue_subcycles(&cost, iters);
    }

    pub(crate) fn raw_barrier(&mut self) {
        self.flush_phase();
    }

    /// Bulk unit-stride run: probe per line and translate per page
    /// instead of per probe.
    ///
    /// Statistic-for-statistic identical to the default per-probe
    /// splitting (the simulator never looks at probe *sizes*, only at
    /// the line sequence): each line goes through the same
    /// translate + demand flow, with two short-circuits — the repeat-line
    /// fast path for a line that is still armed, and a DTLB repeat-hit
    /// bump for lines within the page translated immediately before
    /// (whose VPN is by construction the DTLB's MRU entry).
    pub(crate) fn raw_access_range(&mut self, addr: u64, len: u64, write: bool) {
        if len == 0 {
            return;
        }
        let shift = self.line_bytes.trailing_zeros();
        let end = addr.saturating_add(len);
        let first = addr >> shift;
        let last = ((end - 1) >> shift).max(first);
        let mut cur_vpn: Option<u64> = None;
        for line in first..=last {
            if let Some(armed) = self.armed {
                if armed.line == line {
                    self.replay_repeat(write);
                    continue;
                }
            }
            self.armed = None;
            let base = line << shift;
            let walked = if !self.tlb_enabled {
                false
            } else {
                let vpn = self.dtlb.vpn_of(base);
                if self.fastpath && cur_vpn == Some(vpn) {
                    self.dtlb.note_repeat_hit();
                    false
                } else {
                    let walked = self.translate(base);
                    cur_vpn = Some(vpn);
                    walked
                }
            };
            let slot = self.demand_line(line, write, true, walked);
            // Arming matters only for the state carried *out* of the run:
            // within it, consecutive lines never repeat.
            if self.fastpath && line == last {
                self.arm(line, slot);
            }
        }
    }

    /// Bulk constant-stride run: one dispatch for the whole batch, with
    /// same-page spans paying a single DTLB translation.
    ///
    /// Statistic-for-statistic identical to the default per-element
    /// emission. Each element takes the scalar flow with three
    /// short-circuits, every one already carrying a PR 2 equivalence
    /// argument: (1) an element whose line is still armed replays through
    /// `replay_repeat`; (2) an element on the page translated immediately
    /// before (the DTLB's MRU entry by construction — `note_repeat_hit`
    /// survives armed replays, which touch no TLB order) books a repeat
    /// hit without the lookup scan; (3) when `|stride| >= line_bytes`,
    /// consecutive single-line elements can never share a line, so arming
    /// mid-run is unobservable (`Cache::probe_for_repeat` is read-only)
    /// and only the final element arms. Elements straddling a line
    /// boundary fall back to the scalar multi-line flow verbatim.
    pub(crate) fn raw_access_strided(
        &mut self,
        base: u64,
        stride_bytes: i64,
        count: u64,
        size: u32,
        write: bool,
    ) {
        if count == 0 {
            return;
        }
        self.strided_batches += 1;
        if !self.fastpath {
            // Reference build: per-element dispatch, exactly the trait
            // default.
            for i in 0..count {
                let addr = strided_addr(base, stride_bytes, i);
                self.raw_access(if write {
                    MemAccess::store(addr, size)
                } else {
                    MemAccess::load(addr, size)
                });
            }
            return;
        }
        let shift = self.line_bytes.trailing_zeros();
        let may_repeat = stride_bytes.unsigned_abs() < u64::from(self.line_bytes);
        // A stride of at least a page moves every element to a fresh
        // page (a mod-2^64 wrap lands at least 2^63 bytes away), so the
        // same-page shortcut can never fire and its VPN bookkeeping is
        // skipped wholesale.
        let page_repeat =
            self.tlb_enabled && stride_bytes.unsigned_abs() < self.dtlb.config().page_bytes;
        let mut cur_vpn: Option<u64> = None;
        for i in 0..count {
            let addr = strided_addr(base, stride_bytes, i);
            let first = addr >> shift;
            let last = if size == 0 {
                first
            } else {
                (addr.saturating_add(u64::from(size)) - 1) >> shift
            };
            if let Some(armed) = self.armed {
                if first == armed.line && last <= armed.line {
                    self.replay_repeat(write);
                    continue;
                }
            }
            self.armed = None;
            if first != last {
                // Straddling element: the scalar multi-line flow.
                let mut last_line = 0;
                let mut last_slot = None;
                for line in first..=last {
                    let walked = self.translate(line << shift);
                    last_slot = self.demand_line(line, write, true, walked);
                    last_line = line;
                }
                self.arm(last_line, last_slot);
                cur_vpn = None;
                continue;
            }
            let walked = if !self.tlb_enabled {
                false
            } else if page_repeat {
                let vpn = self.dtlb.vpn_of(addr);
                if cur_vpn == Some(vpn) {
                    self.dtlb.note_repeat_hit();
                    false
                } else {
                    let walked = self.translate(addr);
                    cur_vpn = Some(vpn);
                    walked
                }
            } else {
                self.translate(addr)
            };
            let slot = self.demand_line(first, write, true, walked);
            if may_repeat || i + 1 == count {
                self.arm(first, slot);
            }
        }
    }

    /// Bulk constant-stride load+store pairs — the transpose column walk.
    ///
    /// Per element, the load takes the same flow as
    /// [`CorePipeline::access_strided`]; the store then replays against
    /// the line the load left in L1 — the very updates the scalar store
    /// would make through the armed path, using the L1 slot the load's
    /// `demand_line` reports (identical to the arm's `probe_for_repeat`,
    /// which only runs as a fallback when a same-set prefetch fill made
    /// the slot stale). When neither resolves the line (it was displaced
    /// between the load's fill and now), the store takes the full scalar
    /// path, exactly as the per-element default would after a failed arm.
    pub(crate) fn raw_access_strided_rmw(
        &mut self,
        base: u64,
        stride_bytes: i64,
        count: u64,
        size: u32,
    ) {
        if count == 0 {
            return;
        }
        self.strided_batches += 1;
        if !self.fastpath {
            for i in 0..count {
                let addr = strided_addr(base, stride_bytes, i);
                self.raw_access(MemAccess::load(addr, size));
                self.raw_access(MemAccess::store(addr, size));
            }
            return;
        }
        let shift = self.line_bytes.trailing_zeros();
        // See `access_strided`: page-or-larger strides cannot revisit the
        // previous element's page, so the VPN shortcut is compiled out of
        // the loop.
        let page_repeat =
            self.tlb_enabled && stride_bytes.unsigned_abs() < self.dtlb.config().page_bytes;
        let mut cur_vpn: Option<u64> = None;
        for i in 0..count {
            let addr = strided_addr(base, stride_bytes, i);
            let first = addr >> shift;
            let last = if size == 0 {
                first
            } else {
                (addr.saturating_add(u64::from(size)) - 1) >> shift
            };
            if let Some(armed) = self.armed {
                if first == armed.line && last <= armed.line {
                    self.replay_repeat(false);
                    self.replay_repeat(true);
                    continue;
                }
            }
            self.armed = None;
            if first != last {
                // Straddling pair: both halves through the scalar flow
                // (the load's arm and the store's replay happen inside
                // `raw_access`).
                self.raw_access(MemAccess::load(addr, size));
                self.raw_access(MemAccess::store(addr, size));
                cur_vpn = None;
                continue;
            }
            let walked = if !self.tlb_enabled {
                false
            } else if page_repeat {
                let vpn = self.dtlb.vpn_of(addr);
                if cur_vpn == Some(vpn) {
                    self.dtlb.note_repeat_hit();
                    false
                } else {
                    let walked = self.translate(addr);
                    cur_vpn = Some(vpn);
                    walked
                }
            } else {
                self.translate(addr)
            };
            let slot = self.demand_line(first, false, true, walked);
            match slot.or_else(|| self.levels[0].probe_for_repeat(first)) {
                Some((set, way, dirty)) => {
                    if self.tlb_enabled {
                        self.dtlb.note_repeat_hit();
                    }
                    self.levels[0].repeat_hit(set, way);
                    if !dirty {
                        self.levels[0].mark_dirty(set, way);
                    }
                    if let Some(pf) = self.prefetchers[0].as_mut() {
                        pf.refresh_repeat();
                    }
                    self.armed = Some(ArmedLine {
                        line: first,
                        set,
                        way,
                        dirty: true,
                    });
                }
                None => {
                    let walked = self.translate(addr);
                    let slot = self.demand_line(first, true, true, walked);
                    self.arm(first, slot);
                    if self.tlb_enabled {
                        cur_vpn = Some(self.dtlb.vpn_of(addr));
                    }
                }
            }
        }
    }
}

impl TraceSink for CorePipeline {
    fn access(&mut self, access: MemAccess) {
        if self.analytic_live() {
            self.analytic_push(TraceOp::Access {
                addr: access.addr,
                size: access.size,
                write: access.kind.is_write(),
            });
        } else {
            self.raw_access(access);
        }
    }

    fn compute(&mut self, cost: IterCost, iters: u64) {
        if self.analytic_live() {
            self.analytic_push(TraceOp::Compute { cost, iters });
        } else {
            self.raw_compute(cost, iters);
        }
    }

    fn barrier(&mut self) {
        // Phases never span a barrier, so the recorder drains first: every
        // buffered op belongs to the phase being closed.
        self.analytic_flush();
        self.raw_barrier();
    }

    fn access_range(&mut self, addr: u64, len: u64, write: bool) {
        if self.analytic_live() {
            self.analytic_push(TraceOp::Range { addr, len, write });
        } else {
            self.raw_access_range(addr, len, write);
        }
    }

    fn access_strided(&mut self, base: u64, stride_bytes: i64, count: u64, size: u32, write: bool) {
        if self.analytic_live() {
            self.analytic_push(TraceOp::Strided {
                base,
                stride: stride_bytes,
                count,
                size,
                write,
            });
        } else {
            self.raw_access_strided(base, stride_bytes, count, size, write);
        }
    }

    fn access_strided_rmw(&mut self, base: u64, stride_bytes: i64, count: u64, size: u32) {
        if self.analytic_live() {
            self.analytic_push(TraceOp::StridedRmw {
                base,
                stride: stride_bytes,
                count,
                size,
            });
        } else {
            self.raw_access_strided_rmw(base, stride_bytes, count, size);
        }
    }
}

/// Everything a finished core run hands back to the machine.
#[derive(Debug, Clone)]
pub(crate) struct CoreOutcome {
    pub phases: Vec<PhaseAccum>,
    pub cache_stats: Vec<LevelStats>,
    pub dtlb_stats: LevelStats,
    pub l2tlb_stats: Option<LevelStats>,
    pub strided_batches: u64,
    /// Elements advanced analytically (fast-forwarded, never executed).
    pub analytic_ops: u64,
    /// Elements replayed raw inside fast-forward-attempted ops that
    /// could not be proven periodic.
    pub replay_fallback_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    fn test_pipeline(prefetch: PrefetcherConfig) -> CorePipeline {
        CorePipeline::new(PipelineConfig {
            core: CoreConfig::new("test", 1.0, 1, 0, 1.0),
            caches: vec![
                CacheConfig::new("L1", 4096, 4, 64)
                    .policy(ReplacementPolicy::Lru)
                    .latency(4)
                    .bytes_per_cycle(8.0),
                CacheConfig::new("L2", 65536, 8, 64)
                    .latency(12)
                    .bytes_per_cycle(8.0),
            ],
            prefetchers: vec![prefetch, PrefetcherConfig::None],
            dtlb: TlbConfig::fully_associative("DTLB", 16),
            l2tlb: Some(TlbConfig::direct_mapped("L2TLB", 64).latency(10)),
            walk: PageWalk::sv39(),
            dram: DramConfig::new(100, 1.0, 1),
            tlb_enabled: false,
            fastpath: true,
            analytic: false,
        })
    }

    #[test]
    fn cold_miss_reaches_dram_then_hits() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8);
        assert_eq!(p.cur.dram.bytes_read, 64);
        let stall_after_miss = p.cur.cycles.stall_subcycles;
        assert_eq!(stall_after_miss, 100 << SUBCYCLE_SHIFT);
        p.load(8, 8); // same line: L1 hit
        assert_eq!(p.cur.cycles.stall_subcycles, stall_after_miss);
        assert_eq!(p.cache_stats()[0].hits, 1);
    }

    #[test]
    fn l2_hit_charges_l2_latency_and_bus() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        // Fill L1 set 0 with conflicting lines; L1 is 4KB/4w/64B = 16 sets.
        // Lines 0, 16, 32, 48, 64 map to set 0.
        for l in [0u64, 16, 32, 48, 64] {
            p.load(l * 64, 8);
        }
        // Line 0 evicted from L1 (LRU) but still in L2.
        let before = p.cur.cycles.stall_subcycles;
        let dram_before = p.cur.dram.bytes_read;
        p.load(0, 8);
        assert_eq!(
            p.cur.dram.bytes_read, dram_before,
            "L2 hit: no DRAM traffic"
        );
        assert_eq!(p.cur.cycles.stall_subcycles - before, 12 << SUBCYCLE_SHIFT);
    }

    #[test]
    fn store_miss_allocates_and_writeback_happens_on_eviction() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.store(0, 8); // write-allocate: DRAM read
        assert_eq!(p.cur.dram.bytes_read, 64);
        assert_eq!(p.cur.dram.bytes_written, 0);
        // Evict line 0 from L1 via conflicting fills, then out of L2 too.
        // L2 is 64KB/8w/64B = 128 sets; lines k*128 map to L2 set 0 (and to
        // L1 set 0). The L1 eviction writes line 0 back into L2 (refreshing
        // its recency there), so it takes a dozen more conflicting fills to
        // push the dirty copy out of the 8-way L2 set and into DRAM.
        for i in 1..=20u64 {
            p.load(i * 128 * 64, 8);
        }
        assert_eq!(
            p.cur.dram.bytes_written, 64,
            "dirty line must be written back to DRAM eventually"
        );
    }

    #[test]
    fn sequential_sweep_with_prefetch_mostly_prefetch_hits() {
        let mut p = test_pipeline(PrefetcherConfig::c906());
        for i in 0..256u64 {
            p.load(i * 64, 8);
        }
        let l1 = p.cache_stats()[0];
        assert!(
            l1.prefetch_hits > 200,
            "sequential sweep should be covered by prefetch: {l1:?}"
        );
    }

    #[test]
    fn prefetch_consumes_dram_bandwidth() {
        let mut with = test_pipeline(PrefetcherConfig::c906());
        let mut without = test_pipeline(PrefetcherConfig::None);
        // A short sweep, abandoned: prefetcher overfetches past the end.
        for i in 0..8u64 {
            with.load(i * 64, 8);
            without.load(i * 64, 8);
        }
        assert!(
            with.cur.dram.bytes_read >= without.cur.dram.bytes_read,
            "prefetching must not reduce DRAM reads on a cold sweep"
        );
    }

    #[test]
    fn stall_reduced_by_prefetching_on_long_sweep() {
        let mut with = test_pipeline(PrefetcherConfig::c906());
        let mut without = test_pipeline(PrefetcherConfig::None);
        for i in 0..512u64 {
            with.load(i * 64, 8);
            without.load(i * 64, 8);
        }
        assert!(
            with.cur.cycles.stall_subcycles < without.cur.cycles.stall_subcycles / 2,
            "prefetch should hide most DRAM latency: {} vs {}",
            with.cur.cycles.stall_subcycles,
            without.cur.cycles.stall_subcycles
        );
    }

    #[test]
    fn barrier_splits_phases() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8);
        p.barrier();
        p.load(4096, 8);
        let out = p.finish();
        assert_eq!(out.phases.len(), 2);
        assert!(out.phases.iter().all(|ph| ph.dram.bytes_read == 64));
    }

    #[test]
    fn compute_charges_issue_cycles() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.compute(IterCost::new(2, 1).mem(1, 0), 100);
        assert_eq!(p.cur.cycles.issue_subcycles, 400 << SUBCYCLE_SHIFT);
    }

    #[test]
    fn tlb_walk_charged_when_enabled() {
        let mut cfg_pipeline = test_pipeline(PrefetcherConfig::None);
        cfg_pipeline.tlb_enabled = true;
        // Touch many distinct pages: DTLB (16) and L2 TLB (64) overflow.
        for page in 0..256u64 {
            cfg_pipeline.load(page * 4096, 8);
        }
        let d = cfg_pipeline.dtlb_stats();
        assert_eq!(d.accesses(), 256);
        assert!(d.misses >= 256, "every new page misses the DTLB");
        let l2 = cfg_pipeline.l2tlb_stats().expect("has L2 TLB");
        assert!(l2.misses > 0);
        // Walk PTE loads show up as extra cache traffic.
        assert!(cfg_pipeline.cache_stats()[0].accesses() > 256);
    }

    #[test]
    fn page_walks_serialize_the_dependent_miss() {
        // With TLB simulation on, a page-crossing strided walk pays the
        // *full* DRAM latency per miss (the data address depends on the
        // walk); with it off, MLP overlaps part of it. The enabled run
        // must therefore stall strictly more per access.
        let mut with_tlb = test_pipeline(PrefetcherConfig::None);
        with_tlb.tlb_enabled = true;
        let mut without_tlb = test_pipeline(PrefetcherConfig::None);
        for i in 0..512u64 {
            with_tlb.load(i * 8192, 8);
            without_tlb.load(i * 8192, 8);
        }
        // The test core has mlp 1.0, so serialization alone changes
        // nothing — but walk overhead and PTE loads must show up.
        assert!(
            with_tlb.cur.cycles.stall_subcycles > without_tlb.cur.cycles.stall_subcycles,
            "walks must cost cycles: {} vs {}",
            with_tlb.cur.cycles.stall_subcycles,
            without_tlb.cur.cycles.stall_subcycles
        );
        // And with an overlapping core, the serialized path still pays
        // full latency per walked miss.
        let mut mlp_core = test_pipeline(PrefetcherConfig::None);
        mlp_core.core = CoreConfig::new("ooo", 1.0, 4, 0, 8.0);
        mlp_core.tlb_enabled = true;
        mlp_core.load(1 << 30, 8); // fresh page: walk + serialized miss
        assert!(
            mlp_core.cur.cycles.stall_subcycles >= 100 << SUBCYCLE_SHIFT,
            "serialized DRAM miss must not be divided by MLP: {}",
            mlp_core.cur.cycles.stall_subcycles
        );
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(60, 8); // crosses line 0 into line 1
        assert_eq!(p.cur.dram.reads, 2);
    }

    #[test]
    fn supply_bytes_accumulate_per_bus() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8); // miss to DRAM: both buses + DRAM
        assert_eq!(p.cur.supply_bytes[1], 64, "L2->L1 bus");
        assert_eq!(p.cur.supply_bytes[2], 64, "DRAM bus");
    }

    /// Drive a pipeline pair — one through the bulk batch executors, one
    /// through the per-element expansion — and require every observable
    /// counter to match, not just the digest.
    fn assert_strided_counters_match(
        prefetch: PrefetcherConfig,
        batched: impl Fn(&mut CorePipeline),
        scalar: impl Fn(&mut CorePipeline),
    ) {
        let mut b = test_pipeline(prefetch);
        let mut s = test_pipeline(prefetch);
        batched(&mut b);
        scalar(&mut s);
        assert_eq!(b.cache_stats(), s.cache_stats(), "cache counters diverged");
        assert_eq!(b.dtlb_stats(), s.dtlb_stats(), "DTLB counters diverged");
        assert_eq!(b.l2tlb_stats(), s.l2tlb_stats(), "L2 TLB counters diverged");
        assert_eq!(b.cur, s.cur, "phase accumulators diverged");
    }

    #[test]
    fn strided_batch_counters_match_per_element_loads() {
        for pf in [PrefetcherConfig::None, PrefetcherConfig::c906()] {
            assert_strided_counters_match(
                pf,
                |p| p.access_strided(0x1000, 192, 48, 8, false),
                |p| {
                    for i in 0..48 {
                        p.load(strided_addr(0x1000, 192, i), 8);
                    }
                },
            );
        }
    }

    #[test]
    fn strided_batch_counters_match_with_negative_stride_and_straddles() {
        assert_strided_counters_match(
            PrefetcherConfig::c906(),
            |p| p.access_strided(0x20_0000, -60, 40, 16, true),
            |p| {
                for i in 0..40 {
                    p.store(strided_addr(0x20_0000, -60, i), 16);
                }
            },
        );
    }

    #[test]
    fn strided_batch_counters_match_when_entering_an_armed_line() {
        // The scalar store arms the repeat line the batch then lands on.
        assert_strided_counters_match(
            PrefetcherConfig::None,
            |p| {
                p.store(0x4000, 8);
                p.access_strided(0x4000, 8, 24, 8, false);
            },
            |p| {
                p.store(0x4000, 8);
                for i in 0..24 {
                    p.load(0x4000 + i * 8, 8);
                }
            },
        );
    }

    #[test]
    fn strided_rmw_counters_match_load_store_pairs_across_pages() {
        for stride in [4096i64, 8192, -8192] {
            assert_strided_counters_match(
                PrefetcherConfig::c906(),
                |p| p.access_strided_rmw(0x80_0000, stride, 32, 8),
                |p| {
                    for i in 0..32 {
                        let a = strided_addr(0x80_0000, stride, i);
                        p.load(a, 8);
                        p.store(a, 8);
                    }
                },
            );
        }
    }

    fn contended_pipeline(levels: usize) -> CorePipeline {
        let mut caches = vec![CacheConfig::new("L1", 4096, 4, 64)
            .policy(ReplacementPolicy::Lru)
            .latency(4)
            .bytes_per_cycle(8.0)];
        if levels > 1 {
            caches.push(
                CacheConfig::new("L2", 65536, 8, 64)
                    .latency(12)
                    .bytes_per_cycle(8.0),
            );
        }
        let prefetchers = std::iter::once(PrefetcherConfig::c906())
            .chain(std::iter::repeat(PrefetcherConfig::None))
            .take(levels)
            .collect();
        CorePipeline::new(PipelineConfig {
            core: CoreConfig::new("test", 1.0, 1, 0, 1.0),
            caches,
            prefetchers,
            dtlb: TlbConfig::fully_associative("DTLB", 16),
            l2tlb: None,
            walk: PageWalk::sv39(),
            dram: DramConfig::new(100, 4.0, 4).with_channel_contention(),
            tlb_enabled: false,
            fastpath: true,
            analytic: true,
        })
    }

    #[test]
    fn contended_channel_tallies_cover_every_dram_byte() {
        for levels in [1usize, 2] {
            let mut p = contended_pipeline(levels);
            assert!(
                p.analytic.is_none(),
                "contended devices must always replay (no linear fast-forward)"
            );
            // Demand misses + prefetch fills (sweep), dirty writebacks
            // (stores conflicting through the tiny L1 set), and a phase
            // boundary mid-stream.
            for i in 0..512u64 {
                p.load(i * 64, 8);
            }
            p.barrier();
            for i in 0..64u64 {
                p.store(i * 4096, 8);
            }
            let out = p.finish();
            assert!(out.phases.len() >= 2);
            for (k, ph) in out.phases.iter().enumerate() {
                assert_eq!(ph.channel_bytes.len(), 4, "levels={levels} phase {k}");
                assert_eq!(
                    ph.channel_bytes.iter().sum::<u64>(),
                    ph.dram.bytes_total(),
                    "levels={levels} phase {k}: every DRAM line must be \
                     booked against exactly one channel"
                );
            }
            assert!(
                out.phases
                    .iter()
                    .any(|ph| ph.channel_bytes.iter().sum::<u64>() > 0),
                "levels={levels}: the workload must generate DRAM traffic"
            );
        }
    }

    #[test]
    fn uncontended_phases_carry_no_channel_vector() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.load(0, 8);
        let out = p.finish();
        assert!(out.phases.iter().all(|ph| ph.channel_bytes.is_empty()));
    }

    #[test]
    fn strided_batches_are_tallied_but_not_digested() {
        let mut p = test_pipeline(PrefetcherConfig::None);
        p.access_strided(0x1000, 64, 8, 8, false);
        p.access_strided_rmw(0x8000, 64, 8, 8);
        assert_eq!(p.finish().strided_batches, 2);
    }
}
