//! Presets for the four devices benchmarked in the paper (§3.1), plus
//! two modern many-core RISC-V platforms the follow-up literature
//! evaluates (the Sophon SG2044 and a Monte Cimone-style U740 node).
//!
//! All microarchitectural geometry (cache sizes, associativities, TLB
//! entry counts, prefetcher behaviour, pipeline widths) is taken directly
//! from the paper's infrastructure section (or the vendors' published
//! parameters for the post-paper parts). Latencies and bandwidths are
//! *calibration parameters*: the paper does not publish them, so they are
//! set to publicly known ballpark values for each part. EXPERIMENTS.md
//! compares result *shapes*, not absolute times.

use crate::cache::CacheConfig;
use crate::core::CoreConfig;
use crate::dram::DramConfig;
use crate::machine::DeviceSpec;
use crate::prefetch::PrefetcherConfig;
use crate::replacement::ReplacementPolicy;
use crate::tlb::{PageWalk, TlbConfig};

/// The four evaluation platforms of the paper, plus two modern
/// many-core RISC-V platforms for the what-if extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Device {
    /// Mango Pi MQ-Pro: Allwinner D1, 1× XuanTie C906 @ 1 GHz, 1 GB DDR3L.
    MangoPiMqPro,
    /// StarFive VisionFive v1: JH7100, 2× SiFive U74 @ 1 GHz, 8 GB LPDDR4.
    StarFiveVisionFive,
    /// Raspberry Pi 4 model B: BCM2711, 4× Cortex-A72 @ 1.5 GHz, 4 GB LPDDR4.
    RaspberryPi4,
    /// One socket of the 2× Intel Xeon 4310T server: 10 Ice Lake cores,
    /// 64 GB DDR4 (only the first CPU used, as in the paper).
    IntelXeon4310T,
    /// Sophon SG2044: 64× XuanTie C920 @ 2.6 GHz, shared LLC,
    /// multi-channel DDR with per-channel bandwidth contention, 128 GB.
    SophonSG2044,
    /// Monte Cimone-style node: SiFive Freedom U740, 4× U74 @ 1.2 GHz,
    /// 16 GB DDR4 behind one channel.
    MonteCimone,
}

/// Every preset, paper boards first (their presentation order), then the
/// modern many-core parts.
const ALL: [Device; 6] = [
    Device::IntelXeon4310T,
    Device::RaspberryPi4,
    Device::MangoPiMqPro,
    Device::StarFiveVisionFive,
    Device::SophonSG2044,
    Device::MonteCimone,
];

/// Every RISC-V preset.
const RISCV: [Device; 4] = [
    Device::MangoPiMqPro,
    Device::StarFiveVisionFive,
    Device::SophonSG2044,
    Device::MonteCimone,
];

impl Device {
    /// Every preset: the paper's four boards in their presentation order,
    /// then the modern many-core parts. A slice (not a fixed-arity
    /// array), so growing the inventory can never silently truncate a
    /// matrix or panic an array destructure.
    #[must_use]
    pub fn all() -> &'static [Device] {
        &ALL
    }

    /// The paper's four evaluation platforms in presentation order — the
    /// sweep every canonical figure (and its pinned digest) runs over.
    #[must_use]
    pub fn paper() -> &'static [Device] {
        &ALL[..4]
    }

    /// The RISC-V devices only.
    #[must_use]
    pub fn riscv() -> &'static [Device] {
        &RISCV
    }

    /// Short label used in figures ("Mango Pi", "StarFive", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Device::MangoPiMqPro => "Mango Pi (D1)",
            Device::StarFiveVisionFive => "StarFive (JH7100)",
            Device::RaspberryPi4 => "Raspberry Pi 4",
            Device::IntelXeon4310T => "Intel Xeon 4310T",
            Device::SophonSG2044 => "Sophon SG2044",
            Device::MonteCimone => "Monte Cimone (U740)",
        }
    }

    /// The devices whose label or preset name loosely matches
    /// `filter`: case-insensitive substring match with spaces, dashes,
    /// underscores, and parentheses stripped, so `visionfive`,
    /// `mango-pi`, and `Xeon` all select what a human means by them.
    /// An empty result is the caller's error to surface. Callers that
    /// treat the result as a *selection* must not accept a silent
    /// multi-match either — `"pi"` matches two boards and `""` matches
    /// everything — so they go through [`Device::select`], which turns
    /// ambiguity into an explicit error.
    #[must_use]
    pub fn matching(filter: &str) -> Vec<Device> {
        let normalize = |s: &str| s.to_lowercase().replace([' ', '-', '_', '(', ')'], "");
        let needle = normalize(filter);
        Device::all()
            .iter()
            .copied()
            .filter(|d| {
                normalize(d.label()).contains(&needle)
                    || normalize(&format!("{d:?}")).contains(&needle)
            })
            .collect()
    }

    /// Resolve `filter` to an explicit device selection.
    ///
    /// A plain filter must match exactly one device; zero matches and
    /// ambiguous multi-matches (`"pi"`, `""`) are errors that list the
    /// candidates. Intentional multi-select uses a comma-separated
    /// exact set (`"mango,xeon"`), each component again matching exactly
    /// one device; order and duplicates are preserved as written.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending component and the
    /// devices it matched (or the full inventory on zero matches).
    pub fn select(filter: &str) -> Result<Vec<Device>, String> {
        let parts: Vec<&str> = filter
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        if parts.is_empty() {
            return Err(format!(
                "empty device filter; known devices: {}",
                Self::inventory_list()
            ));
        }
        parts.into_iter().map(Self::select_one).collect()
    }

    fn select_one(part: &str) -> Result<Device, String> {
        let found = Self::matching(part);
        match found.as_slice() {
            [one] => Ok(*one),
            [] => Err(format!(
                "no device matches {part:?}; known devices: {}",
                Self::inventory_list()
            )),
            many => {
                let candidates: Vec<&str> = many.iter().map(|d| d.label()).collect();
                Err(format!(
                    "device filter {part:?} is ambiguous: matches {}; \
                     narrow it, or list an exact set like {:?}",
                    candidates.join(", "),
                    candidates.join(",")
                ))
            }
        }
    }

    fn inventory_list() -> String {
        let labels: Vec<&str> = Device::all().iter().map(|d| d.label()).collect();
        labels.join(", ")
    }

    /// Build the full device model.
    #[must_use]
    pub fn spec(self) -> DeviceSpec {
        match self {
            Device::MangoPiMqPro => mango_pi(),
            Device::StarFiveVisionFive => visionfive(),
            Device::RaspberryPi4 => raspberry_pi4(),
            Device::IntelXeon4310T => xeon_4310t(),
            Device::SophonSG2044 => sophon_sg2044(),
            Device::MonteCimone => monte_cimone(),
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Mango Pi MQ-Pro (Allwinner D1, XuanTie C906).
///
/// §3.1: RV64IMAFDCV, 5-stage single-issue in-order pipeline, 32 KB 4-way
/// L1 D-cache with 64 B lines, **no L2**, fully associative 10-entry
/// D-uTLB, 128-entry 2-way jTLB, Sv39, forward/backward stride prefetch
/// with stride ≤ 16 lines, 1 GB DDR3L.
fn mango_pi() -> DeviceSpec {
    let freq = 1.0;
    DeviceSpec {
        name: "Mango Pi MQ-Pro (Allwinner D1, C906)".into(),
        isa: "RV64IMAFDCV".into(),
        cores: 1,
        core: CoreConfig::new("XuanTie C906", freq, 1, 0, 1.3),
        caches: vec![CacheConfig::new("L1D", 32 * 1024, 4, 64)
            .policy(ReplacementPolicy::Lru)
            .latency(3)
            .bytes_per_cycle(8.0)],
        prefetchers: vec![PrefetcherConfig::c906()],
        dtlb: TlbConfig::fully_associative("D-uTLB", 10),
        l2tlb: Some(TlbConfig::set_associative("jTLB", 128, 2).latency(5)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 30,
        },
        dram: DramConfig::from_gbps(150, 1.8, freq, 1),
        dram_capacity_bytes: 1 << 30,
        tlb_enabled: true,
    }
}

/// StarFive VisionFive v1 (JH7100, SiFive U74).
///
/// §3.1: RV64IMAFDCB, 8-stage dual-issue in-order pipeline, 32 KB 4-way
/// L1 D-cache with *random* replacement, 128 KB 8-way L2 with random
/// replacement, 40-entry fully associative DTLB, 512-entry direct-mapped
/// L2 TLB, stride prefetch with large strides and ramping distance,
/// 8 GB LPDDR4 behind a narrow channel (the paper highlights the low
/// DRAM bandwidth).
fn visionfive() -> DeviceSpec {
    let freq = 1.0;
    DeviceSpec {
        name: "StarFive VisionFive (JH7100, 2x U74)".into(),
        isa: "RV64IMAFDCB".into(),
        cores: 2,
        core: CoreConfig::new("SiFive U74", freq, 2, 0, 2.0),
        caches: vec![
            CacheConfig::new("L1D", 32 * 1024, 4, 64)
                .policy(ReplacementPolicy::Random)
                .latency(3)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L2", 128 * 1024, 8, 64)
                .policy(ReplacementPolicy::Random)
                .latency(14)
                .bytes_per_cycle(8.0),
        ],
        prefetchers: vec![PrefetcherConfig::u74(), PrefetcherConfig::None],
        dtlb: TlbConfig::fully_associative("DTLB", 40),
        l2tlb: Some(TlbConfig::direct_mapped("L2 TLB", 512).latency(8)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 30,
        },
        dram: DramConfig::from_gbps(140, 0.85, freq, 2),
        dram_capacity_bytes: 8 << 30,
        tlb_enabled: true,
    }
}

/// Raspberry Pi 4 model B (Broadcom BCM2711, Cortex-A72).
///
/// 4 cores @ up to 1.5 GHz, 32 KB 2-way L1 D-cache, 1 MB 16-way shared L2,
/// NEON (128-bit vectors), aggressive stream prefetcher, 4 GB LPDDR4.
fn raspberry_pi4() -> DeviceSpec {
    let freq = 1.5;
    DeviceSpec {
        name: "Raspberry Pi 4B (BCM2711, 4x Cortex-A72)".into(),
        isa: "ARMv8-A".into(),
        cores: 4,
        core: CoreConfig::new("Cortex-A72", freq, 3, 16, 6.0),
        caches: vec![
            CacheConfig::new("L1D", 32 * 1024, 2, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(4)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L2", 1024 * 1024, 16, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(25)
                .bytes_per_cycle(12.0)
                .shared(),
        ],
        prefetchers: vec![PrefetcherConfig::stream(8), PrefetcherConfig::None],
        dtlb: TlbConfig::fully_associative("L1 DTLB", 32),
        l2tlb: Some(TlbConfig::set_associative("L2 TLB", 512, 4).latency(7)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 40,
        },
        dram: DramConfig::from_gbps(200, 4.2, freq, 2),
        dram_capacity_bytes: 4 << 30,
        tlb_enabled: true,
    }
}

/// One socket of the Intel Xeon 4310T server (Ice Lake SP, 10 cores).
///
/// Wide out-of-order cores @ ~3 GHz with effective compiler
/// auto-vectorization (the paper's ×19 "Memory" blur speedup comes from
/// it), 48 KB 12-way L1D, 1.25 MB 20-way private L2, 15 MB shared L3,
/// multi-channel DDR4 (the paper credits the Xeon's parallel-blur
/// utilization gain to its larger memory-channel count).
fn xeon_4310t() -> DeviceSpec {
    let freq = 3.0;
    DeviceSpec {
        name: "Intel Xeon 4310T (Ice Lake, 10 cores, 1 socket)".into(),
        isa: "x86-64 (AVX)".into(),
        cores: 10,
        core: CoreConfig::new("Ice Lake SP", freq, 4, 32, 12.0),
        caches: vec![
            CacheConfig::new("L1D", 48 * 1024, 12, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(5)
                .bytes_per_cycle(64.0),
            CacheConfig::new("L2", 1280 * 1024, 20, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(14)
                .bytes_per_cycle(32.0),
            CacheConfig::new("L3", 15 * 1024 * 1024, 12, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(44)
                .bytes_per_cycle(40.0)
                .shared(),
        ],
        prefetchers: vec![
            PrefetcherConfig::stream(12),
            PrefetcherConfig::stream(16),
            PrefetcherConfig::None,
        ],
        dtlb: TlbConfig::set_associative("DTLB", 64, 4),
        l2tlb: Some(TlbConfig::set_associative("STLB", 2048, 8).latency(7)),
        walk: PageWalk {
            levels: 4,
            overhead_cycles: 35,
        },
        dram: DramConfig::from_gbps(270, 55.0, freq, 8),
        dram_capacity_bytes: 64 << 30,
        tlb_enabled: true,
    }
}

/// Sophon SG2044 (64× XuanTie C920 @ 2.6 GHz).
///
/// The "Is RISC-V ready for HPC?" class of part: 64 in-order RVA cores
/// behind a large shared LLC and multi-channel DDR. Per-channel
/// bandwidth contention is modelled ([`DramConfig::contended`]): with 64
/// cores the channel count, not the aggregate figure, bounds streaming
/// scalability. Vector codegen is left off, like the paper's RISC-V
/// boards: the C920's RVV 0.7.1 predates the ratified spec and mainline
/// compilers do not target it.
fn sophon_sg2044() -> DeviceSpec {
    let freq = 2.6;
    DeviceSpec {
        name: "Sophon SG2044 (64x XuanTie C920)".into(),
        isa: "RV64GCV (RVV 0.7.1)".into(),
        cores: 64,
        core: CoreConfig::new("XuanTie C920", freq, 2, 0, 4.0),
        caches: vec![
            CacheConfig::new("L1D", 64 * 1024, 4, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(4)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L2", 1024 * 1024, 8, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(16)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L3", 64 * 1024 * 1024, 16, 64)
                .policy(ReplacementPolicy::Lru)
                .latency(52)
                .bytes_per_cycle(64.0)
                .shared(),
        ],
        prefetchers: vec![
            PrefetcherConfig::stream(8),
            PrefetcherConfig::stream(12),
            PrefetcherConfig::None,
        ],
        dtlb: TlbConfig::set_associative("DTLB", 32, 4),
        l2tlb: Some(TlbConfig::set_associative("L2 TLB", 2048, 8).latency(8)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 35,
        },
        dram: DramConfig::from_gbps(280, 102.4, freq, 4).with_channel_contention(),
        dram_capacity_bytes: 128 << 30,
        tlb_enabled: true,
    }
}

/// Monte Cimone-style node (SiFive Freedom U740, 4 usable U74 cores).
///
/// The first RISC-V HPC cluster's compute SoC: the same U74
/// microarchitecture as the VisionFive (random-replacement caches, the
/// ramping-stride prefetcher) but with a 2 MB *shared* L2 and a single
/// DDR4 channel whose measured STREAM figure is far below the DDR4
/// nominal — the aggregate DRAM model fits a single channel exactly.
fn monte_cimone() -> DeviceSpec {
    let freq = 1.2;
    DeviceSpec {
        name: "Monte Cimone node (SiFive U740, 4x U74)".into(),
        isa: "RV64GC".into(),
        cores: 4,
        core: CoreConfig::new("SiFive U74", freq, 2, 0, 2.0),
        caches: vec![
            CacheConfig::new("L1D", 32 * 1024, 4, 64)
                .policy(ReplacementPolicy::Random)
                .latency(3)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L2", 2 * 1024 * 1024, 16, 64)
                .policy(ReplacementPolicy::Random)
                .latency(18)
                .bytes_per_cycle(16.0)
                .shared(),
        ],
        prefetchers: vec![PrefetcherConfig::u74(), PrefetcherConfig::None],
        dtlb: TlbConfig::fully_associative("DTLB", 40),
        l2tlb: Some(TlbConfig::direct_mapped("L2 TLB", 512).latency(8)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 30,
        },
        dram: DramConfig::from_gbps(180, 7.6, freq, 1),
        dram_capacity_bytes: 16 << 30,
        tlb_enabled: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn all_specs_are_structurally_valid() {
        for d in Device::all() {
            let spec = d.spec();
            // Machine::new runs the structural assertions.
            let _ = Machine::new(spec);
        }
    }

    #[test]
    fn paper_core_counts() {
        assert_eq!(Device::MangoPiMqPro.spec().cores, 1);
        assert_eq!(Device::StarFiveVisionFive.spec().cores, 2);
        assert_eq!(Device::RaspberryPi4.spec().cores, 4);
        assert_eq!(Device::IntelXeon4310T.spec().cores, 10);
        assert_eq!(Device::SophonSG2044.spec().cores, 64);
        assert_eq!(Device::MonteCimone.spec().cores, 4);
    }

    #[test]
    fn inventory_split_is_stable() {
        assert_eq!(Device::all().len(), 6);
        assert_eq!(
            Device::paper(),
            [
                Device::IntelXeon4310T,
                Device::RaspberryPi4,
                Device::MangoPiMqPro,
                Device::StarFiveVisionFive,
            ],
            "canonical figure sweeps depend on this exact order"
        );
        assert_eq!(Device::riscv().len(), 4);
        for d in Device::riscv() {
            assert!(Device::all().contains(d));
        }
    }

    #[test]
    fn mango_pi_has_no_l2() {
        assert_eq!(Device::MangoPiMqPro.spec().caches.len(), 1);
    }

    #[test]
    fn matching_is_loose_but_not_wrong() {
        assert_eq!(Device::matching("mango"), vec![Device::MangoPiMqPro]);
        assert_eq!(
            Device::matching("VisionFive"),
            vec![Device::StarFiveVisionFive]
        );
        assert_eq!(Device::matching("mango-pi"), vec![Device::MangoPiMqPro]);
        assert_eq!(Device::matching("Xeon"), vec![Device::IntelXeon4310T]);
        // "pi" is genuinely ambiguous and must say so by matching both.
        assert_eq!(Device::matching("pi").len(), 2, "Mango Pi + Raspberry Pi 4");
        assert!(Device::matching("gpu").is_empty());
        assert_eq!(Device::matching("").len(), 6, "empty filter matches all");
    }

    /// Regression for every label/preset-name alias a user might type:
    /// each must resolve through `select` to exactly one device.
    #[test]
    fn every_alias_selects_exactly_one_device() {
        let aliases = [
            ("mango", Device::MangoPiMqPro),
            ("mangopi", Device::MangoPiMqPro),
            ("MangoPiMqPro", Device::MangoPiMqPro),
            ("d1", Device::MangoPiMqPro),
            ("star", Device::StarFiveVisionFive),
            ("starfive", Device::StarFiveVisionFive),
            ("visionfive", Device::StarFiveVisionFive),
            ("jh7100", Device::StarFiveVisionFive),
            ("raspberry", Device::RaspberryPi4),
            ("RaspberryPi4", Device::RaspberryPi4),
            ("xeon", Device::IntelXeon4310T),
            ("intel", Device::IntelXeon4310T),
            ("4310", Device::IntelXeon4310T),
            ("sophon", Device::SophonSG2044),
            ("sg2044", Device::SophonSG2044),
            ("SophonSG2044", Device::SophonSG2044),
            ("monte", Device::MonteCimone),
            ("cimone", Device::MonteCimone),
            ("u740", Device::MonteCimone),
            ("MonteCimone", Device::MonteCimone),
        ];
        for (alias, want) in aliases {
            assert_eq!(
                Device::select(alias),
                Ok(vec![want]),
                "alias {alias:?} must resolve uniquely"
            );
        }
        // Full labels resolve to themselves, and so do enum names.
        for d in Device::all() {
            assert_eq!(Device::select(d.label()), Ok(vec![*d]), "{d}");
            assert_eq!(Device::select(&format!("{d:?}")), Ok(vec![*d]), "{d}");
        }
    }

    #[test]
    fn select_rejects_ambiguous_and_unknown_filters() {
        let err = Device::select("pi").unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
        assert!(err.contains("Mango Pi"), "{err}");
        assert!(err.contains("Raspberry Pi 4"), "{err}");

        let err = Device::select("").unwrap_err();
        assert!(err.contains("empty device filter"), "{err}");
        assert!(err.contains("Sophon SG2044"), "lists the inventory: {err}");

        let err = Device::select("gpu").unwrap_err();
        assert!(err.contains("no device matches"), "{err}");
        assert!(err.contains("Monte Cimone"), "lists the inventory: {err}");

        // One bad component poisons the whole set.
        assert!(Device::select("mango,pi").is_err());
    }

    #[test]
    fn select_exact_set_multi_select() {
        assert_eq!(
            Device::select("mango,xeon"),
            Ok(vec![Device::MangoPiMqPro, Device::IntelXeon4310T])
        );
        assert_eq!(
            Device::select(" sg2044 , monte "),
            Ok(vec![Device::SophonSG2044, Device::MonteCimone]),
            "whitespace around components is tolerated"
        );
    }

    #[test]
    fn u74_uses_random_replacement_everywhere() {
        let spec = Device::StarFiveVisionFive.spec();
        assert!(spec
            .caches
            .iter()
            .all(|c| c.replacement == ReplacementPolicy::Random));
    }

    #[test]
    fn dram_bandwidth_ordering_matches_the_paper() {
        // Fig. 1: Xeon >> Raspberry Pi > Mango Pi > StarFive at DRAM level.
        let g = |d: Device| d.spec().dram_gbps();
        assert!(g(Device::IntelXeon4310T) > g(Device::RaspberryPi4));
        assert!(g(Device::RaspberryPi4) > g(Device::MangoPiMqPro));
        assert!(g(Device::MangoPiMqPro) > g(Device::StarFiveVisionFive));
    }

    #[test]
    fn riscv_devices_have_no_vector_codegen() {
        for d in Device::riscv() {
            assert_eq!(d.spec().core.vector_bytes, 0, "{d}");
        }
    }

    #[test]
    fn tlb_geometries_match_the_paper() {
        let mango = Device::MangoPiMqPro.spec();
        assert_eq!(mango.dtlb.entries, 10);
        assert_eq!(mango.l2tlb.as_ref().unwrap().entries, 128);
        assert_eq!(mango.l2tlb.as_ref().unwrap().ways, 2);
        let vf = Device::StarFiveVisionFive.spec();
        assert_eq!(vf.dtlb.entries, 40);
        assert_eq!(vf.l2tlb.as_ref().unwrap().ways, 1, "direct-mapped");
        assert_eq!(vf.l2tlb.as_ref().unwrap().entries, 512);
    }

    #[test]
    fn labels_and_display() {
        for d in Device::all() {
            assert!(!d.label().is_empty());
            assert_eq!(d.to_string(), d.label());
        }
    }

    #[test]
    fn only_one_device_lacks_memory_for_16k_matrix() {
        let bytes = 16384u64 * 16384 * 8;
        let lacking: Vec<Device> = Device::all()
            .iter()
            .copied()
            .filter(|d| !d.spec().fits_in_memory(bytes))
            .collect();
        assert_eq!(lacking, vec![Device::MangoPiMqPro]);
    }

    #[test]
    fn modern_presets_model_their_headline_features() {
        let sg = Device::SophonSG2044.spec();
        assert!(sg.dram.contended, "SG2044 models channel contention");
        assert_eq!(sg.dram.channels, 4);
        assert!(
            sg.caches.last().unwrap().shared,
            "SG2044's LLC is shared across all 64 cores"
        );
        let mc = Device::MonteCimone.spec();
        assert!(!mc.dram.contended, "one channel: aggregate model fits");
        assert_eq!(mc.dram.channels, 1);
        assert!(mc.caches.last().unwrap().shared, "U740's L2 is shared");
        assert!(
            mc.caches
                .iter()
                .all(|c| c.replacement == ReplacementPolicy::Random),
            "U74 cores keep random replacement, as on the VisionFive"
        );
    }
}
