//! `membound-sim` — a trace-driven, cycle-approximate multicore
//! memory-hierarchy simulator.
//!
//! This crate is the hardware substitute for the reproduction of *"Case
//! Study for Running Memory-Bound Kernels on RISC-V CPUs"* (PACT 2023):
//! the paper's two RISC-V boards (and its ARM and x86 comparison machines)
//! are modelled as [`DeviceSpec`]s — caches, TLBs, hardware prefetchers,
//! DRAM channels and a coarse core-pipeline model — and kernels are
//! replayed against them as memory-reference traces.
//!
//! # Model summary
//!
//! * [`Cache`] — set-associative, write-back + write-allocate, pluggable
//!   [`ReplacementPolicy`] (the U74 really does use random replacement).
//! * [`Tlb`] + [`PageWalk`] — two TLB levels and an Sv39-style radix walk
//!   whose PTE loads are replayed through the data caches.
//! * [`Prefetcher`] — stride/stream detectors per cache level, matching
//!   the C906's ≤16-line stride prefetch and the U74's ramping-distance
//!   prefetch.
//! * [`CoreConfig`] — issue width, vector width and memory-level
//!   parallelism; converts `membound_trace::IterCost` into issue cycles
//!   and decides how much miss latency is exposed.
//! * [`DramConfig`] — latency + aggregate channel bandwidth.
//! * [`Machine`] — runs one trace stream per simulated core (fanning the
//!   replay out across host workers leased from a [`JobBudget`] when one
//!   is attached), partitions shared cache capacity, aligns barrier
//!   phases, and reports the limiting [`Bottleneck`] per phase.
//!
//! # Example
//!
//! ```
//! use membound_sim::{Device, Machine};
//! use membound_trace::TraceSink;
//!
//! // Stream 1 MiB through the Mango Pi model and look at the traffic.
//! let machine = Machine::new(Device::MangoPiMqPro.spec());
//! let report = machine.simulate(1, |_tid, sink| {
//!     for i in 0..(1 << 14) {
//!         sink.load(i * 64, 64);
//!     }
//! });
//! assert!(report.dram.bytes_read >= 1 << 20);
//! assert!(report.seconds > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fingerprint of the simulator's *semantics*: part of every persistent
/// result-cache key (`membound-core::cache`), so entries simulated by an
/// older model can never satisfy a lookup from a newer one.
///
/// The workspace version (synced to CHANGELOG.md releases since 0.5.0)
/// tracks API surface, not simulation semantics, so this is maintained
/// by hand: **bump it whenever a change to `membound-sim`,
/// `membound-trace` or the kernel trace generators migrates the
/// canonical figure digests** (the `combined_digest` baselines recorded
/// in `BENCH_sim.json`, which the value names as a cross-check). Purely
/// diagnostic fields (`host_workers`, wall times) do not require a bump
/// — they are excluded from `stats_digest` and therefore from cached
/// payload equality.
///
/// `sim-v2` is the fixed-point cycle migration (DESIGN.md §13): cycle
/// accounting moved from f64 accumulators to exact u64 subcycle
/// integers, changing every digest once.
pub const SIM_FINGERPRINT: &str = "sim-v2+f2:7bceab43d67f5ae3+f6:a232853937fe2c5d";

mod analytic;
mod assoc;
mod cache;
mod core;
mod devices;
mod dram;
pub mod future;
mod hierarchy;
mod machine;
mod prefetch;
mod replacement;
mod stats;
mod tlb;

pub use analytic::{estimate_coverage, Coverage};
pub use cache::{Cache, CacheAccessResult, CacheConfig};
pub use core::{CoreConfig, MAX_ISSUE_WIDTH, MAX_MLP};
pub use devices::Device;
pub use dram::DramConfig;
pub use hierarchy::{CorePipeline, PhaseAccum};
pub use machine::{
    analytic_default, set_analytic_override, Bottleneck, DeviceSpec, Machine, PhaseReport,
    SimReport,
};
// Re-exported so `Machine::with_budget` callers need no direct
// `membound-parallel` dependency.
pub use membound_parallel::JobBudget;
pub use prefetch::{Prefetcher, PrefetcherConfig};
pub use replacement::ReplacementPolicy;
pub use stats::{CycleBreakdown, DramStats, LevelStats, SUBCYCLE_ONE, SUBCYCLE_SHIFT};
pub use tlb::{PageWalk, Tlb, TlbConfig};
