//! The whole-device model: cores, shared levels, DRAM contention.

use crate::cache::CacheConfig;
use crate::core::CoreConfig;
use crate::dram::DramConfig;
use crate::hierarchy::{CoreOutcome, CorePipeline, PhaseAccum, PipelineConfig};
use crate::prefetch::PrefetcherConfig;
use crate::stats::{CycleBreakdown, DramStats, LevelStats};
use crate::tlb::{PageWalk, TlbConfig};
use membound_parallel::{JobBudget, Pool, Task};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Process-wide override for whether new [`Machine`]s default to analytic
/// execution: 0 = unset (consult `MEMBOUND_ANALYTIC`, default on),
/// 1 = forced off, 2 = forced on.
static ANALYTIC_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force the default analytic-execution setting for machines constructed
/// after this call: `Some(true)`/`Some(false)` pin it, `None` restores the
/// environment-driven default. Used by `--analytic`/`--no-analytic` CLI
/// flags; [`Machine::with_analytic`] still overrides per machine.
pub fn set_analytic_override(v: Option<bool>) {
    ANALYTIC_OVERRIDE.store(
        match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
}

/// The analytic-execution default a fresh [`Machine`] picks up: the
/// override if set, else the `MEMBOUND_ANALYTIC` environment variable
/// (`0`/`off`/`false`/`no` disable), else on.
#[must_use]
pub fn analytic_default() -> bool {
    match ANALYTIC_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => std::env::var("MEMBOUND_ANALYTIC")
            .map(|v| {
                !matches!(
                    v.to_ascii_lowercase().as_str(),
                    "0" | "off" | "false" | "no"
                )
            })
            .unwrap_or(true),
    }
}

/// Full static description of a device (one of the paper's four boards, or
/// a custom configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name ("Mango Pi MQ-Pro (Allwinner D1)").
    pub name: String,
    /// Instruction-set architecture ("RV64IMAFDCV", "ARMv8-A", ...).
    pub isa: String,
    /// Number of cores available to software.
    pub cores: u32,
    /// Core pipeline model (shared by all cores).
    pub core: CoreConfig,
    /// Cache levels, L1 data cache first.
    pub caches: Vec<CacheConfig>,
    /// One prefetcher per cache level ([`PrefetcherConfig::None`] to
    /// disable).
    pub prefetchers: Vec<PrefetcherConfig>,
    /// First-level data TLB.
    pub dtlb: TlbConfig,
    /// Unified second-level TLB, if present.
    pub l2tlb: Option<TlbConfig>,
    /// Page-walk model.
    pub walk: PageWalk,
    /// DRAM channel model.
    pub dram: DramConfig,
    /// Total DRAM capacity in bytes — workloads that do not fit are
    /// rejected, reproducing the paper's missing Mango Pi bars at 16384².
    pub dram_capacity_bytes: u64,
    /// Whether address translation is simulated (on by default; the
    /// ablation benches turn it off to isolate TLB effects).
    pub tlb_enabled: bool,
}

impl DeviceSpec {
    /// Peak DRAM bandwidth in GB/s implied by the model.
    #[must_use]
    pub fn dram_gbps(&self) -> f64 {
        self.dram.gbps_at(self.core.freq_ghz)
    }

    /// Whether a workload of `bytes` fits in device memory (leaving ~15%
    /// headroom for the OS, as on the real 1 GB Mango Pi).
    #[must_use]
    pub fn fits_in_memory(&self, bytes: u64) -> bool {
        (bytes as f64) <= self.dram_capacity_bytes as f64 * 0.85
    }

    /// Disable all hardware prefetchers (ablation helper).
    #[must_use]
    pub fn without_prefetchers(mut self) -> Self {
        for p in &mut self.prefetchers {
            *p = PrefetcherConfig::None;
        }
        self
    }

    /// Disable TLB/page-walk simulation (ablation helper).
    #[must_use]
    pub fn without_tlb(mut self) -> Self {
        self.tlb_enabled = false;
        self
    }
}

/// What limited a phase's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// A core's issue + stall cycles dominated (compute/latency bound).
    Core,
    /// A shared cache level's supply bandwidth dominated.
    SharedCache {
        /// Index of the limiting level (0 = L1, though L1 is never shared
        /// in the presets).
        level: usize,
    },
    /// Aggregate DRAM channel bandwidth dominated.
    Dram,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bottleneck::Core => write!(f, "core (issue/latency)"),
            Bottleneck::SharedCache { level } => write!(f, "shared L{} bandwidth", level + 1),
            Bottleneck::Dram => write!(f, "DRAM bandwidth"),
        }
    }
}

/// Timing and accounting of one simulated phase across all cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Duration of the phase in core cycles (the max over the competing
    /// constraints).
    pub cycles: f64,
    /// What the limiting constraint was.
    pub bottleneck: Bottleneck,
    /// Slowest core's own cycle count (issue + stall + private bandwidth).
    pub slowest_core_cycles: f64,
    /// DRAM occupancy of the phase in cycles.
    pub dram_occupancy_cycles: f64,
}

/// Result of simulating one kernel run on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Device name the run was simulated on.
    pub device: String,
    /// Number of software threads (= simulated cores used).
    pub threads: u32,
    /// Total simulated duration in core cycles.
    pub cycles: f64,
    /// Total simulated duration in seconds.
    pub seconds: f64,
    /// Per-phase timing (one entry when the kernel has no barriers).
    pub phases: Vec<PhaseReport>,
    /// Cache statistics per level, summed over cores.
    pub cache_stats: Vec<LevelStats>,
    /// First-level TLB statistics, summed over cores.
    pub dtlb_stats: LevelStats,
    /// Second-level TLB statistics, summed over cores.
    pub l2tlb_stats: Option<LevelStats>,
    /// DRAM traffic, summed over cores.
    pub dram: DramStats,
    /// Issue/stall totals summed over cores (diagnostic; wall-clock comes
    /// from `cycles`).
    pub core_cycles_total: CycleBreakdown,
    /// Host worker threads that replayed the simulated cores (1 when the
    /// replay ran serially). A host-side diagnostic like wall time: it
    /// depends on the [`membound_parallel::JobBudget`] and is excluded
    /// from [`SimReport::stats_digest`].
    pub host_workers: u32,
    /// Constant-stride batches the cores received through
    /// [`membound_trace::TraceSink::access_strided`] /
    /// [`membound_trace::TraceSink::access_strided_rmw`], summed over
    /// cores. A diagnostic of how much of the reference stream took the
    /// bulk path; like `host_workers` it describes *how* the replay ran,
    /// not what it simulated, and is excluded from
    /// [`SimReport::stats_digest`].
    pub strided_batches: u64,
    /// Elements the analytic executor advanced by steady-state
    /// multiplication instead of replaying (0 when analytic execution is
    /// off). Like `host_workers`, a diagnostic of *how* the replay ran —
    /// analytic fast-forward is digest-preserving by construction (see
    /// DESIGN.md §15) — so it is excluded from
    /// [`SimReport::stats_digest`].
    #[serde(default)]
    pub analytic_ops: u64,
    /// Elements replayed raw inside analytic-attempted ops whose
    /// steady state could not be proven (digest-excluded, like
    /// `analytic_ops`).
    #[serde(default)]
    pub replay_fallback_ops: u64,
}

impl SimReport {
    /// Achieved bandwidth for moving `nominal_bytes` of algorithmically
    /// required data, in GB/s — the numerator of the paper's §3.3 metric.
    #[must_use]
    pub fn achieved_gbps(&self, nominal_bytes: u64) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            nominal_bytes as f64 / self.seconds / 1e9
        }
    }

    /// The §3.3 relative memory-bandwidth-utilization metric:
    /// `(nominal_bytes / seconds) / stream_bandwidth`.
    ///
    /// `stream_gbps` is the DRAM bandwidth measured by the STREAM
    /// experiment on the same device.
    #[must_use]
    pub fn bandwidth_utilization(&self, nominal_bytes: u64, stream_gbps: f64) -> f64 {
        if stream_gbps <= 0.0 {
            0.0
        } else {
            self.achieved_gbps(nominal_bytes) / stream_gbps
        }
    }

    /// An FNV-1a digest over every *simulated* quantity in the report
    /// (cycles, per-level counters, DRAM traffic, phase structure) —
    /// everything host-independent. Replay-side diagnostics (wall time,
    /// which the report does not carry,
    /// [`host_workers`](SimReport::host_workers) and
    /// [`strided_batches`](SimReport::strided_batches)) are excluded: the
    /// digest must not change with the job budget or with how the
    /// reference stream was batched.
    ///
    /// The digest is *order-sensitive*: FNV-1a is fed the fields in one
    /// fixed, documented sequence, so it pins both the values and their
    /// arrangement (two reports with swapped counter values hash
    /// differently). The simulator is deterministic, so two runs of the
    /// same cell must produce the same digest no matter how the
    /// experiment engine scheduled them; the engine's serial-vs-parallel
    /// equivalence checks compare exactly this value. The core cycle
    /// totals are hashed as their exact u64 subcycle counters (DESIGN.md
    /// §13), so the digest pins a physical quantity rather than a
    /// summation order; the remaining floats (phase timings derived from
    /// those integers) are hashed by bit pattern (`f64::to_bits`), so
    /// even ULP-level divergence is caught.
    #[must_use]
    pub fn stats_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.device);
        h.u64(u64::from(self.threads));
        h.f64(self.cycles);
        h.f64(self.seconds);
        h.u64(self.phases.len() as u64);
        for phase in &self.phases {
            h.f64(phase.cycles);
            match phase.bottleneck {
                Bottleneck::Core => h.u64(0),
                Bottleneck::SharedCache { level } => {
                    h.u64(1);
                    h.u64(level as u64);
                }
                Bottleneck::Dram => h.u64(2),
            }
            h.f64(phase.slowest_core_cycles);
            h.f64(phase.dram_occupancy_cycles);
        }
        h.u64(self.cache_stats.len() as u64);
        for level in &self.cache_stats {
            h.level(level);
        }
        h.level(&self.dtlb_stats);
        match &self.l2tlb_stats {
            Some(l2) => {
                h.u64(1);
                h.level(l2);
            }
            None => h.u64(0),
        }
        h.u64(self.dram.bytes_read);
        h.u64(self.dram.bytes_written);
        h.u64(self.dram.reads);
        h.u64(self.dram.writes);
        h.u64(self.core_cycles_total.issue_subcycles);
        h.u64(self.core_cycles_total.stall_subcycles);
        h.finish()
    }
}

/// Minimal FNV-1a accumulator for [`SimReport::stats_digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn level(&mut self, level: &LevelStats) {
        self.u64(level.hits);
        self.u64(level.misses);
        self.u64(level.evictions);
        self.u64(level.writebacks);
        self.u64(level.prefetches_issued);
        self.u64(level.prefetch_hits);
        self.u64(level.fill_bytes);
        self.u64(level.writeback_bytes);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A device instance ready to run simulations.
///
/// # Example
///
/// ```
/// use membound_sim::{Device, Machine};
/// use membound_trace::TraceSink;
///
/// let machine = Machine::new(Device::StarFiveVisionFive.spec());
/// let report = machine.simulate(2, |tid, sink| {
///     // Each simulated core streams over its own half of an array.
///     let base = tid as u64 * (1 << 20);
///     for i in 0..4096u64 {
///         sink.load(base + i * 8, 8);
///     }
/// });
/// assert_eq!(report.threads, 2);
/// assert!(report.cycles > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    spec: DeviceSpec,
    fastpath: bool,
    analytic: bool,
    budget: JobBudget,
}

impl Machine {
    /// Wrap a device description.
    ///
    /// # Panics
    ///
    /// Panics if the spec is structurally inconsistent (no cache levels,
    /// prefetcher count mismatch, zero cores).
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        assert!(spec.cores > 0, "device needs at least one core");
        assert!(!spec.caches.is_empty(), "device needs at least an L1 cache");
        assert_eq!(
            spec.caches.len(),
            spec.prefetchers.len(),
            "one prefetcher slot per cache level"
        );
        Self {
            spec,
            fastpath: true,
            analytic: analytic_default(),
            budget: JobBudget::serial(),
        }
    }

    /// Disable the repeat-line fast path, forcing every reference through
    /// the full translate-and-probe flow.
    ///
    /// The fast path is digest-preserving by construction; this reference
    /// build exists so tests can *prove* it, by comparing
    /// [`SimReport::stats_digest`] of the same trace through both
    /// machines (see `tests/prop_fastpath.rs`). It is a property of the
    /// machine, not the device: [`DeviceSpec`] serialization is
    /// unaffected.
    #[must_use]
    pub fn without_fastpath(mut self) -> Self {
        self.fastpath = false;
        self
    }

    /// Enable or disable analytic (trace-IR fast-forward) execution on
    /// this machine, overriding [`analytic_default`]. Analytic execution
    /// is digest-preserving: `tests/prop_analytic.rs` proves
    /// [`SimReport::stats_digest`] identical with it on, off, and against
    /// the [`Machine::without_fastpath`] reference. The reference build
    /// never uses it (it requires the fast path).
    #[must_use]
    pub fn with_analytic(mut self, on: bool) -> Self {
        self.analytic = on;
        self
    }

    /// Whether this machine runs the analytic executor.
    #[must_use]
    pub fn analytic(&self) -> bool {
        self.analytic && self.fastpath
    }

    /// Attach a [`JobBudget`] so [`Machine::simulate`] may replay
    /// simulated cores on extra host workers leased from it.
    ///
    /// The default budget is [`JobBudget::serial`]: standalone machines
    /// replay every core on the caller's thread, exactly as before. The
    /// experiment engine passes its shared `--jobs` budget here so the
    /// per-cell and per-core parallel layers stay jointly bounded. The
    /// budget affects host wall time only — simulated results and
    /// [`SimReport::stats_digest`] are bit-identical for any budget.
    #[must_use]
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The wrapped device description.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Simulate a parallel region: `trace(tid, sink)` is called once per
    /// simulated core — concurrently on host workers leased from the
    /// machine's [`JobBudget`] when it grants any, on the calling thread
    /// otherwise — and must emit that core's references.
    ///
    /// Each simulated core replays into its own independent
    /// [`CorePipeline`], so the per-core replays never share mutable
    /// state; `trace` therefore only needs `Fn + Sync`, which every
    /// closure capturing its inputs by shared reference satisfies. The
    /// per-core outcomes are collected *in tid order* regardless of
    /// which host worker produced them and merged by one deterministic
    /// combine step, so [`SimReport::stats_digest`] is bit-identical
    /// between serial and fanned-out replay (see DESIGN.md §9).
    ///
    /// Shared cache levels are capacity-partitioned between the `threads`
    /// active cores (an approximation documented in DESIGN.md: the kernels
    /// under study share almost no data between threads). Phase boundaries
    /// (barriers) are aligned across cores; each phase lasts as long as its
    /// slowest core or its most contended shared resource.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the device's core count,
    /// or if `trace` panics (the panic message is forwarded once every
    /// in-flight core replay has finished).
    pub fn simulate<F>(&self, threads: u32, trace: F) -> SimReport
    where
        F: Fn(u32, &mut CorePipeline) + Sync,
    {
        assert!(threads > 0, "need at least one thread");
        assert!(
            threads <= self.spec.cores,
            "device {} has only {} cores (asked for {})",
            self.spec.name,
            self.spec.cores,
            threads
        );

        let caches: Vec<CacheConfig> = self
            .spec
            .caches
            .iter()
            .map(|c| {
                if c.shared {
                    c.partitioned(u64::from(threads))
                } else {
                    c.clone()
                }
            })
            .collect();

        let run_core = |tid: u32| -> CoreOutcome {
            let mut pipeline = CorePipeline::new(PipelineConfig {
                core: self.spec.core.clone(),
                caches: caches.clone(),
                prefetchers: self.spec.prefetchers.clone(),
                dtlb: self.spec.dtlb.clone(),
                l2tlb: self.spec.l2tlb.clone(),
                walk: self.spec.walk,
                dram: self.spec.dram,
                tlb_enabled: self.spec.tlb_enabled,
                fastpath: self.fastpath,
                analytic: self.analytic,
            });
            trace(tid, &mut pipeline);
            pipeline.finish()
        };

        // Lease extra workers beyond the calling thread; a dry budget
        // (or a single-core region) degrades to the serial loop.
        let lease = if threads > 1 {
            Some(self.budget.lease(threads - 1))
        } else {
            None
        };
        let workers = 1 + lease.as_ref().map_or(0, |l| l.granted());

        let (outcomes, host_workers) = if workers > 1 {
            let run_core = &run_core;
            let tasks: Vec<Task<'_, CoreOutcome>> = (0..threads)
                .map(|tid| {
                    let b: Task<'_, CoreOutcome> = Box::new(move || run_core(tid));
                    b
                })
                .collect();
            // `run_tasks` slots each outcome at its task's index, so the
            // collected vector is in tid order for any worker count. A
            // panicking core replay is contained per task; forward the
            // first message so callers observe the same panic they would
            // have seen from the serial loop.
            let outcomes = Pool::new(workers)
                .run_tasks(tasks)
                .into_iter()
                .map(|r| r.unwrap_or_else(|p| panic!("{}", p.message)))
                .collect();
            (outcomes, workers)
        } else {
            ((0..threads).map(run_core).collect(), 1)
        };
        drop(lease);

        let mut report = self.combine(threads, outcomes);
        report.host_workers = host_workers;
        report
    }

    fn combine(&self, threads: u32, outcomes: Vec<CoreOutcome>) -> SimReport {
        let n_levels = self.spec.caches.len();
        let n_phases = outcomes
            .iter()
            .map(|o| o.phases.len())
            .max()
            .unwrap_or(0)
            .max(1);
        let empty = PhaseAccum::new(n_levels);

        let mut phases = Vec::with_capacity(n_phases);
        let mut total_cycles = 0.0_f64;
        let n_channels = if self.spec.dram.contended {
            self.spec.dram.channels as usize
        } else {
            0
        };
        for p in 0..n_phases {
            let mut slowest_core = 0.0_f64;
            let mut shared_bytes = vec![0u64; n_levels + 1];
            let mut dram_bytes = 0u64;
            let mut channel_bytes = vec![0u64; n_channels];
            for o in &outcomes {
                let acc = o.phases.get(p).unwrap_or(&empty);
                // A core's own serial time: issue + stall, but no less than
                // the occupancy of its *private* buses. The f64 math here
                // is derived from the per-phase integer totals (exact for
                // sums below 2^53 subcycles), so it is independent of how
                // the phase's contributions were batched or reordered.
                let mut core_time = acc.cycles.total();
                for (j, &bytes) in acc.supply_bytes.iter().enumerate().skip(1) {
                    if j < n_levels && !self.spec.caches[j].shared {
                        let occ = bytes as f64 / self.spec.caches[j].bytes_per_cycle;
                        core_time = core_time.max(acc.cycles.issue_cycles() + occ);
                    } else if j < n_levels {
                        shared_bytes[j] += bytes;
                    }
                }
                dram_bytes += acc.dram.bytes_total();
                for (agg, &b) in channel_bytes.iter_mut().zip(&acc.channel_bytes) {
                    *agg += b;
                }
                slowest_core = slowest_core.max(core_time);
            }

            let mut phase_cycles = slowest_core;
            let mut bottleneck = Bottleneck::Core;
            for (j, &bytes) in shared_bytes.iter().enumerate() {
                if j < n_levels && bytes > 0 {
                    let occ = bytes as f64 / self.spec.caches[j].bytes_per_cycle;
                    if occ > phase_cycles {
                        phase_cycles = occ;
                        bottleneck = Bottleneck::SharedCache { level: j };
                    }
                }
            }
            // Contended devices are paced by their hottest channel; the
            // aggregate model (every paper board) is untouched.
            let dram_occ = if n_channels > 0 {
                self.spec.dram.channel_occupancy_cycles(&channel_bytes)
            } else {
                self.spec.dram.occupancy_cycles(dram_bytes)
            };
            if dram_occ > phase_cycles {
                phase_cycles = dram_occ;
                bottleneck = Bottleneck::Dram;
            }

            total_cycles += phase_cycles;
            phases.push(PhaseReport {
                cycles: phase_cycles,
                bottleneck,
                slowest_core_cycles: slowest_core,
                dram_occupancy_cycles: dram_occ,
            });
        }

        // Aggregate statistics.
        let mut cache_stats = vec![LevelStats::default(); n_levels];
        let mut dtlb_stats = LevelStats::default();
        let mut l2tlb_stats: Option<LevelStats> =
            self.spec.l2tlb.as_ref().map(|_| LevelStats::default());
        let mut dram = DramStats::default();
        let mut core_cycles_total = CycleBreakdown::default();
        let mut strided_batches = 0u64;
        let mut analytic_ops = 0u64;
        let mut replay_fallback_ops = 0u64;
        for o in &outcomes {
            strided_batches += o.strided_batches;
            analytic_ops = analytic_ops.saturating_add(o.analytic_ops);
            replay_fallback_ops = replay_fallback_ops.saturating_add(o.replay_fallback_ops);
            for (agg, s) in cache_stats.iter_mut().zip(&o.cache_stats) {
                agg.merge(s);
            }
            dtlb_stats.merge(&o.dtlb_stats);
            if let (Some(agg), Some(s)) = (l2tlb_stats.as_mut(), o.l2tlb_stats.as_ref()) {
                agg.merge(s);
            }
            for ph in &o.phases {
                dram.merge(&ph.dram);
                core_cycles_total.merge(&ph.cycles);
            }
        }

        SimReport {
            device: self.spec.name.clone(),
            threads,
            cycles: total_cycles,
            seconds: self.spec.core.cycles_to_seconds(total_cycles),
            phases,
            cache_stats,
            dtlb_stats,
            l2tlb_stats,
            dram,
            core_cycles_total,
            host_workers: 1,
            strided_batches,
            analytic_ops,
            replay_fallback_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Device;
    use membound_trace::TraceSink;

    fn sweep(sink: &mut CorePipeline, base: u64, lines: u64) {
        for i in 0..lines {
            sink.load(base + i * 64, 64);
        }
    }

    #[test]
    fn single_core_report_is_positive_and_consistent() {
        let m = Machine::new(Device::MangoPiMqPro.spec());
        let r = m.simulate(1, |_, s| sweep(s, 0, 4096));
        assert!(r.cycles > 0.0);
        assert!(r.seconds > 0.0);
        assert_eq!(r.phases.len(), 1);
        assert!(r.dram.bytes_read >= 4096 * 64);
    }

    #[test]
    fn stats_digest_is_deterministic_and_sensitive() {
        let m = Machine::new(Device::MangoPiMqPro.spec());
        let a = m.simulate(1, |_, s| sweep(s, 0, 4096));
        let b = m.simulate(1, |_, s| sweep(s, 0, 4096));
        assert_eq!(a.stats_digest(), b.stats_digest());

        let mut tweaked = a.clone();
        tweaked.dram.bytes_read += 1;
        assert_ne!(a.stats_digest(), tweaked.stats_digest());

        let mut tweaked = a.clone();
        tweaked.cycles += 1.0;
        assert_ne!(a.stats_digest(), tweaked.stats_digest());
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn oversubscription_rejected() {
        let m = Machine::new(Device::MangoPiMqPro.spec());
        let _ = m.simulate(2, |_, _| {});
    }

    /// Prefetch-defeating large-stride walk: latency-bound, core-limited.
    fn strided(sink: &mut CorePipeline, base: u64, count: u64) {
        for i in 0..count {
            sink.load(base + i * 8192, 8);
        }
    }

    #[test]
    fn bandwidth_bound_sweep_does_not_scale_with_cores() {
        // On the VisionFive a pure streaming sweep saturates the narrow
        // DRAM channel already at one core — exactly the §4.3 observation
        // that parallel speedup is limited by memory channels.
        let m = Machine::new(Device::StarFiveVisionFive.spec());
        let one = m.simulate(1, |_, s| sweep(s, 0, 1 << 16));
        let two = m.simulate(2, |tid, s| {
            sweep(s, u64::from(tid) * (1 << 30), 1 << 15);
        });
        let ratio = one.cycles / two.cycles;
        assert!(
            (0.8..1.6).contains(&ratio),
            "DRAM-bound work must not scale: ratio {ratio}"
        );
    }

    #[test]
    fn compute_bound_work_scales_with_cores() {
        use membound_trace::IterCost;
        let m = Machine::new(Device::RaspberryPi4.spec());
        let cost = IterCost::new(4, 2).mem(1, 0);
        let one = m.simulate(1, |_, s| {
            sweep(s, 0, 64);
            s.compute(cost, 1 << 20);
        });
        let four = m.simulate(4, |tid, s| {
            sweep(s, u64::from(tid) << 32, 16);
            s.compute(cost, 1 << 18);
        });
        let speedup = one.cycles / four.cycles;
        assert!(
            speedup > 3.0,
            "compute-bound work should scale with cores: speedup {speedup}"
        );
        assert_eq!(four.phases[0].bottleneck, Bottleneck::Core);
    }

    #[test]
    fn dram_bound_sweep_reports_dram_bottleneck() {
        let m = Machine::new(Device::StarFiveVisionFive.spec());
        let r = m.simulate(2, |tid, s| {
            sweep(s, u64::from(tid) * (1 << 30), 1 << 15);
        });
        assert_eq!(r.phases[0].bottleneck, Bottleneck::Dram, "{r:?}");
    }

    #[test]
    fn phases_align_across_cores() {
        let m = Machine::new(Device::RaspberryPi4.spec());
        let r = m.simulate(4, |tid, s| {
            sweep(s, u64::from(tid) << 30, 256);
            s.barrier();
            sweep(s, (u64::from(tid) + 16) << 30, 256);
        });
        // Two populated phases plus the (possibly empty) trailing one.
        assert!(r.phases.len() >= 2);
        assert!(r.phases[0].cycles > 0.0);
        assert!(r.phases[1].cycles > 0.0);
    }

    #[test]
    fn imbalanced_work_sets_the_pace() {
        let m = Machine::new(Device::RaspberryPi4.spec());
        let balanced = m.simulate(2, |tid, s| strided(s, u64::from(tid) << 32, 2048));
        let imbalanced = m.simulate(2, |tid, s| {
            let count = if tid == 0 { 4096 } else { 0 };
            strided(s, u64::from(tid) << 32, count);
        });
        assert!(
            imbalanced.cycles > balanced.cycles * 1.5,
            "all work on one core must be slower: {} vs {}",
            imbalanced.cycles,
            balanced.cycles
        );
    }

    #[test]
    fn report_bandwidth_metrics() {
        let m = Machine::new(Device::IntelXeon4310T.spec());
        let r = m.simulate(1, |_, s| sweep(s, 0, 1 << 16));
        let nominal = (1u64 << 16) * 64;
        let gbps = r.achieved_gbps(nominal);
        assert!(gbps > 0.0);
        let util = r.bandwidth_utilization(nominal, gbps);
        assert!((util - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_capacity_check() {
        let spec = Device::MangoPiMqPro.spec();
        assert!(spec.fits_in_memory(512 << 20));
        assert!(
            !spec.fits_in_memory(16384u64 * 16384 * 8),
            "16384^2 doubles must not fit on the 1 GB Mango Pi"
        );
    }

    #[test]
    fn sim_report_serializes_and_round_trips() {
        let m = Machine::new(Device::MangoPiMqPro.spec());
        let r = m.simulate(1, |_, s| sweep(s, 0, 128));
        let json = serde_json::to_string(&r).expect("reports serialize");
        let back: SimReport = serde_json::from_str(&json).expect("reports deserialize");
        assert_eq!(r, back);
        assert!(json.contains("bottleneck"));
    }

    #[test]
    fn device_spec_serializes_and_round_trips() {
        for d in Device::all() {
            let spec = d.spec();
            let json = serde_json::to_string(&spec).expect("specs serialize");
            let back: DeviceSpec = serde_json::from_str(&json).expect("specs deserialize");
            assert_eq!(spec, back, "{d}");
        }
    }

    #[test]
    fn bottleneck_display_is_informative() {
        assert!(Bottleneck::Dram.to_string().contains("DRAM"));
        assert!(Bottleneck::Core.to_string().contains("core"));
        assert!(Bottleneck::SharedCache { level: 2 }
            .to_string()
            .contains("L3"));
    }

    #[test]
    fn budgeted_fanout_matches_serial_digest_and_reports_workers() {
        let m = Machine::new(Device::RaspberryPi4.spec());
        let serial = m.simulate(4, |tid, s| {
            sweep(s, u64::from(tid) << 30, 2048);
            s.barrier();
            strided(s, (u64::from(tid) + 8) << 30, 512);
        });
        assert_eq!(serial.host_workers, 1);

        let budget = JobBudget::new(4);
        let parallel = m.clone().with_budget(budget.clone()).simulate(4, |tid, s| {
            sweep(s, u64::from(tid) << 30, 2048);
            s.barrier();
            strided(s, (u64::from(tid) + 8) << 30, 512);
        });
        assert_eq!(parallel.host_workers, 4, "own thread + 3 leased");
        assert_eq!(serial.stats_digest(), parallel.stats_digest());
        assert_eq!(
            budget.available(),
            4,
            "leased workers must return to the budget"
        );
    }

    #[test]
    fn dry_budget_degrades_to_serial_replay() {
        let m = Machine::new(Device::StarFiveVisionFive.spec()).with_budget(JobBudget::serial());
        let r = m.simulate(2, |tid, s| sweep(s, u64::from(tid) << 30, 64));
        assert_eq!(r.host_workers, 1);
    }

    #[test]
    fn single_core_region_never_leases_workers() {
        let budget = JobBudget::new(8);
        let m = Machine::new(Device::MangoPiMqPro.spec()).with_budget(budget.clone());
        let r = m.simulate(1, |_, s| sweep(s, 0, 64));
        assert_eq!(r.host_workers, 1);
        assert_eq!(budget.available(), 8);
    }

    #[test]
    fn core_panic_is_forwarded_from_the_fanout() {
        let m = Machine::new(Device::RaspberryPi4.spec()).with_budget(JobBudget::new(4));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.simulate(4, |tid, s| {
                sweep(s, u64::from(tid) << 30, 16);
                assert!(tid != 2, "core 2 exploded");
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("core 2 exploded"), "{msg:?}");
    }

    #[test]
    fn channel_contention_paces_by_the_hottest_channel() {
        let aggregate = Device::StarFiveVisionFive.spec();
        let mut contended = aggregate.clone();
        contended.dram = contended.dram.with_channel_contention();
        let run = |spec: &DeviceSpec, line_stride: u64| {
            Machine::new(spec.clone()).simulate(2, |tid, s| {
                let base = u64::from(tid) << 30;
                for i in 0..(1u64 << 13) {
                    s.load(base + i * 64 * line_stride, 64);
                }
            })
        };

        // Consecutive lines interleave evenly over the two channels:
        // the contended model agrees with the aggregate one.
        let a = run(&aggregate, 1);
        let c = run(&contended, 1);
        let ratio =
            c.phases[0].dram_occupancy_cycles / a.phases[0].dram_occupancy_cycles;
        assert!(
            (ratio - 1.0).abs() < 0.01,
            "even traffic must not be penalized: ratio {ratio}"
        );

        // A stride of two lines lands everything on one channel: the
        // hottest channel holds half the bandwidth, so occupancy doubles.
        let a = run(&aggregate, 2);
        let c = run(&contended, 2);
        let ratio =
            c.phases[0].dram_occupancy_cycles / a.phases[0].dram_occupancy_cycles;
        assert!(
            ratio > 1.9,
            "single-channel traffic must pay the per-channel bandwidth: ratio {ratio}"
        );
    }

    #[test]
    fn ablation_helpers_strip_features() {
        let spec = Device::StarFiveVisionFive
            .spec()
            .without_prefetchers()
            .without_tlb();
        assert!(spec
            .prefetchers
            .iter()
            .all(|p| *p == PrefetcherConfig::None));
        assert!(!spec.tlb_enabled);
    }
}
