//! DRAM channel model.

use serde::{Deserialize, Serialize};

/// DRAM timing and bandwidth, expressed in core cycles so the whole device
/// model shares one clock.
///
/// # Example
///
/// ```
/// use membound_sim::DramConfig;
///
/// // A 1 GHz core in front of ~1.6 GB/s DDR3L (Mango Pi MQ-Pro):
/// let dram = DramConfig::new(160, 1.6, 1);
/// assert!((dram.gbps_at(1.0) - 1.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Idle-load latency of a line fetch, in core cycles.
    pub latency_cycles: u32,
    /// Aggregate sustained bandwidth across all channels, in bytes per
    /// core cycle.
    pub bytes_per_cycle: f64,
    /// Number of independent memory channels (reported in the device table
    /// and used by the §4.3 discussion of parallel-speedup limits).
    pub channels: u32,
    /// Whether per-channel bandwidth contention is modelled: lines are
    /// interleaved over channels by line address, each channel supplies
    /// `bytes_per_cycle / channels`, and a phase lasts as long as its
    /// most-loaded channel. Off (the default, and for every paper board)
    /// the aggregate-bandwidth model applies — the two are identical
    /// when traffic spreads evenly, so existing digests are unaffected.
    #[serde(default)]
    pub contended: bool,
}

impl DramConfig {
    /// Create a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive/finite or `channels` is zero.
    #[must_use]
    pub fn new(latency_cycles: u32, bytes_per_cycle: f64, channels: u32) -> Self {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "DRAM bandwidth must be positive"
        );
        assert!(channels > 0, "DRAM needs at least one channel");
        Self {
            latency_cycles,
            bytes_per_cycle,
            channels,
            contended: false,
        }
    }

    /// Enable per-channel bandwidth contention (see
    /// [`DramConfig::contended`]). Many-core presets with several narrow
    /// channels use this; the paper boards keep the aggregate model.
    #[must_use]
    pub fn with_channel_contention(mut self) -> Self {
        self.contended = true;
        self
    }

    /// Convenience: build from a bandwidth in GB/s and a core frequency in
    /// GHz (`bytes_per_cycle = GBps / GHz`).
    ///
    /// # Panics
    ///
    /// Panics if either quantity is not positive/finite or `channels` is 0.
    #[must_use]
    pub fn from_gbps(latency_cycles: u32, gbps: f64, freq_ghz: f64, channels: u32) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency must be positive"
        );
        Self::new(latency_cycles, gbps / freq_ghz, channels)
    }

    /// The modelled peak bandwidth in GB/s at the given core frequency.
    #[must_use]
    pub fn gbps_at(&self, freq_ghz: f64) -> f64 {
        self.bytes_per_cycle * freq_ghz
    }

    /// Cycles of channel occupancy for transferring `bytes`.
    #[must_use]
    pub fn occupancy_cycles(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_cycle
    }

    /// Cycles the most-loaded channel is occupied moving `channel_bytes`
    /// (one entry per channel), each channel supplying an equal
    /// `bytes_per_cycle / channels` share of the aggregate bandwidth.
    /// Always ≥ [`DramConfig::occupancy_cycles`] of the summed bytes,
    /// with equality exactly when traffic spreads evenly.
    #[must_use]
    pub fn channel_occupancy_cycles(&self, channel_bytes: &[u64]) -> f64 {
        let per_channel_bw = self.bytes_per_cycle / f64::from(self.channels);
        channel_bytes
            .iter()
            .map(|&b| b as f64 / per_channel_bw)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_gbps_converts() {
        let d = DramConfig::from_gbps(200, 60.0, 3.0, 8);
        assert!((d.bytes_per_cycle - 20.0).abs() < 1e-12);
        assert!((d.gbps_at(3.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_is_linear_in_bytes() {
        let d = DramConfig::new(100, 2.0, 1);
        assert!((d.occupancy_cycles(64) - 32.0).abs() < 1e-12);
        assert!((d.occupancy_cycles(128) - 64.0).abs() < 1e-12);
    }

    #[test]
    fn channel_occupancy_is_governed_by_the_hottest_channel() {
        let d = DramConfig::new(100, 4.0, 4).with_channel_contention();
        assert!(d.contended);
        // Even spread: identical to the aggregate model.
        let even = d.channel_occupancy_cycles(&[64, 64, 64, 64]);
        assert!((even - d.occupancy_cycles(256)).abs() < 1e-12);
        // All traffic on one channel: 4x slower than the aggregate model.
        let skewed = d.channel_occupancy_cycles(&[256, 0, 0, 0]);
        assert!((skewed - 4.0 * d.occupancy_cycles(256)).abs() < 1e-9);
    }

    #[test]
    fn contended_flag_defaults_to_off_on_deserialize() {
        // Pre-contention device JSON (no `contended` key) must still
        // deserialize, and must land on the aggregate model.
        let legacy = r#"{"latency_cycles":100,"bytes_per_cycle":2.0,"channels":2}"#;
        let back: DramConfig = serde_json::from_str(legacy).unwrap();
        assert!(!back.contended);
        // And the flag round-trips when set.
        let on = DramConfig::new(100, 2.0, 2).with_channel_contention();
        let json = serde_json::to_string(&on).unwrap();
        assert!(json.contains("contended"), "{json}");
        let back: DramConfig = serde_json::from_str(&json).unwrap();
        assert!(back.contended);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DramConfig::new(100, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = DramConfig::new(100, 1.0, 0);
    }
}
