//! DRAM channel model.

use serde::{Deserialize, Serialize};

/// DRAM timing and bandwidth, expressed in core cycles so the whole device
/// model shares one clock.
///
/// # Example
///
/// ```
/// use membound_sim::DramConfig;
///
/// // A 1 GHz core in front of ~1.6 GB/s DDR3L (Mango Pi MQ-Pro):
/// let dram = DramConfig::new(160, 1.6, 1);
/// assert!((dram.gbps_at(1.0) - 1.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Idle-load latency of a line fetch, in core cycles.
    pub latency_cycles: u32,
    /// Aggregate sustained bandwidth across all channels, in bytes per
    /// core cycle.
    pub bytes_per_cycle: f64,
    /// Number of independent memory channels (reported in the device table
    /// and used by the §4.3 discussion of parallel-speedup limits).
    pub channels: u32,
}

impl DramConfig {
    /// Create a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive/finite or `channels` is zero.
    #[must_use]
    pub fn new(latency_cycles: u32, bytes_per_cycle: f64, channels: u32) -> Self {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "DRAM bandwidth must be positive"
        );
        assert!(channels > 0, "DRAM needs at least one channel");
        Self {
            latency_cycles,
            bytes_per_cycle,
            channels,
        }
    }

    /// Convenience: build from a bandwidth in GB/s and a core frequency in
    /// GHz (`bytes_per_cycle = GBps / GHz`).
    ///
    /// # Panics
    ///
    /// Panics if either quantity is not positive/finite or `channels` is 0.
    #[must_use]
    pub fn from_gbps(latency_cycles: u32, gbps: f64, freq_ghz: f64, channels: u32) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency must be positive"
        );
        Self::new(latency_cycles, gbps / freq_ghz, channels)
    }

    /// The modelled peak bandwidth in GB/s at the given core frequency.
    #[must_use]
    pub fn gbps_at(&self, freq_ghz: f64) -> f64 {
        self.bytes_per_cycle * freq_ghz
    }

    /// Cycles of channel occupancy for transferring `bytes`.
    #[must_use]
    pub fn occupancy_cycles(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_gbps_converts() {
        let d = DramConfig::from_gbps(200, 60.0, 3.0, 8);
        assert!((d.bytes_per_cycle - 20.0).abs() < 1e-12);
        assert!((d.gbps_at(3.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_is_linear_in_bytes() {
        let d = DramConfig::new(100, 2.0, 1);
        assert!((d.occupancy_cycles(64) - 32.0).abs() < 1e-12);
        assert!((d.occupancy_cycles(128) - 64.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DramConfig::new(100, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = DramConfig::new(100, 1.0, 0);
    }
}
