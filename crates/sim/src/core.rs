//! Core (pipeline) timing model.
//!
//! The model is deliberately coarse: it answers "how many cycles does the
//! front-end need to issue this loop?" and "how much of a miss's latency
//! does the core actually eat?". §3.1 of the paper gives the pipeline
//! shapes we encode: the C906 is a 5-stage single-issue in-order core, the
//! U74 an 8-stage dual-issue in-order core, the Cortex-A72 a 3-wide
//! out-of-order core, and the Ice Lake server core a wide out-of-order
//! design with effective auto-vectorization.

use membound_trace::IterCost;
use serde::{Deserialize, Serialize};

/// Static description of one core's execution resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Microarchitecture name ("XuanTie C906", ...).
    pub name: String,
    /// Clock frequency in GHz; converts cycles to seconds.
    pub freq_ghz: f64,
    /// Instructions issued per cycle (scalar slots).
    pub issue_width: u32,
    /// Vector register width in bytes; `0` disables vectorization (the
    /// paper compiled plain C for the RISC-V boards — no RVV codegen).
    pub vector_bytes: u32,
    /// Memory-level parallelism: how many outstanding misses the core
    /// sustains, i.e. the divisor applied to miss latency. In-order cores
    /// sit near 1; big out-of-order cores reach 8–16.
    pub mlp: f64,
}

impl CoreConfig {
    /// Create a core model.
    ///
    /// # Panics
    ///
    /// Panics if frequency or MLP is not positive/finite, or issue width
    /// is zero.
    #[must_use]
    pub fn new(name: &str, freq_ghz: f64, issue_width: u32, vector_bytes: u32, mlp: f64) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency must be positive"
        );
        assert!(issue_width > 0, "issue width must be nonzero");
        assert!(mlp.is_finite() && mlp >= 1.0, "MLP must be at least 1");
        Self {
            name: name.to_owned(),
            freq_ghz,
            issue_width,
            vector_bytes,
            mlp,
        }
    }

    /// How many loop iterations one vector operation covers for the given
    /// cost descriptor (1 when the loop is not vectorizable or the core has
    /// no vector unit).
    #[must_use]
    pub fn vector_factor(&self, cost: &IterCost) -> u32 {
        if cost.vectorizable && self.vector_bytes > 0 {
            (self.vector_bytes / cost.elem_bytes.max(1)).max(1)
        } else {
            1
        }
    }

    /// Front-end cycles needed to issue `iters` iterations of a loop with
    /// per-iteration cost `cost`.
    ///
    /// Vectorizable loops retire `vector_factor` iterations per pass over
    /// the loop body; the body's op count is charged once per pass.
    #[must_use]
    pub fn issue_cycles(&self, cost: &IterCost, iters: u64) -> f64 {
        let vf = u64::from(self.vector_factor(cost));
        let passes = iters.div_ceil(vf);
        let slots = passes as f64 * f64::from(cost.total_ops());
        slots / f64::from(self.issue_width)
    }

    /// The portion of a `latency`-cycle miss the core stalls for, after
    /// memory-level parallelism overlaps the rest.
    #[must_use]
    pub fn exposed_latency(&self, latency: u32) -> f64 {
        f64::from(latency) / self.mlp
    }

    /// Convert core cycles to seconds.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_core() -> CoreConfig {
        CoreConfig::new("test-inorder", 1.0, 1, 0, 1.0)
    }

    fn vector_core() -> CoreConfig {
        CoreConfig::new("test-ooo", 2.0, 4, 32, 8.0)
    }

    #[test]
    fn scalar_issue_is_ops_over_width() {
        let cost = IterCost::new(2, 1).mem(1, 1); // 5 slots/iter
        let c = scalar_core();
        assert!((c.issue_cycles(&cost, 100) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn wider_issue_divides() {
        let cost = IterCost::new(2, 1).mem(1, 1);
        let c = CoreConfig::new("w2", 1.0, 2, 0, 1.0);
        assert!((c.issue_cycles(&cost, 100) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn vectorization_reduces_passes() {
        // 8-byte elements in a 32-byte vector: 4 iterations per pass.
        let cost = IterCost::new(2, 2)
            .mem(2, 1)
            .elem_bytes(8)
            .vectorizable(true);
        let c = vector_core();
        assert_eq!(c.vector_factor(&cost), 4);
        // 100 iters -> 25 passes x 7 slots / 4-wide = 43.75 cycles.
        assert!((c.issue_cycles(&cost, 100) - 43.75).abs() < 1e-9);
    }

    #[test]
    fn non_vectorizable_loop_ignores_vector_unit() {
        let cost = IterCost::new(2, 2).mem(2, 1);
        assert_eq!(vector_core().vector_factor(&cost), 1);
    }

    #[test]
    fn scalar_core_ignores_vectorizable_flag() {
        let cost = IterCost::new(1, 1).vectorizable(true);
        assert_eq!(scalar_core().vector_factor(&cost), 1);
    }

    #[test]
    fn f32_elements_double_the_vector_factor() {
        let cost = IterCost::new(1, 1).elem_bytes(4).vectorizable(true);
        assert_eq!(vector_core().vector_factor(&cost), 8);
    }

    #[test]
    fn exposed_latency_divided_by_mlp() {
        assert!((scalar_core().exposed_latency(100) - 100.0).abs() < 1e-9);
        assert!((vector_core().exposed_latency(100) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        assert!((scalar_core().cycles_to_seconds(1e9) - 1.0).abs() < 1e-12);
        assert!((vector_core().cycles_to_seconds(1e9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_final_vector_pass_rounds_up() {
        let cost = IterCost::new(0, 1).elem_bytes(8).vectorizable(true);
        let c = vector_core(); // vf = 4
                               // 10 iters -> 3 passes.
        assert!((c.issue_cycles(&cost, 10) - 3.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "MLP must be at least 1")]
    fn sub_one_mlp_rejected() {
        let _ = CoreConfig::new("bad", 1.0, 1, 0, 0.5);
    }
}
