//! Core (pipeline) timing model.
//!
//! The model is deliberately coarse: it answers "how many cycles does the
//! front-end need to issue this loop?" and "how much of a miss's latency
//! does the core actually eat?". §3.1 of the paper gives the pipeline
//! shapes we encode: the C906 is a 5-stage single-issue in-order core, the
//! U74 an 8-stage dual-issue in-order core, the Cortex-A72 a 3-wide
//! out-of-order core, and the Ice Lake server core a wide out-of-order
//! design with effective auto-vectorization.

use crate::stats::{SUBCYCLE_ONE, SUBCYCLE_SHIFT};
use membound_trace::IterCost;
use serde::{Deserialize, Serialize};

/// Largest MLP divisor the fixed-point cycle unit can represent without
/// quantizing a 1-cycle latency to zero subcycles (`latency * 2^16 / mlp`
/// rounds to 0 once `mlp` exceeds `2 * 2^16 * latency`); configs beyond
/// it are clamped at load time with a one-time warning.
pub const MAX_MLP: f64 = SUBCYCLE_ONE as f64;

/// Largest issue width the fixed-point unit can charge a single slot
/// against (`2^16 / width` truncates to 0 past it); clamped like
/// [`MAX_MLP`].
pub const MAX_ISSUE_WIDTH: u32 = SUBCYCLE_ONE as u32;

/// Static description of one core's execution resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Microarchitecture name ("XuanTie C906", ...).
    pub name: String,
    /// Clock frequency in GHz; converts cycles to seconds.
    pub freq_ghz: f64,
    /// Instructions issued per cycle (scalar slots).
    pub issue_width: u32,
    /// Vector register width in bytes; `0` disables vectorization (the
    /// paper compiled plain C for the RISC-V boards — no RVV codegen).
    pub vector_bytes: u32,
    /// Memory-level parallelism: how many outstanding misses the core
    /// sustains, i.e. the divisor applied to miss latency. In-order cores
    /// sit near 1; big out-of-order cores reach 8–16.
    pub mlp: f64,
}

impl CoreConfig {
    /// Create a core model.
    ///
    /// Values of `mlp` above [`MAX_MLP`] or `issue_width` above
    /// [`MAX_ISSUE_WIDTH`] would quantize per-access cycle charges to
    /// zero in the fixed-point unit; they are clamped to the maximum with
    /// a one-time stderr warning (the presets sit orders of magnitude
    /// below the bounds).
    ///
    /// # Panics
    ///
    /// Panics if frequency or MLP is not positive/finite, or issue width
    /// is zero.
    #[must_use]
    pub fn new(name: &str, freq_ghz: f64, issue_width: u32, vector_bytes: u32, mlp: f64) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency must be positive"
        );
        assert!(issue_width > 0, "issue width must be nonzero");
        assert!(mlp.is_finite() && mlp >= 1.0, "MLP must be at least 1");
        let (issue_width, mlp) = Self::clamp_for_subcycles(name, issue_width, mlp);
        Self {
            name: name.to_owned(),
            freq_ghz,
            issue_width,
            vector_bytes,
            mlp,
        }
    }

    /// Clamp `issue_width`/`mlp` into the range the 1/2^16-cycle unit
    /// resolves, warning once per process when a config is out of range.
    fn clamp_for_subcycles(name: &str, issue_width: u32, mlp: f64) -> (u32, f64) {
        if u64::from(issue_width) <= SUBCYCLE_ONE && mlp <= MAX_MLP {
            return (issue_width, mlp);
        }
        static CLAMPED: std::sync::Once = std::sync::Once::new();
        CLAMPED.call_once(|| {
            eprintln!(
                "warning: core {name:?} has issue_width {issue_width} / mlp {mlp} beyond \
                 what the 1/2^16-cycle fixed-point unit resolves; clamping to \
                 issue_width <= {MAX_ISSUE_WIDTH}, mlp <= {MAX_MLP}"
            );
        });
        (issue_width.min(MAX_ISSUE_WIDTH), mlp.min(MAX_MLP))
    }

    /// How many loop iterations one vector operation covers for the given
    /// cost descriptor (1 when the loop is not vectorizable or the core has
    /// no vector unit).
    #[must_use]
    pub fn vector_factor(&self, cost: &IterCost) -> u32 {
        if cost.vectorizable && self.vector_bytes > 0 {
            (self.vector_bytes / cost.elem_bytes.max(1)).max(1)
        } else {
            1
        }
    }

    /// Front-end time needed to issue `iters` iterations of a loop with
    /// per-iteration cost `cost`, in exact 1/2^16-cycle subcycle units
    /// (`slots * 2^16 / issue_width`, truncating — the only quantization
    /// point; accumulating the returned values is exact integer math).
    ///
    /// Vectorizable loops retire `vector_factor` iterations per pass over
    /// the loop body; the body's op count is charged once per pass.
    #[must_use]
    pub fn issue_subcycles(&self, cost: &IterCost, iters: u64) -> u64 {
        let vf = u64::from(self.vector_factor(cost));
        let slots = u128::from(iters.div_ceil(vf)) * u128::from(cost.total_ops());
        ((slots << SUBCYCLE_SHIFT) / u128::from(self.issue_width)) as u64
    }

    /// [`CoreConfig::issue_subcycles`] converted to cycles — a derived
    /// f64 view of the fixed-point charge, never accumulated.
    #[must_use]
    pub fn issue_cycles(&self, cost: &IterCost, iters: u64) -> f64 {
        self.issue_subcycles(cost, iters) as f64 / SUBCYCLE_ONE as f64
    }

    /// The portion of a `latency`-cycle miss the core stalls for after
    /// memory-level parallelism overlaps the rest, in subcycle units
    /// (`round(latency * 2^16 / mlp)` — quantized once here, at
    /// configuration time, so per-miss accumulation stays exact).
    #[must_use]
    pub fn exposed_subcycles(&self, latency: u32) -> u64 {
        ((f64::from(latency) * SUBCYCLE_ONE as f64) / self.mlp).round() as u64
    }

    /// [`CoreConfig::exposed_subcycles`] converted to cycles — a derived
    /// f64 view, never accumulated.
    #[must_use]
    pub fn exposed_latency(&self, latency: u32) -> f64 {
        self.exposed_subcycles(latency) as f64 / SUBCYCLE_ONE as f64
    }

    /// Convert core cycles to seconds.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_core() -> CoreConfig {
        CoreConfig::new("test-inorder", 1.0, 1, 0, 1.0)
    }

    fn vector_core() -> CoreConfig {
        CoreConfig::new("test-ooo", 2.0, 4, 32, 8.0)
    }

    #[test]
    fn scalar_issue_is_ops_over_width() {
        let cost = IterCost::new(2, 1).mem(1, 1); // 5 slots/iter
        let c = scalar_core();
        assert_eq!(c.issue_subcycles(&cost, 100), 500 * SUBCYCLE_ONE);
        assert_eq!(c.issue_cycles(&cost, 100), 500.0);
    }

    #[test]
    fn wider_issue_divides() {
        let cost = IterCost::new(2, 1).mem(1, 1);
        let c = CoreConfig::new("w2", 1.0, 2, 0, 1.0);
        assert_eq!(c.issue_subcycles(&cost, 100), 250 * SUBCYCLE_ONE);
    }

    #[test]
    fn vectorization_reduces_passes() {
        // 8-byte elements in a 32-byte vector: 4 iterations per pass.
        let cost = IterCost::new(2, 2)
            .mem(2, 1)
            .elem_bytes(8)
            .vectorizable(true);
        let c = vector_core();
        assert_eq!(c.vector_factor(&cost), 4);
        // 100 iters -> 25 passes x 7 slots / 4-wide = 43.75 cycles,
        // representable exactly in quarter-cycles (and so in subcycles).
        assert_eq!(c.issue_subcycles(&cost, 100), 175 * SUBCYCLE_ONE / 4);
        assert_eq!(c.issue_cycles(&cost, 100), 43.75);
    }

    /// An issue width that does not divide 2^16 (the Cortex-A72's 3)
    /// truncates at the documented quantization point and nowhere else:
    /// the charge for `k` calls equals `k` times the per-call constant.
    #[test]
    fn non_power_of_two_issue_width_truncates_once_per_call() {
        let cost = IterCost::new(0, 1); // 1 slot/iter
        let c = CoreConfig::new("w3", 1.0, 3, 0, 1.0);
        let one = c.issue_subcycles(&cost, 1);
        assert_eq!(one, SUBCYCLE_ONE / 3); // 21845, truncated
        let mut acc = 0u64;
        for _ in 0..300 {
            acc += c.issue_subcycles(&cost, 1);
        }
        assert_eq!(acc, 300 * one, "accumulation is exact integer math");
    }

    #[test]
    fn non_vectorizable_loop_ignores_vector_unit() {
        let cost = IterCost::new(2, 2).mem(2, 1);
        assert_eq!(vector_core().vector_factor(&cost), 1);
    }

    #[test]
    fn scalar_core_ignores_vectorizable_flag() {
        let cost = IterCost::new(1, 1).vectorizable(true);
        assert_eq!(scalar_core().vector_factor(&cost), 1);
    }

    #[test]
    fn f32_elements_double_the_vector_factor() {
        let cost = IterCost::new(1, 1).elem_bytes(4).vectorizable(true);
        assert_eq!(vector_core().vector_factor(&cost), 8);
    }

    #[test]
    fn exposed_latency_divided_by_mlp() {
        assert_eq!(scalar_core().exposed_subcycles(100), 100 * SUBCYCLE_ONE);
        assert_eq!(vector_core().exposed_subcycles(100), 25 * SUBCYCLE_ONE / 2);
        assert_eq!(scalar_core().exposed_latency(100), 100.0);
        assert_eq!(vector_core().exposed_latency(100), 12.5);
    }

    /// A fractional MLP (the C906's 1.3) rounds the per-miss constant
    /// once; the constant is then reused verbatim for every miss.
    #[test]
    fn fractional_mlp_quantizes_once_at_config_time() {
        let c = CoreConfig::new("c906-like", 1.0, 1, 0, 1.3);
        let want = (150.0 * SUBCYCLE_ONE as f64 / 1.3).round() as u64;
        assert_eq!(c.exposed_subcycles(150), want);
        assert_eq!(c.exposed_subcycles(150), c.exposed_subcycles(150));
    }

    #[test]
    fn out_of_range_mlp_and_issue_width_clamp_with_warning() {
        let c = CoreConfig::new("absurd", 1.0, u32::MAX, 0, 1e12);
        assert_eq!(c.issue_width, MAX_ISSUE_WIDTH);
        assert_eq!(c.mlp, MAX_MLP);
        // The clamped extremes still resolve to nonzero charges.
        assert_eq!(c.exposed_subcycles(1), 1);
        assert_eq!(c.issue_subcycles(&IterCost::new(0, 1), 1), 1);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        assert!((scalar_core().cycles_to_seconds(1e9) - 1.0).abs() < 1e-12);
        assert!((vector_core().cycles_to_seconds(1e9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_final_vector_pass_rounds_up() {
        let cost = IterCost::new(0, 1).elem_bytes(8).vectorizable(true);
        let c = vector_core(); // vf = 4
                               // 10 iters -> 3 passes / 4-wide = 0.75 cycles.
        assert_eq!(c.issue_subcycles(&cost, 10), 3 * SUBCYCLE_ONE / 4);
    }

    #[test]
    #[should_panic(expected = "MLP must be at least 1")]
    fn sub_one_mlp_rejected() {
        let _ = CoreConfig::new("bad", 1.0, 1, 0, 0.5);
    }
}
