//! Hardware data-prefetcher models.
//!
//! §3.1 of the paper describes three distinct prefetchers:
//!
//! * **C906** (Mango Pi): "two prefetch methods: forward and backward
//!   consecutive and stride-based prefetch with stride less or equal 16
//!   cache lines";
//! * **U74** (VisionFive): "forward and backward stride-based prefetch with
//!   large strides and automatically increased prefetch distance";
//! * the A72 and Ice Lake cores have conventional aggressive stream
//!   prefetchers.
//!
//! We model all of them as a table of stride trackers over cache-line
//! addresses with configurable maximum stride, degree and optional
//! distance ramping. The model is PC-less (traces carry no program
//! counter), so streams are matched by address proximity.

use serde::{Deserialize, Serialize};

/// Configuration of a per-cache-level prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrefetcherConfig {
    /// No prefetching at this level.
    None,
    /// Always prefetch the next `degree` sequential lines after an access
    /// (the C906's instruction-side behaviour; also an ablation point).
    NextLine {
        /// Lines fetched ahead.
        degree: u32,
    },
    /// Stride detector with a stream table.
    Stride {
        /// Largest detectable stride, in lines (C906: 16).
        max_stride_lines: u32,
        /// Maximum prefetch distance, in strides ahead.
        degree: u32,
        /// Ramp the distance up as confidence grows (U74 behaviour) instead
        /// of jumping straight to `degree`.
        ramp: bool,
        /// Number of concurrent streams tracked.
        streams: u32,
    },
}

impl PrefetcherConfig {
    /// The C906 data prefetcher: forward/backward, stride ≤ 16 lines.
    #[must_use]
    pub fn c906() -> Self {
        PrefetcherConfig::Stride {
            max_stride_lines: 16,
            degree: 2,
            ramp: false,
            streams: 4,
        }
    }

    /// The U74 data prefetcher: large strides, ramping distance.
    #[must_use]
    pub fn u74() -> Self {
        PrefetcherConfig::Stride {
            max_stride_lines: 256,
            degree: 8,
            ramp: true,
            streams: 8,
        }
    }

    /// A conventional aggressive stream prefetcher (A72 / Ice Lake).
    #[must_use]
    pub fn stream(degree: u32) -> Self {
        PrefetcherConfig::Stride {
            max_stride_lines: 32,
            degree,
            ramp: true,
            streams: 16,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_line: u64,
    stride: i64,
    confidence: u32,
    last_used: u64,
    valid: bool,
}

impl StreamEntry {
    const INVALID: StreamEntry = StreamEntry {
        last_line: 0,
        stride: 0,
        confidence: 0,
        last_used: 0,
        valid: false,
    };
}

/// Runtime state of one prefetcher.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    config: PrefetcherConfig,
    table: Vec<StreamEntry>,
    clock: u64,
    /// Table index whose entry ended the last [`Prefetcher::observe`] with
    /// `last_line` equal to the observed line (matched or freshly
    /// allocated). Lets [`Prefetcher::refresh_repeat`] replay a same-line
    /// re-observation without rescanning the table.
    last_match: Option<usize>,
    /// Slots claimed by the most recent allocations, oldest at
    /// `ring_head` — the deterministic victim rotation the fused batch
    /// update relies on (see [`Prefetcher::observe`]).
    alloc_ring: Vec<usize>,
    ring_head: usize,
    /// Length of the trailing run of *consecutive* allocations whose
    /// observed lines advance by one constant delta (`streak_delta`,
    /// defined once the run has two members). Same-line refreshes of the
    /// newest entry are transparent to the run; any match resets it.
    const_streak: u32,
    streak_delta: i64,
    streak_line: u64,
    /// Slot of the most recent allocation (distinguishes a transparent
    /// same-line refresh from a run-breaking match of an older entry).
    last_alloc_slot: Option<usize>,
}

impl Prefetcher {
    /// Build a prefetcher from its configuration.
    #[must_use]
    pub fn new(config: PrefetcherConfig) -> Self {
        let streams = match config {
            PrefetcherConfig::Stride { streams, .. } => streams as usize,
            _ => 0,
        };
        Self {
            config,
            table: vec![StreamEntry::INVALID; streams],
            clock: 0,
            last_match: None,
            alloc_ring: vec![0; streams],
            ring_head: 0,
            const_streak: 0,
            streak_delta: 0,
            streak_line: 0,
            last_alloc_slot: None,
        }
    }

    /// The configuration this prefetcher was built from.
    #[must_use]
    pub fn config(&self) -> PrefetcherConfig {
        self.config
    }

    /// Replay an observation of the *same* line as the previous
    /// [`Prefetcher::observe`] call, without scanning the stream table.
    ///
    /// A same-line re-observation advances the clock and refreshes the
    /// recency of the entry the previous observation matched (its
    /// `last_line` equals the line, so the rescan would find it with a
    /// zero delta and emit no predictions); entries ahead of it in scan
    /// order were non-matching then and are unchanged since. The
    /// per-reference fast path in `CorePipeline` uses this to keep repeat
    /// touches bit-identical to the full path without the table walk.
    pub fn refresh_repeat(&mut self) {
        self.clock += 1;
        if let Some(i) = self.last_match {
            self.table[i].last_used = self.clock;
        }
    }

    /// Is this prefetcher *frozen* relative to `base` — bitwise identical
    /// with an equal clock? Every mutator ([`Prefetcher::observe`],
    /// [`Prefetcher::refresh_repeat`]) advances the clock, so clock
    /// equality proves the prefetcher was never consulted across the
    /// interval; its table (which may hold stale in-window lines from a
    /// cold start) is inert and must stay at absolute values under
    /// fast-forward rather than being shifted.
    pub(crate) fn ff_frozen_eq(&self, base: &Prefetcher) -> bool {
        self.config == base.config
            && self.clock == base.clock
            && self.last_match == base.last_match
            && self.alloc_ring == base.alloc_ring
            && self.ring_head == base.ring_head
            && self.const_streak == base.const_streak
            && self.streak_delta == base.streak_delta
            && self.streak_line == base.streak_line
            && self.last_alloc_slot == base.last_alloc_slot
            && self.table.len() == base.table.len()
            && self.table.iter().zip(&base.table).all(|(a, b)| {
                a.valid == b.valid
                    && a.last_line == b.last_line
                    && a.stride == b.stride
                    && a.confidence == b.confidence
                    && a.last_used == b.last_used
            })
    }

    /// Compare against `base` under the line isomorphism `map` — the
    /// fast-forward verification primitive. Equivalence means every future
    /// observation behaves identically modulo `map`:
    ///
    /// * per-slot fields compare positionally (the match scan breaks at
    ///   the first hit, so slot order is behaviour);
    /// * `last_line`/`streak_line` compare `map`-ped — deltas to future
    ///   (equally mapped) observations are preserved;
    /// * `confidence` compares capped at the value past which behaviour
    ///   is constant (`degree + 1` when ramping, else 2), and
    ///   `const_streak` capped at the run-owns-table threshold — below
    ///   the cap both still compare exactly;
    /// * `last_used` compares by global pairwise *order* (invalid slots
    ///   scan as key 0), which is all the LRU victim scan consumes;
    /// * the clock is excluded (monotone, never read directly).
    pub(crate) fn ff_shift_eq<F: Fn(u64) -> u64>(&self, base: &Prefetcher, map: F) -> bool {
        if self.config != base.config
            || self.table.len() != base.table.len()
            || self.last_match != base.last_match
            || self.alloc_ring != base.alloc_ring
            || self.ring_head != base.ring_head
            || self.streak_delta != base.streak_delta
            || self.last_alloc_slot != base.last_alloc_slot
        {
            return false;
        }
        let streak_cap = self.table.len().max(2) as u32;
        if self.const_streak.min(streak_cap) != base.const_streak.min(streak_cap) {
            return false;
        }
        // `streak_line` is only read on the alloc path. A chunk with no
        // allocation leaves it *frozen* (exact-equal), and — since
        // allocation occurrence is itself determined by the compared
        // state — no extrapolated chunk allocates either, so frozen is a
        // consistent evolution. A chunk that did allocate rewrote it from
        // an in-window line, so it must compare `map`-ped.
        if self.streak_line != base.streak_line && self.streak_line != map(base.streak_line) {
            return false;
        }
        let conf_cap = match self.config {
            PrefetcherConfig::Stride { degree, ramp, .. } => {
                if ramp {
                    degree.saturating_add(1)
                } else {
                    2
                }
            }
            _ => u32::MAX,
        };
        for (cur, old) in self.table.iter().zip(&base.table) {
            if cur.valid != old.valid {
                return false;
            }
            if cur.valid
                && (cur.last_line != map(old.last_line)
                    || cur.stride != old.stride
                    || cur.confidence.min(conf_cap) != old.confidence.min(conf_cap))
            {
                return false;
            }
        }
        let scan_key = |t: &[StreamEntry], i: usize| if t[i].valid { t[i].last_used } else { 0 };
        for i in 0..self.table.len() {
            for j in i + 1..self.table.len() {
                let (a1, a2) = (scan_key(&self.table, i), scan_key(&self.table, j));
                let (b1, b2) = (scan_key(&base.table, i), scan_key(&base.table, j));
                if (a1 < a2) != (b1 < b2) || (a1 > a2) != (b1 > b2) {
                    return false;
                }
            }
        }
        true
    }

    /// Apply the line isomorphism `map` to every tracked line (the
    /// fast-forward state advance). Slot order, recency and confidence are
    /// untouched — `map` moves lines, not slots. `base` is the verified
    /// pre-chunk snapshot: a `streak_line` that did not change across the
    /// verified chunk is frozen (no allocation happened, so none will)
    /// and must stay at its absolute value.
    pub(crate) fn ff_shift_lines<F: Fn(u64) -> u64>(&mut self, base: &Prefetcher, map: F) {
        for e in &mut self.table {
            if e.valid {
                e.last_line = map(e.last_line);
            }
        }
        if self.streak_line != base.streak_line {
            self.streak_line = map(self.streak_line);
        }
    }

    /// Observe a demand access to `line` and append predicted line
    /// addresses to `out`. The caller decides whether each prediction
    /// results in a fill (it skips lines already resident).
    pub fn observe(&mut self, line: u64, out: &mut Vec<u64>) {
        self.clock += 1;
        self.last_match = None;
        match self.config {
            PrefetcherConfig::None => {}
            PrefetcherConfig::NextLine { degree } => {
                for d in 1..=u64::from(degree) {
                    out.push(line + d);
                }
            }
            PrefetcherConfig::Stride {
                max_stride_lines,
                degree,
                ramp,
                ..
            } => {
                let max_stride = i64::from(max_stride_lines);
                // Fused batch update: once `streams` consecutive
                // allocations advanced by one constant delta, every table
                // entry is a line of that run (each allocation claimed the
                // LRU slot, which was provably not yet a run slot), and the
                // next same-delta observation cannot match any of them —
                // its delta to the k-th most recent run line is k·delta,
                // and |delta| > max_stride or it would have matched instead
                // of allocating. The scan outcome is therefore forced:
                // allocate the oldest run slot, which the ring tracks in
                // claim order. Skip the scan entirely.
                let run_owns_table = self.const_streak as usize >= self.table.len().max(2);
                if run_owns_table
                    && (line as i64).wrapping_sub(self.streak_line as i64) == self.streak_delta
                {
                    let victim = self.alloc_ring[self.ring_head];
                    // Every run-owned slot was itself written by a run
                    // allocation, so `stride == 0`, `confidence == 0` and
                    // `valid` already hold — only the line and recency
                    // actually change.
                    let e = &mut self.table[victim];
                    debug_assert!(e.valid && e.stride == 0 && e.confidence == 0);
                    e.last_line = line;
                    e.last_used = self.clock;
                    self.last_match = Some(victim);
                    self.last_alloc_slot = Some(victim);
                    self.ring_head += 1;
                    if self.ring_head == self.alloc_ring.len() {
                        self.ring_head = 0;
                    }
                    self.const_streak = self.const_streak.saturating_add(1);
                    self.streak_line = line;
                    return;
                }
                // Find the tracker this access extends: previous line within
                // max_stride in either direction. The same pass tracks the
                // least-recently-used slot so a failed match allocates
                // without rescanning (when no tracker matches, the loop has
                // covered the whole table, so `oldest` is exact).
                let mut found = None;
                // Plain-value first-minimum tracking (same result as the
                // previous `Option` fold, compare-and-select per entry).
                let mut oldest_i = 0usize;
                let mut oldest_key = u64::MAX;
                for (i, e) in self.table.iter().enumerate() {
                    let key = if e.valid { e.last_used } else { 0 };
                    if key < oldest_key {
                        oldest_key = key;
                        oldest_i = i;
                    }
                    if !e.valid {
                        continue;
                    }
                    let delta = line as i64 - e.last_line as i64;
                    if delta != 0 && delta.abs() <= max_stride {
                        found = Some((i, delta));
                        break;
                    }
                    if delta == 0 {
                        // Same line touched again: refresh recency, no
                        // stride information.
                        found = Some((i, 0));
                        break;
                    }
                }
                match found {
                    Some((i, 0)) => {
                        self.table[i].last_used = self.clock;
                        self.last_match = Some(i);
                        // Refreshing the *newest* allocation only bumps its
                        // recency (already the maximum), so a live
                        // allocation run survives it; any other match
                        // breaks the run.
                        if self.last_alloc_slot != Some(i) {
                            self.const_streak = 0;
                        }
                    }
                    Some((i, delta)) => {
                        self.const_streak = 0;
                        self.last_match = Some(i);
                        let e = &mut self.table[i];
                        if delta == e.stride {
                            e.confidence += 1;
                        } else {
                            e.stride = delta;
                            e.confidence = 1;
                        }
                        e.last_line = line;
                        e.last_used = self.clock;
                        if e.confidence >= 2 {
                            let dist = if ramp {
                                degree.min(e.confidence - 1)
                            } else {
                                degree
                            };
                            for d in 1..=i64::from(dist) {
                                let target = line as i64 + e.stride * d;
                                if target >= 0 {
                                    out.push(target as u64);
                                }
                            }
                        }
                    }
                    None => {
                        // Allocate the least-recently-used tracker
                        // (preselected during the match scan above).
                        if !self.table.is_empty() {
                            let i = oldest_i;
                            self.table[i] = StreamEntry {
                                last_line: line,
                                stride: 0,
                                confidence: 0,
                                last_used: self.clock,
                                valid: true,
                            };
                            self.last_match = Some(i);
                            // Track the allocation run. A delta of zero is
                            // impossible here (the previous allocation's
                            // line is still resident and would have
                            // matched), so `streak_delta` is a genuine
                            // stride once the run has two members.
                            self.alloc_ring[self.ring_head] = i;
                            self.ring_head += 1;
                            if self.ring_head == self.alloc_ring.len() {
                                self.ring_head = 0;
                            }
                            let delta = (line as i64).wrapping_sub(self.streak_line as i64);
                            if self.const_streak >= 2 && delta == self.streak_delta {
                                self.const_streak += 1;
                            } else if self.const_streak >= 1 {
                                self.streak_delta = delta;
                                self.const_streak = 2;
                            } else {
                                self.const_streak = 1;
                            }
                            self.streak_line = line;
                            self.last_alloc_slot = Some(i);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut Prefetcher, lines: &[u64]) -> Vec<Vec<u64>> {
        lines
            .iter()
            .map(|&l| {
                let mut out = Vec::new();
                p.observe(l, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn none_never_predicts() {
        let mut p = Prefetcher::new(PrefetcherConfig::None);
        let preds = drive(&mut p, &[0, 1, 2, 3]);
        assert!(preds.iter().all(Vec::is_empty));
    }

    #[test]
    fn next_line_predicts_sequentially() {
        let mut p = Prefetcher::new(PrefetcherConfig::NextLine { degree: 2 });
        let mut out = Vec::new();
        p.observe(10, &mut out);
        assert_eq!(out, vec![11, 12]);
    }

    #[test]
    fn forward_unit_stride_detected_after_two_deltas() {
        let mut p = Prefetcher::new(PrefetcherConfig::c906());
        let preds = drive(&mut p, &[100, 101, 102, 103]);
        assert!(preds[0].is_empty(), "first touch allocates");
        assert!(preds[1].is_empty(), "one delta: confidence 1");
        assert_eq!(preds[2], vec![103, 104], "two equal deltas: prefetch");
        assert_eq!(preds[3], vec![104, 105]);
    }

    #[test]
    fn backward_stride_detected() {
        let mut p = Prefetcher::new(PrefetcherConfig::c906());
        let preds = drive(&mut p, &[100, 99, 98]);
        assert_eq!(preds[2], vec![97, 96], "backward consecutive prefetch");
    }

    #[test]
    fn large_stride_beyond_c906_limit_not_detected() {
        let mut p = Prefetcher::new(PrefetcherConfig::c906());
        // Stride of 20 lines exceeds the 16-line limit.
        let preds = drive(&mut p, &[0, 20, 40, 60, 80]);
        assert!(
            preds.iter().all(Vec::is_empty),
            "C906 must not track strides > 16 lines: {preds:?}"
        );
    }

    #[test]
    fn large_stride_detected_by_u74() {
        let mut p = Prefetcher::new(PrefetcherConfig::u74());
        let preds = drive(&mut p, &[0, 100, 200, 300]);
        assert_eq!(preds[2], vec![300], "ramp starts at distance 1");
        assert_eq!(preds[3], vec![400, 500], "distance ramps up");
    }

    #[test]
    fn ramping_caps_at_degree() {
        let mut p = Prefetcher::new(PrefetcherConfig::Stride {
            max_stride_lines: 4,
            degree: 3,
            ramp: true,
            streams: 4,
        });
        let lines: Vec<u64> = (0..10).collect();
        let preds = drive(&mut p, &lines);
        assert!(preds[9].len() <= 3, "distance must cap at degree");
        assert_eq!(preds[9], vec![10, 11, 12]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = Prefetcher::new(PrefetcherConfig::Stride {
            max_stride_lines: 16,
            degree: 2,
            ramp: false,
            streams: 4,
        });
        let preds = drive(&mut p, &[0, 1, 2, 4, 6]);
        assert_eq!(preds[2], vec![3, 4]); // unit stride confirmed
        assert!(
            preds[3].is_empty(),
            "stride changed 1->2: confidence resets"
        );
        assert_eq!(preds[4], vec![8, 10], "new stride confirmed");
    }

    #[test]
    fn multiple_streams_tracked_independently() {
        let mut p = Prefetcher::new(PrefetcherConfig::u74());
        // Interleave two unit-stride streams far apart.
        let mut out = Vec::new();
        for i in 0..4u64 {
            out.clear();
            p.observe(1000 + i, &mut out);
            let a = out.clone();
            out.clear();
            p.observe(900_000 + i, &mut out);
            let b = out.clone();
            if i >= 2 {
                assert!(!a.is_empty(), "stream A at step {i}");
                assert!(!b.is_empty(), "stream B at step {i}");
            }
        }
    }

    #[test]
    fn repeated_same_line_does_not_predict() {
        let mut p = Prefetcher::new(PrefetcherConfig::c906());
        let preds = drive(&mut p, &[5, 5, 5, 5]);
        assert!(preds.iter().all(Vec::is_empty));
    }

    /// `refresh_repeat` must leave the prefetcher in exactly the state a
    /// full same-line `observe` would — for matched, updated and freshly
    /// allocated entries alike — so later predictions are identical.
    #[test]
    fn refresh_repeat_matches_a_full_same_line_observe() {
        // Exercise allocation (first touch), stride update and same-line
        // refresh paths, each followed by repeats, then let recency decide
        // a table eviction: the LRU slot choice depends on `last_used`, so
        // any drift shows up in the prediction stream.
        let sequences: &[&[u64]] = &[
            &[7, 7, 7],
            &[10, 11, 11, 12, 12, 12, 13],
            &[0, 100, 100, 5, 5, 205, 205, 310, 310, 415, 415, 1],
        ];
        for seq in sequences {
            let mut fast = Prefetcher::new(PrefetcherConfig::Stride {
                max_stride_lines: 16,
                degree: 2,
                ramp: true,
                streams: 3,
            });
            let mut slow = fast.clone();
            let mut last: Option<u64> = None;
            for &line in *seq {
                let mut out_fast = Vec::new();
                let mut out_slow = Vec::new();
                slow.observe(line, &mut out_slow);
                if last == Some(line) {
                    fast.refresh_repeat();
                    assert!(out_slow.is_empty(), "repeat must not predict");
                } else {
                    fast.observe(line, &mut out_fast);
                    assert_eq!(out_fast, out_slow, "preds diverged at {line}");
                }
                last = Some(line);
            }
            // Future behaviour must be identical too.
            for probe in [2u64, 18, 34, 50] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                fast.observe(probe, &mut a);
                slow.observe(probe, &mut b);
                assert_eq!(a, b, "divergence after {seq:?} at {probe}");
            }
        }
    }

    #[test]
    fn negative_targets_clipped() {
        let mut p = Prefetcher::new(PrefetcherConfig::c906());
        let preds = drive(&mut p, &[3, 2, 1]);
        // Prefetch targets 0 and -1; only 0 survives.
        assert_eq!(preds[2], vec![0]);
    }
}
