//! Speculative device models for the paper's outlook questions.
//!
//! The paper closes on RISC-V's prospects ("the prospects look quite
//! real"), and §3.1 notes hardware the benchmarks never exploited — the
//! C906's 512-bit vector unit sat idle because GCC 12 emitted scalar
//! code. The models here quantify those what-ifs:
//!
//! * [`with_vectorization`] — any device with a given vector width
//!   enabled in the core model (an ideal RVV-autovectorizing compiler);
//! * [`visionfive2`] — the StarFive VisionFive 2 (JH7110), the direct
//!   successor of the paper's VisionFive: four U74 cores at 1.5 GHz, a
//!   2 MB shared L2 and commodity DDR4;
//! * [`riscv_server_class`] — a BOOM/SonicBOOM-class out-of-order RISC-V
//!   core scaled to server frequencies, the paper's §2 endpoint.
//!
//! These are *not* reproductions of measured hardware; they are clearly
//! labelled projections for the `whatif_*` benches.

use crate::cache::CacheConfig;
use crate::core::CoreConfig;
use crate::dram::DramConfig;
use crate::machine::DeviceSpec;
use crate::prefetch::PrefetcherConfig;
use crate::replacement::ReplacementPolicy;
use crate::tlb::{PageWalk, TlbConfig};

/// A copy of `spec` whose core vectorizes with `vector_bytes`-wide
/// registers (0 disables vectorization again).
///
/// # Example
///
/// ```
/// use membound_sim::{future, Device};
///
/// // The C906's RVV unit is 512-bit; the paper's binaries never used it.
/// let rvv = future::with_vectorization(Device::MangoPiMqPro.spec(), 64);
/// assert_eq!(rvv.core.vector_bytes, 64);
/// assert!(rvv.name.contains("vectorized"));
/// ```
#[must_use]
pub fn with_vectorization(mut spec: DeviceSpec, vector_bytes: u32) -> DeviceSpec {
    spec.core.vector_bytes = vector_bytes;
    if vector_bytes > 0 {
        spec.name = format!("{} [vectorized {}b]", spec.name, vector_bytes * 8);
    }
    spec
}

/// StarFive VisionFive 2 (JH7110): 4× U74 @ 1.5 GHz, per-core 32 KB L1s,
/// a 2 MB shared L2 and much healthier DDR4 bandwidth than the original
/// VisionFive. Geometry from StarFive's public documentation; bandwidths
/// are ballpark figures from public STREAM reports (~2.8 GB/s).
#[must_use]
pub fn visionfive2() -> DeviceSpec {
    let freq = 1.5;
    DeviceSpec {
        name: "StarFive VisionFive 2 (JH7110, 4x U74) [projection]".into(),
        isa: "RV64GC".into(),
        cores: 4,
        core: CoreConfig::new("SiFive U74", freq, 2, 0, 2.0),
        caches: vec![
            CacheConfig::new("L1D", 32 * 1024, 4, 64)
                .policy(ReplacementPolicy::Random)
                .latency(3)
                .bytes_per_cycle(16.0),
            CacheConfig::new("L2", 2 * 1024 * 1024, 16, 64)
                .policy(ReplacementPolicy::Random)
                .latency(20)
                .bytes_per_cycle(12.0)
                .shared(),
        ],
        prefetchers: vec![PrefetcherConfig::u74(), PrefetcherConfig::None],
        dtlb: TlbConfig::fully_associative("DTLB", 40),
        l2tlb: Some(TlbConfig::direct_mapped("L2 TLB", 512).latency(8)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 30,
        },
        dram: DramConfig::from_gbps(160, 2.8, freq, 1),
        dram_capacity_bytes: 8 << 30,
        tlb_enabled: true,
    }
}

/// A BOOM/SonicBOOM-class out-of-order RISC-V core (§2 cites BROOM and
/// SonicBOOM as "performance competitive with commercial high-performance
/// out-of-order cores") scaled to a plausible server part: 8 wide-ish
/// cores at 2.5 GHz with RVV-256, a proper three-level cache hierarchy
/// and multi-channel DDR4.
#[must_use]
pub fn riscv_server_class() -> DeviceSpec {
    let freq = 2.5;
    DeviceSpec {
        name: "SonicBOOM-class RISC-V server (8 cores) [projection]".into(),
        isa: "RV64GCV".into(),
        cores: 8,
        core: CoreConfig::new("SonicBOOM-class OoO", freq, 4, 32, 10.0),
        caches: vec![
            CacheConfig::new("L1D", 32 * 1024, 8, 64)
                .latency(4)
                .bytes_per_cycle(32.0),
            CacheConfig::new("L2", 512 * 1024, 8, 64)
                .latency(14)
                .bytes_per_cycle(24.0),
            CacheConfig::new("L3", 8 * 1024 * 1024, 16, 64)
                .latency(40)
                .bytes_per_cycle(24.0)
                .shared(),
        ],
        prefetchers: vec![
            PrefetcherConfig::stream(8),
            PrefetcherConfig::stream(12),
            PrefetcherConfig::None,
        ],
        dtlb: TlbConfig::set_associative("DTLB", 64, 4),
        l2tlb: Some(TlbConfig::set_associative("L2 TLB", 1024, 8).latency(7)),
        walk: PageWalk {
            levels: 3,
            overhead_cycles: 25,
        },
        dram: DramConfig::from_gbps(220, 25.0, freq, 4),
        dram_capacity_bytes: 32 << 30,
        tlb_enabled: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Device;
    use crate::machine::Machine;

    #[test]
    fn projections_are_structurally_valid() {
        let _ = Machine::new(visionfive2());
        let _ = Machine::new(riscv_server_class());
        let _ = Machine::new(with_vectorization(Device::MangoPiMqPro.spec(), 64));
    }

    #[test]
    fn vectorization_override_round_trips() {
        let spec = with_vectorization(Device::StarFiveVisionFive.spec(), 16);
        assert_eq!(spec.core.vector_bytes, 16);
        let back = with_vectorization(spec, 0);
        assert_eq!(back.core.vector_bytes, 0);
    }

    #[test]
    fn projections_are_labelled_as_such() {
        assert!(visionfive2().name.contains("projection"));
        assert!(riscv_server_class().name.contains("projection"));
        assert!(with_vectorization(Device::MangoPiMqPro.spec(), 64)
            .name
            .contains("vectorized"));
    }

    #[test]
    fn visionfive2_improves_on_visionfive1() {
        let v1 = Device::StarFiveVisionFive.spec();
        let v2 = visionfive2();
        assert!(v2.dram_gbps() > v1.dram_gbps());
        assert!(v2.cores > v1.cores);
        assert!(v2.caches[1].size_bytes > v1.caches[1].size_bytes);
    }
}
