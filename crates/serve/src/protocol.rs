//! The daemon's wire protocol: newline-delimited JSON over a local Unix
//! socket.
//!
//! Both directions carry exactly one JSON object per line. Requests and
//! responses are externally tagged enums (`{"Submit": {...}}`,
//! `{"Accepted": {...}}`); in between a submission's `Accepted` and its
//! terminal `Done`, the server streams the job's run-log lines —
//! current-schema telemetry objects carrying a `"kind"` key (`"header"`,
//! `"cell"`), byte-identical to a one-shot run's `--run-log` lines.
//! [`is_telemetry_line`] is the discriminator clients use to split the
//! two families without speculative parsing.
//!
//! The protocol is deliberately hand-rolled over the in-tree serde
//! shims: no network or RPC crates, one blocking line per exchange, so
//! `nc -U` can drive a daemon interactively.

use crate::spec::JobSpec;
use serde::{Deserialize, Serialize};

/// A client-to-server message (one JSON object per line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one job. The connection then receives the job's streamed
    /// telemetry lines (unless `stream` is `false`) followed by a
    /// [`Response::Done`] — or an immediate [`Response::Rejected`].
    Submit {
        /// What to simulate.
        spec: JobSpec,
        /// Scheduling priority, higher first (FIFO within a priority);
        /// absent = 0.
        priority: Option<u8>,
        /// Per-cell retry budget for panicking cells (engine
        /// `RunOptions::retries`); absent = 0.
        retries: Option<u32>,
        /// Per-cell wall-clock deadline in seconds
        /// (`RunOptions::cell_deadline`); absent = none.
        cell_deadline: Option<f64>,
        /// Fault-injection spec for this job only
        /// (`membound_parallel::Failpoint` grammar, e.g.
        /// `cell:delay=100@0`); absent = the daemon's
        /// `MEMBOUND_FAILPOINT` environment, if any.
        failpoint: Option<String>,
        /// Stream per-cell telemetry lines back on this connection;
        /// absent = `true`. `false` still runs the job — only the
        /// terminal [`Response::Done`] is sent.
        stream: Option<bool>,
    },
    /// Report the job table: one job, or every job the daemon remembers.
    Status {
        /// Restrict to this job id; absent = all jobs.
        job: Option<u64>,
    },
    /// Cancel a *queued* job. A running job cannot be preempted (the
    /// simulator has no cancellation points) and a finished one is
    /// already done; both answer [`Response::Error`].
    Cancel {
        /// The job id to cancel.
        job: u64,
    },
    /// Ask the daemon to drain and exit, exactly as `SIGTERM` would:
    /// running and queued jobs finish, new submissions are rejected,
    /// then the socket is removed.
    Shutdown,
}

/// Reasons a submission is rejected ([`Response::Rejected`]).
pub mod reject {
    /// The bounded queue is full — back off for `retry_after_ms` and
    /// resubmit (admission control, the daemon never buffers
    /// unboundedly).
    pub const QUEUE_FULL: &str = "queue_full";
    /// The daemon is draining for shutdown and accepts no new work.
    pub const DRAINING: &str = "draining";
}

/// Lifecycle states in [`JobStatus::state`].
pub mod state {
    /// Admitted, waiting for a budget seat.
    pub const QUEUED: &str = "queued";
    /// Seated and simulating.
    pub const RUNNING: &str = "running";
    /// Finished; digest and counters are final.
    pub const DONE: &str = "done";
    /// The job could not run (bad spec) or a cell failed terminally.
    pub const FAILED: &str = "failed";
    /// Cancelled while still queued.
    pub const CANCELLED: &str = "cancelled";
}

/// One job-table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Daemon-assigned job id (monotonic per daemon lifetime).
    pub job: u64,
    /// Human label of the spec ([`JobSpec::label`]).
    pub label: String,
    /// One of the [`state`] constants.
    pub state: String,
    /// Scheduling priority the job was admitted with.
    pub priority: u8,
    /// Total cells of the job's matrix.
    pub cells: u64,
    /// Cells answered from the persistent result cache (final for
    /// `done`, 0 before).
    pub cached: u64,
    /// Cells actually simulated (`cells - cached` for `done`, 0 before).
    pub misses: u64,
    /// The run's combined stats digest, once `done`.
    pub digest: Option<String>,
    /// Failure detail for `failed` jobs.
    pub error: Option<String>,
}

/// A server-to-client message (one JSON object per line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission was admitted to the queue.
    Accepted {
        /// Assigned job id.
        job: u64,
        /// Jobs ahead of or alongside it in the queue (including
        /// itself) at admission time.
        queue_depth: u64,
    },
    /// The submission was refused; nothing was queued.
    Rejected {
        /// One of the [`reject`] constants.
        reason: String,
        /// For [`reject::QUEUE_FULL`]: how long the client should wait
        /// before resubmitting.
        retry_after_ms: Option<u64>,
    },
    /// Terminal answer for a submission on this connection.
    Done {
        /// The job id.
        job: u64,
        /// Final [`state`] constant (`done` or `failed`).
        status: String,
        /// Combined stats digest of the run (absent when `failed`).
        digest: Option<String>,
        /// Total cells.
        cells: u64,
        /// Cells answered from the persistent result cache without
        /// simulating.
        cached: u64,
        /// Cells actually simulated this run.
        misses: u64,
        /// Failure detail when `status == "failed"`.
        error: Option<String>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Matching job-table rows, oldest first.
        jobs: Vec<JobStatus>,
    },
    /// The queued job was removed before running.
    Cancelled {
        /// The cancelled job id.
        job: u64,
    },
    /// The daemon acknowledged [`Request::Shutdown`] and is draining.
    ShuttingDown,
    /// The request could not be honoured (parse error, unknown job,
    /// bad spec, uncancellable state, ...). The connection stays open.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Whether a received line is a streamed telemetry record (a run-log
/// `"kind"`-keyed object) rather than a protocol [`Response`].
///
/// Run-log lines are flat objects whose first key is always `"kind"`
/// (header and cell records alike — serialization order is declaration
/// order), while every protocol line is an externally tagged enum whose
/// single key is a variant name. Checking the prefix keeps the hot
/// streaming path free of a second JSON parse.
#[must_use]
pub fn is_telemetry_line(line: &str) -> bool {
    line.trim_start().starts_with("{\"kind\":")
}

/// Render a protocol message as one wire line (no trailing newline).
///
/// # Panics
///
/// Never in practice: the protocol types serialize infallibly.
#[must_use]
pub fn to_line<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("protocol message serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                spec: JobSpec::Fig2 {
                    full: false,
                    device: Some("mango".into()),
                },
                priority: Some(3),
                retries: Some(1),
                cell_deadline: Some(30.0),
                failpoint: Some("cell:delay=5@0".into()),
                stream: Some(true),
            },
            Request::Status { job: None },
            Request::Cancel { job: 7 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = to_line(&req);
            assert!(!line.contains('\n'), "{line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted {
                job: 1,
                queue_depth: 2,
            },
            Response::Rejected {
                reason: reject::QUEUE_FULL.into(),
                retry_after_ms: Some(250),
            },
            Response::Done {
                job: 1,
                status: state::DONE.into(),
                digest: Some("7bceab43d67f5ae3".into()),
                cells: 10,
                cached: 10,
                misses: 0,
                error: None,
            },
            Response::Status {
                jobs: vec![JobStatus {
                    job: 1,
                    label: "fig2_transpose".into(),
                    state: state::RUNNING.into(),
                    priority: 0,
                    cells: 40,
                    cached: 0,
                    misses: 0,
                    digest: None,
                    error: None,
                }],
            },
            Response::Cancelled { job: 4 },
            Response::ShuttingDown,
            Response::Error {
                message: "unknown job 99".into(),
            },
        ];
        for resp in resps {
            let line = to_line(&resp);
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp, "{line}");
        }
    }

    #[test]
    fn submit_tolerates_absent_optional_fields() {
        let line = r#"{"Submit":{"spec":{"Fig2":{"full":false,"device":null}}}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        let Request::Submit {
            priority,
            retries,
            cell_deadline,
            failpoint,
            stream,
            ..
        } = req
        else {
            panic!("not a submit")
        };
        assert_eq!(priority, None);
        assert_eq!(retries, None);
        assert_eq!(cell_deadline, None);
        assert_eq!(failpoint, None);
        assert_eq!(stream, None);
    }

    #[test]
    fn telemetry_lines_are_distinguishable_from_protocol_lines() {
        let header = membound_core::telemetry::RunHeader::new("fig2_transpose", 2, 40);
        let line = serde_json::to_string(&header).unwrap();
        assert!(is_telemetry_line(&line), "{line}");
        assert!(!is_telemetry_line(&to_line(&Response::ShuttingDown)));
        assert!(!is_telemetry_line(&to_line(&Request::Shutdown)));
    }
}
