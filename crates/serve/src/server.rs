//! The daemon: socket accept loop, job scheduler and job table.
//!
//! # Architecture
//!
//! One [`Server::run`] call owns three kinds of threads inside a single
//! `std::thread::scope`:
//!
//! * the **accept loop** (the calling thread) polls a non-blocking
//!   [`UnixListener`] and spawns one connection thread per client;
//! * **connection threads** speak the line protocol: they validate and
//!   admit submissions into the bounded [`JobQueue`], then forward the
//!   job's streamed telemetry lines from the runner back to the client
//!   and finish with the terminal `Done` line;
//! * the **scheduler thread** waits for queued work, *seats* the next
//!   job — [`JobBudget::lease_blocking`] blocks until one worker slot
//!   of the shared budget frees — and only then pops it in priority
//!   order, spawning its **runner thread**, which executes the matrix
//!   through [`Engine::run_streamed`] against that same shared budget.
//!   Seat-before-pop keeps waiting jobs inside the bounded queue, so
//!   `--queue-cap` is a true ceiling and a full queue rejects instead
//!   of silently admitting one extra job.
//!
//! The seat is the admission-control invariant: a runner's calling
//! thread holds one leased slot, and the engine only leases *extra*
//! workers beyond it, so the worker threads of every concurrently
//! running job sum to at most `--jobs` — N jobs share one host budget
//! instead of multiplying it. Contention moves wall time only: cell
//! outcomes are slotted by index and independent of who wins a spare
//! slot (DESIGN.md §9), which is why a served job's digest is
//! byte-identical to a serial one-shot run's.
//!
//! # Shutdown
//!
//! `SIGTERM`, `SIGINT` or a `Shutdown` request all trip the same
//! [`ShutdownFlag`]: the accept loop stops, the queue closes (new
//! submissions are rejected as `draining`), queued and running jobs
//! finish and stream out normally, the scope joins every thread, and
//! the socket file is removed. Nothing admitted is ever dropped.

use crate::protocol::{self, reject, state, JobStatus, Request, Response};
use crate::queue::{JobQueue, SubmitError};
use membound_core::cache::ResultCache;
use membound_core::runner::{Engine, ExperimentMatrix, RunOptions};
use membound_core::telemetry::RunHeader;
use membound_parallel::{Failpoint, JobBudget, ShutdownFlag};
use std::collections::BTreeMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// How long the accept loop sleeps between polls of the non-blocking
/// listener and the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Read timeout on connection sockets, so idle connection threads
/// notice a drain promptly instead of blocking in `read` forever.
const CONN_POLL: Duration = Duration::from_millis(100);

/// Backoff hint per queued entry when rejecting on a full queue: a
/// deliberately coarse "come back later", not a latency model.
const RETRY_AFTER_MS_PER_QUEUED: u64 = 250;

/// Ceiling on the backoff hint (one minute): the hint is advisory, and
/// a pathological queue depth must not overflow the multiply or tell a
/// well-behaved client to go away for hours.
const RETRY_AFTER_MS_CAP: u64 = 60_000;

/// The queue-full backoff hint for a rejection observed at `depth`
/// queued entries: saturating, capped at [`RETRY_AFTER_MS_CAP`].
fn retry_after_ms(depth: usize) -> u64 {
    (depth as u64)
        .saturating_mul(RETRY_AFTER_MS_PER_QUEUED)
        .min(RETRY_AFTER_MS_CAP)
}

/// Daemon configuration (one [`Server`] per socket path).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-socket path to listen on. The daemon assumes sole ownership
    /// of the path: a stale file left by a killed predecessor is
    /// removed at startup, and a clean shutdown removes it again.
    pub socket: PathBuf,
    /// Shared worker budget across all concurrently running jobs
    /// (exactly the one-shot `--jobs` semantics).
    pub jobs: u32,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// a retry hint ([`reject::QUEUE_FULL`]).
    pub queue_cap: usize,
    /// Persistent result cache shared by every job; `None` disables
    /// caching (each job simulates everything).
    pub cache_dir: Option<PathBuf>,
}

/// One job-table entry (the daemon-side source of [`JobStatus`] rows
/// and terminal `Done` lines).
#[derive(Debug, Clone)]
struct JobInfo {
    label: String,
    state: &'static str,
    priority: u8,
    cells: u64,
    cached: u64,
    misses: u64,
    digest: Option<String>,
    error: Option<String>,
}

impl JobInfo {
    fn status(&self, job: u64) -> JobStatus {
        JobStatus {
            job,
            label: self.label.clone(),
            state: self.state.into(),
            priority: self.priority,
            cells: self.cells,
            cached: self.cached,
            misses: self.misses,
            digest: self.digest.clone(),
            error: self.error.clone(),
        }
    }
}

/// A queued job's payload: everything the runner needs, plus the
/// channel back to the submitting connection. Dropping it unread (a
/// cancel) disconnects the channel, which is how the submitter learns
/// the job will never stream.
struct Work {
    matrix: ExperimentMatrix,
    retries: u32,
    cell_deadline: Option<f64>,
    failpoint: Option<Failpoint>,
    stream: bool,
    tx: mpsc::Sender<String>,
}

/// Everything the connection, scheduler and runner threads share.
struct Shared {
    engine: Engine,
    budget: JobBudget,
    queue: JobQueue<Work>,
    table: Mutex<BTreeMap<u64, JobInfo>>,
    next_job: AtomicU64,
    cache: Option<ResultCache>,
    shutdown: ShutdownFlag,
}

impl Shared {
    fn set_state(&self, job: u64, new_state: &'static str) {
        if let Some(info) = self.table.lock().expect("job table poisoned").get_mut(&job) {
            info.state = new_state;
        }
    }
}

/// The membound simulation daemon.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
}

impl Server {
    /// A server for `config` (nothing happens until [`Server::run`]).
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        Self { config }
    }

    /// Bind the socket and serve until `shutdown` trips, then drain and
    /// remove the socket. Blocks for the daemon's whole lifetime.
    ///
    /// # Errors
    ///
    /// Binding or preparing the socket path, and opening the result
    /// cache, are the only fatal errors; per-connection and per-job
    /// failures are reported to the affected client instead.
    pub fn run(&self, shutdown: &ShutdownFlag) -> std::io::Result<()> {
        let config = &self.config;
        // A predecessor killed with SIGKILL leaves its socket file
        // behind; this daemon owns the path, so reclaim it.
        match std::fs::remove_file(&config.socket) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if let Some(dir) = config.socket.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;

        let cache = match &config.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        let shared = Shared {
            engine: Engine::new(config.jobs),
            budget: JobBudget::new(config.jobs),
            queue: JobQueue::new(config.queue_cap),
            table: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(1),
            cache,
            shutdown: shutdown.clone(),
        };

        std::thread::scope(|scope| {
            // `&Scope` is Copy: the move closures below copy the scope
            // reference and the `&Shared` borrow, which is what lets
            // the scheduler thread spawn runner threads of its own.
            let shared = &shared;
            let scheduler = scope.spawn(move || {
                // Seat BEFORE pop: a job must keep occupying its queue
                // slot (and count against `--queue-cap`) until a budget
                // seat actually frees for it, or a full queue would
                // silently hold cap+1 jobs and never reject. Draining
                // must still seat queued jobs, so the wait is never
                // abandoned. `try_pop` can still miss (the entry was
                // cancelled while we waited for the seat) — then the
                // seat drops and we go back to waiting for work.
                while shared.queue.wait_nonempty() {
                    let seat = shared
                        .budget
                        .lease_blocking(1, 1, || true)
                        .expect("a non-empty budget always seats eventually");
                    let Some((job, _priority, work)) = shared.queue.try_pop() else {
                        continue;
                    };
                    shared.set_state(job, state::RUNNING);
                    scope.spawn(move || run_job(shared, job, &work, seat));
                }
            });

            while !shutdown.is_requested() {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        scope.spawn(move || {
                            if let Err(e) = serve_connection(shared, stream) {
                                // A vanished client mid-exchange is
                                // routine, not a daemon failure.
                                eprintln!("[membound-serve] connection: {e}");
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("[membound-serve] accept: {e}");
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            // Drain: no new work, finish everything admitted. The scope
            // joins connection and runner threads on exit.
            shared.queue.close();
            drop(scheduler);
        });

        std::fs::remove_file(&config.socket)
    }
}

/// Execute one seated job and publish its outcome. The seat lease is
/// held for the whole run (the engine's calling thread is the first
/// accounted worker) and returned to the budget when this function —
/// and with it the runner thread — finishes.
fn run_job(shared: &Shared, job: u64, work: &Work, seat: membound_parallel::Lease) {
    let options = RunOptions {
        resume: None,
        retries: work.retries,
        cell_deadline: work.cell_deadline,
        stream_log: None,
        failpoint: work.failpoint.clone(),
        cache: shared.cache.clone(),
    };
    if work.stream {
        let header = RunHeader::new(
            work.matrix.figure(),
            shared.engine.jobs(),
            work.matrix.len() as u64,
        );
        let _ = work.tx.send(protocol::to_line(&header));
    }
    let sink = |_index: u64, record: &membound_core::telemetry::CellRecord| {
        let _ = work.tx.send(protocol::to_line(record));
    };
    let result = if work.stream {
        shared
            .engine
            .run_streamed(&work.matrix, &options, &shared.budget, Some(&sink))
    } else {
        shared
            .engine
            .run_streamed(&work.matrix, &options, &shared.budget, None)
    };
    drop(seat);

    let mut table = shared.table.lock().expect("job table poisoned");
    let Some(info) = table.get_mut(&job) else {
        return;
    };
    match result {
        Ok(results) => {
            info.state = state::DONE;
            info.cached = results.cached;
            info.misses = results.cells.len() as u64 - results.cached - results.restored;
            info.digest = Some(results.combined_digest());
        }
        Err(e) => {
            info.state = state::FAILED;
            info.error = Some(e.to_string());
        }
    }
    // The runner owns no sender beyond `work`; the submitting
    // connection's receiver disconnects when `work` drops at the end of
    // the runner thread, which is its signal to emit the Done line.
}

/// Speak the protocol on one accepted connection until EOF or drain.
fn serve_connection(shared: &Shared, stream: UnixStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(CONN_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_polling(&mut reader, &mut line, shared) {
            Ok(0) => return Ok(()), // EOF or drained while idle
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(trimmed) {
            Ok(r) => r,
            Err(e) => {
                write_line(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Submit {
                spec,
                priority,
                retries,
                cell_deadline,
                failpoint,
                stream,
            } => {
                let response = handle_submit(
                    shared,
                    &mut writer,
                    SubmitParams {
                        spec,
                        priority: priority.unwrap_or(0),
                        retries: retries.unwrap_or(0),
                        cell_deadline,
                        failpoint,
                        stream: stream.unwrap_or(true),
                    },
                )?;
                write_line(&mut writer, &response)?;
            }
            Request::Status { job } => {
                let table = shared.table.lock().expect("job table poisoned");
                let jobs: Vec<JobStatus> = table
                    .iter()
                    .filter(|(id, _)| job.is_none() || job == Some(**id))
                    .map(|(id, info)| info.status(*id))
                    .collect();
                drop(table);
                write_line(&mut writer, &Response::Status { jobs })?;
            }
            Request::Cancel { job } => {
                let response = if let Some(work) = shared.queue.cancel(job) {
                    shared.set_state(job, state::CANCELLED);
                    // Dropping the queued payload disconnects its
                    // telemetry channel; the submitter sees the
                    // cancellation as its terminal state.
                    drop(work);
                    Response::Cancelled { job }
                } else {
                    let table = shared.table.lock().expect("job table poisoned");
                    let message = match table.get(&job) {
                        None => format!("unknown job {job}"),
                        Some(info) => format!(
                            "job {job} is {} — only queued jobs can be cancelled \
                             (the simulator has no cancellation points)",
                            info.state
                        ),
                    };
                    Response::Error { message }
                };
                write_line(&mut writer, &response)?;
            }
            Request::Shutdown => {
                shared.shutdown.request();
                write_line(&mut writer, &Response::ShuttingDown)?;
                return Ok(());
            }
        }
    }
}

/// The resolved fields of one submission.
struct SubmitParams {
    spec: crate::spec::JobSpec,
    priority: u8,
    retries: u32,
    cell_deadline: Option<f64>,
    failpoint: Option<String>,
    stream: bool,
}

/// Validate, admit and — once the runner finishes — terminate one
/// submission. Returns the terminal response to write (`Rejected`,
/// `Error` or `Done`); the `Accepted` line and the streamed telemetry
/// are written inline.
fn handle_submit(
    shared: &Shared,
    writer: &mut UnixStream,
    params: SubmitParams,
) -> std::io::Result<Response> {
    if shared.shutdown.is_requested() {
        return Ok(Response::Rejected {
            reason: reject::DRAINING.into(),
            retry_after_ms: None,
        });
    }
    // Validate everything before admission: a bad spec must never
    // occupy a queue slot.
    let matrix = match params.spec.matrix() {
        Ok(m) => m,
        Err(message) => return Ok(Response::Error { message }),
    };
    let failpoint = match &params.failpoint {
        None => Failpoint::from_env(),
        Some(spec) => match Failpoint::parse(spec) {
            Ok(fp) => Some(fp),
            Err(message) => return Ok(Response::Error { message }),
        },
    };
    let (tx, rx) = mpsc::channel::<String>();
    let cells = matrix.len() as u64;
    let work = Work {
        matrix,
        retries: params.retries,
        cell_deadline: params.cell_deadline,
        failpoint,
        stream: params.stream,
        tx,
    };
    let job = shared.next_job.fetch_add(1, Ordering::Relaxed);
    // Table insertion and queue admission under the table lock, so the
    // scheduler (which takes the table lock only after popping) can
    // never observe a queued job without a table row.
    let depth = {
        let mut table = shared.table.lock().expect("job table poisoned");
        match shared.queue.submit(job, params.priority, work) {
            Ok(depth) => {
                table.insert(
                    job,
                    JobInfo {
                        label: params.spec.label(),
                        state: state::QUEUED,
                        priority: params.priority,
                        cells,
                        cached: 0,
                        misses: 0,
                        digest: None,
                        error: None,
                    },
                );
                depth
            }
            Err(SubmitError::Full { depth }) => {
                return Ok(Response::Rejected {
                    reason: reject::QUEUE_FULL.into(),
                    retry_after_ms: Some(retry_after_ms(depth)),
                });
            }
            Err(SubmitError::Closed) => {
                return Ok(Response::Rejected {
                    reason: reject::DRAINING.into(),
                    retry_after_ms: None,
                });
            }
        }
    };
    write_line(
        writer,
        &Response::Accepted {
            job,
            queue_depth: depth as u64,
        },
    )?;
    // Forward the runner's streamed lines until it (or a cancel) drops
    // the sender. A write failure means the client vanished; the job
    // keeps running — its results still land in the shared cache — and
    // the error propagates after the channel is drained off this
    // thread's hands.
    let mut write_result = Ok(());
    for streamed in rx {
        if write_result.is_ok() {
            write_result = writeln!(writer, "{streamed}");
        }
    }
    write_result?;
    let table = shared.table.lock().expect("job table poisoned");
    let info = table.get(&job).expect("submitted job has a table row");
    Ok(Response::Done {
        job,
        status: info.state.into(),
        digest: info.digest.clone(),
        cells: info.cells,
        cached: info.cached,
        misses: info.misses,
        error: info.error.clone(),
    })
}

/// `read_line` against a socket with a read timeout: timeouts poll the
/// drain flag (returning 0, like EOF, once the daemon drains while the
/// connection is idle); partial lines survive timeouts because
/// `read_line` appends into the same buffer across calls.
fn read_line_polling(
    reader: &mut BufReader<UnixStream>,
    line: &mut String,
    shared: &Shared,
) -> std::io::Result<usize> {
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.is_requested() && line.is_empty() {
                    return Ok(0);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Write one protocol line.
fn write_line<T: serde::Serialize>(writer: &mut UnixStream, message: &T) -> std::io::Result<()> {
    writeln!(writer, "{}", protocol::to_line(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The backoff hint saturates instead of overflowing, and is capped
    /// at one minute even at the largest representable queue depth.
    #[test]
    fn retry_after_hint_saturates_and_caps() {
        assert_eq!(retry_after_ms(0), 0);
        assert_eq!(retry_after_ms(4), 1000);
        assert_eq!(
            retry_after_ms(RETRY_AFTER_MS_CAP as usize / 250),
            RETRY_AFTER_MS_CAP
        );
        assert_eq!(retry_after_ms(usize::MAX), RETRY_AFTER_MS_CAP);
        // The raw multiply would wrap well before usize::MAX; make sure
        // the first overflowing depth is already capped.
        let first_overflow = (u64::MAX / RETRY_AFTER_MS_PER_QUEUED) as usize + 1;
        assert_eq!(retry_after_ms(first_overflow), RETRY_AFTER_MS_CAP);
    }
}
