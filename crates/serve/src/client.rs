//! Blocking line client for the daemon — what `membound-cli serve`
//! and the integration tests speak.
//!
//! One [`Client`] wraps one connection. Exchanges are synchronous: a
//! request line goes out, response lines come back until the exchange's
//! terminal line; a submission's streamed telemetry lines are handed to
//! a caller callback as they arrive (and can be validated or digested
//! like any run log, because they *are* run-log lines).

use crate::protocol::{is_telemetry_line, to_line, JobStatus, Request, Response};
use crate::spec::JobSpec;
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// The resolved knobs of one submission (what [`Request::Submit`]
/// carries; `Default` matches the server's defaults).
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Scheduling priority, higher first.
    pub priority: u8,
    /// Per-cell retry budget for panicking cells.
    pub retries: u32,
    /// Per-cell wall-clock deadline in seconds.
    pub cell_deadline: Option<f64>,
    /// Per-job fault-injection spec (failpoint grammar).
    pub failpoint: Option<String>,
    /// Stream per-cell telemetry lines back.
    pub stream: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            priority: 0,
            retries: 0,
            cell_deadline: None,
            failpoint: None,
            stream: true,
        }
    }
}

/// What a completed submission exchange returned.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The job ran (or was cancelled while queued); fields are the
    /// terminal `Done` line's.
    Done {
        /// The job id.
        job: u64,
        /// Final job state (`done`, `failed`, `cancelled`).
        status: String,
        /// Combined stats digest, when the job produced one.
        digest: Option<String>,
        /// Total cells of the matrix.
        cells: u64,
        /// Cells answered from the persistent result cache.
        cached: u64,
        /// Cells actually simulated.
        misses: u64,
        /// Failure detail for `failed` jobs.
        error: Option<String>,
    },
    /// Admission control refused the job; nothing ran.
    Rejected {
        /// `queue_full` or `draining`.
        reason: String,
        /// Backoff hint for `queue_full`.
        retry_after_ms: Option<u64>,
    },
    /// The server answered with a protocol error (bad spec, bad
    /// failpoint, ...).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// One blocking connection to a membound-serve daemon.
#[derive(Debug)]
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connect to the daemon listening on `socket`.
    ///
    /// # Errors
    ///
    /// Propagates connection errors (no daemon, permissions, ...).
    pub fn connect(socket: &Path) -> std::io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn send(&mut self, request: &Request) -> std::io::Result<()> {
        writeln!(self.writer, "{}", to_line(request))
    }

    /// Read lines until a protocol response arrives, handing telemetry
    /// lines (trailing newline stripped) to `on_telemetry`.
    fn read_response(&mut self, mut on_telemetry: impl FnMut(&str)) -> std::io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection mid-exchange",
                ));
            }
            let trimmed = line.trim_end_matches('\n');
            if trimmed.trim().is_empty() {
                continue;
            }
            if is_telemetry_line(trimmed) {
                on_telemetry(trimmed);
                continue;
            }
            return serde_json::from_str(trimmed).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad response line {trimmed:?}: {e}"),
                )
            });
        }
    }

    /// Submit `spec` and block until its terminal response, streaming
    /// each telemetry line (header first, then cells in index order)
    /// into `on_telemetry`.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed/unexpected protocol lines. A *rejected*
    /// submission is not an error — it is [`SubmitOutcome::Rejected`].
    pub fn submit(
        &mut self,
        spec: &JobSpec,
        options: &SubmitOptions,
        mut on_telemetry: impl FnMut(&str),
    ) -> std::io::Result<SubmitOutcome> {
        self.send(&Request::Submit {
            spec: spec.clone(),
            priority: Some(options.priority),
            retries: Some(options.retries),
            cell_deadline: options.cell_deadline,
            failpoint: options.failpoint.clone(),
            stream: Some(options.stream),
        })?;
        loop {
            match self.read_response(&mut on_telemetry)? {
                Response::Accepted { .. } => continue,
                Response::Done {
                    job,
                    status,
                    digest,
                    cells,
                    cached,
                    misses,
                    error,
                } => {
                    return Ok(SubmitOutcome::Done {
                        job,
                        status,
                        digest,
                        cells,
                        cached,
                        misses,
                        error,
                    })
                }
                Response::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    return Ok(SubmitOutcome::Rejected {
                        reason,
                        retry_after_ms,
                    })
                }
                Response::Error { message } => return Ok(SubmitOutcome::Error { message }),
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected response to submit: {other:?}"),
                    ))
                }
            }
        }
    }

    /// Fetch the job table (`job = None` for every job).
    ///
    /// # Errors
    ///
    /// I/O errors and unexpected protocol lines.
    pub fn status(&mut self, job: Option<u64>) -> std::io::Result<Vec<JobStatus>> {
        self.send(&Request::Status { job })?;
        match self.read_response(|_| {})? {
            Response::Status { jobs } => Ok(jobs),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected response to status: {other:?}"),
            )),
        }
    }

    /// Cancel a queued job: `Ok(Ok(()))` = cancelled, `Ok(Err(why))` =
    /// the server refused (unknown job, already running or finished).
    ///
    /// # Errors
    ///
    /// I/O errors and unexpected protocol lines.
    pub fn cancel(&mut self, job: u64) -> std::io::Result<Result<(), String>> {
        self.send(&Request::Cancel { job })?;
        match self.read_response(|_| {})? {
            Response::Cancelled { .. } => Ok(Ok(())),
            Response::Error { message } => Ok(Err(message)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected response to cancel: {other:?}"),
            )),
        }
    }

    /// Ask the daemon to drain and exit (acknowledged before it does).
    ///
    /// # Errors
    ///
    /// I/O errors and unexpected protocol lines.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.read_response(|_| {})? {
            Response::ShuttingDown => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected response to shutdown: {other:?}"),
            )),
        }
    }
}
