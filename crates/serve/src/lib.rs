//! # membound-serve
//!
//! A long-running *simulation service* for the membound workspace
//! (DESIGN.md §14): instead of paying process startup and cache-open
//! cost per figure run, a daemon accepts simulation jobs over a local
//! Unix socket, queues them with priorities, schedules them against
//! **one shared worker budget** ([`membound_parallel::JobBudget`]) and
//! streams each job's per-cell telemetry back as current-schema JSONL — the
//! byte-identical lines a one-shot figure run writes to its `--run-log`.
//!
//! The moving parts:
//!
//! * [`spec::JobSpec`] — what to simulate: a figure's full experiment
//!   matrix (`fig2`/`fig6`) or an ad-hoc transposition ladder, with the
//!   same device filtering and workload scaling as the figure binaries,
//!   so a served job reproduces the one-shot canonical digests byte for
//!   byte.
//! * [`protocol`] — the newline-delimited JSON wire protocol (one
//!   request or response object per line; hand-rolled over the
//!   in-tree serde shims, no network crates).
//! * [`queue::JobQueue`] — a bounded priority queue. A full queue
//!   *rejects* with a `retry_after_ms` hint instead of blocking the
//!   client: admission control, not buffering.
//! * [`server::Server`] — the daemon: accept loop, scheduler and job
//!   table. Jobs are seated one budget slot at a time
//!   ([`membound_parallel::JobBudget::lease_blocking`]) and run through
//!   [`membound_core::runner::Engine::run_streamed`], so N concurrent
//!   jobs never oversubscribe the host. `SIGTERM`/`SIGINT` (or a
//!   `shutdown` request) drains: queued and running jobs finish, new
//!   work is rejected, then the socket is removed.
//! * [`client::Client`] — the blocking line client the CLI and tests
//!   use.
//!
//! Determinism contract: simulated outcomes are independent of job
//! counts and budget contention (DESIGN.md §9), so a job's combined
//! digest equals a serial one-shot run's regardless of how many other
//! jobs were racing it for budget slots, and a cache-warm resubmission
//! answers with `misses = 0` without simulating at all.

#![warn(missing_docs)]

// The daemon and its client speak over Unix sockets; on other targets
// the wire types, spec and queue still build (and test), the transport
// does not.
#[cfg(unix)]
pub mod client;
pub mod protocol;
pub mod queue;
#[cfg(unix)]
pub mod server;
pub mod spec;

#[cfg(unix)]
pub use client::Client;
pub use protocol::{Request, Response};
pub use queue::JobQueue;
#[cfg(unix)]
pub use server::{Server, ServerConfig};
pub use spec::JobSpec;
