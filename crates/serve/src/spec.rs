//! What a submitted job simulates.
//!
//! A [`JobSpec`] is the wire-side description of one experiment matrix.
//! Its [`JobSpec::matrix`] constructor replicates the corresponding
//! figure binary's matrix-building loop *statement for statement*
//! (`crates/bench/src/bin/fig2_transpose.rs`, `fig6_blur.rs`), because
//! the determinism contract of the daemon is digest equality with the
//! one-shot binaries: same cells in the same order, same workload
//! configs, same device sweep — hence the same canonical combined
//! digest.

use membound_core::runner::{Cell, ExperimentMatrix};
use membound_core::{
    BlurConfig, BlurVariant, GbmvConfig, GbmvVariant, TransposeConfig, TransposeVariant,
};
use membound_sim::Device;
use serde::{Deserialize, Serialize};

/// One job's experiment matrix, as submitted over the wire.
///
/// Externally tagged JSON, e.g.
/// `{"Fig2": {"full": false, "device": "mango"}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// The Fig. 2/3 transposition matrix: two sizes × devices × the
    /// five-variant ladder, exactly as `fig2_transpose` builds it.
    Fig2 {
        /// Paper-scale sizes (8192/16384) instead of the scaled-down
        /// defaults (2048/4096).
        full: bool,
        /// Device filter ([`Device::select`]); `None` sweeps the paper boards.
        device: Option<String>,
    },
    /// The Fig. 6/7 Gaussian-blur matrix: devices × the five-variant
    /// ladder at one image size, exactly as `fig6_blur` builds it.
    Fig6 {
        /// The paper's 2544×2027 image instead of the half-resolution
        /// default.
        full: bool,
        /// Device filter ([`Device::select`]); `None` sweeps the paper boards.
        device: Option<String>,
    },
    /// The band-matrix `gbmv` ladder: caller-chosen orders, the
    /// three-variant ladder per order × device, mirroring the gbmv half
    /// of `whatif_manycore`'s per-device loop.
    GbmvLadder {
        /// Matrix orders (one panel per order).
        sizes: Vec<usize>,
        /// Device filter ([`Device::select`]); `None` sweeps the paper boards.
        device: Option<String>,
    },
    /// An ad-hoc transposition ladder: caller-chosen sizes and block,
    /// the full five-variant ladder per size × device. This is what the
    /// crash-safety and daemon tests use — tiny sizes keep a served job
    /// fast under unoptimized test binaries.
    TransposeLadder {
        /// Matrix sizes (one panel per size).
        sizes: Vec<usize>,
        /// Blocking factor for the blocked variants.
        block: usize,
        /// Device filter ([`Device::select`]); `None` sweeps the paper boards.
        device: Option<String>,
    },
}

impl JobSpec {
    /// Resolve the device axis: `None` sweeps the four paper boards
    /// (the canonical figure matrices are pinned to that sweep), a
    /// filter goes through [`Device::select`] — loose, case- and
    /// punctuation-insensitive, with a comma-separated exact-set syntax
    /// for intentional multi-select.
    ///
    /// # Errors
    ///
    /// A filter matching no device, or ambiguously matching several,
    /// names the filter and the candidates instead of silently running
    /// a different matrix than the client asked for.
    fn devices(filter: Option<&str>) -> Result<Vec<Device>, String> {
        let Some(filter) = filter else {
            return Ok(Device::paper().to_vec());
        };
        Device::select(filter)
    }

    /// Build the experiment matrix this spec describes — cell for cell
    /// the matrix the corresponding figure binary would run, so the
    /// served digest is the one-shot digest.
    ///
    /// # Errors
    ///
    /// A device filter matching nothing, or a degenerate ladder (no
    /// sizes / zero block), is a submission error the server reports
    /// back instead of running.
    pub fn matrix(&self) -> Result<ExperimentMatrix, String> {
        match self {
            JobSpec::Fig2 { full, device } => {
                let devices = Self::devices(device.as_deref())?;
                let (n1, n2) = if *full { (8192, 16384) } else { (2048, 4096) };
                let mut matrix = ExperimentMatrix::new("fig2_transpose");
                for n in [n1, n2] {
                    let cfg = TransposeConfig::new(n);
                    for device in &devices {
                        let spec = device.spec();
                        for variant in TransposeVariant::all() {
                            matrix.push(Cell::transpose(
                                n.to_string(),
                                device.label(),
                                &spec,
                                variant,
                                cfg,
                            ));
                        }
                    }
                }
                Ok(matrix)
            }
            JobSpec::Fig6 { full, device } => {
                let devices = Self::devices(device.as_deref())?;
                let cfg = if *full {
                    BlurConfig::paper()
                } else {
                    BlurConfig::small(1013, 1272)
                };
                let panel = format!("{}x{}", cfg.height, cfg.width);
                let mut matrix = ExperimentMatrix::new("fig6_blur");
                for device in &devices {
                    let spec = device.spec();
                    for variant in BlurVariant::all() {
                        matrix.push(Cell::blur(
                            panel.clone(),
                            device.label(),
                            &spec,
                            variant,
                            cfg,
                        ));
                    }
                }
                Ok(matrix)
            }
            JobSpec::GbmvLadder { sizes, device } => {
                if sizes.is_empty() {
                    return Err("gbmv ladder needs at least one order".into());
                }
                if let Some(&n) = sizes.iter().find(|&&n| n <= 64) {
                    // GbmvConfig::new's symmetric bandwidth is 64 and the
                    // band layout needs kl, ku < n.
                    return Err(format!("gbmv order {n} must exceed the bandwidth (64)"));
                }
                let devices = Self::devices(device.as_deref())?;
                let mut matrix = ExperimentMatrix::new("gbmv_ladder");
                for &n in sizes {
                    let cfg = GbmvConfig::new(n);
                    for device in &devices {
                        let spec = device.spec();
                        for variant in GbmvVariant::all() {
                            matrix.push(Cell::gbmv(
                                n.to_string(),
                                device.label(),
                                &spec,
                                variant,
                                cfg,
                            ));
                        }
                    }
                }
                Ok(matrix)
            }
            JobSpec::TransposeLadder {
                sizes,
                block,
                device,
            } => {
                if sizes.is_empty() {
                    return Err("transpose ladder needs at least one size".into());
                }
                if *block == 0 {
                    return Err("transpose ladder block must be positive".into());
                }
                let devices = Self::devices(device.as_deref())?;
                let mut matrix = ExperimentMatrix::new("transpose_ladder");
                for &n in sizes {
                    let cfg = TransposeConfig::with_block(n, *block);
                    for device in &devices {
                        let spec = device.spec();
                        for variant in TransposeVariant::all() {
                            matrix.push(Cell::transpose(
                                n.to_string(),
                                device.label(),
                                &spec,
                                variant,
                                cfg,
                            ));
                        }
                    }
                }
                Ok(matrix)
            }
        }
    }

    /// Short human label for the job table (`serve status`).
    #[must_use]
    pub fn label(&self) -> String {
        let (name, full, device) = match self {
            JobSpec::Fig2 { full, device } => ("fig2_transpose", *full, device),
            JobSpec::Fig6 { full, device } => ("fig6_blur", *full, device),
            JobSpec::GbmvLadder { sizes, device } => {
                return format!(
                    "gbmv_ladder[{}]{}",
                    sizes
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                    device
                        .as_deref()
                        .map(|d| format!(" @{d}"))
                        .unwrap_or_default()
                );
            }
            JobSpec::TransposeLadder { sizes, device, .. } => {
                return format!(
                    "transpose_ladder[{}]{}",
                    sizes
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                    device
                        .as_deref()
                        .map(|d| format!(" @{d}"))
                        .unwrap_or_default()
                );
            }
        };
        format!(
            "{name}{}{}",
            if full { " --full" } else { "" },
            device
                .as_deref()
                .map(|d| format!(" @{d}"))
                .unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matrix_matches_the_figure_binary_shape() {
        let spec = JobSpec::Fig2 {
            full: false,
            device: None,
        };
        let m = spec.matrix().unwrap();
        assert_eq!(m.figure(), "fig2_transpose");
        // 2 sizes x 4 devices x 5 variants, sizes outermost.
        assert_eq!(m.len(), 2 * 4 * 5);
        assert_eq!(m.cells()[0].panel, "2048");
        assert_eq!(m.cells()[0].variant, "Naive");
        assert_eq!(m.cells().last().unwrap().panel, "4096");
        assert!(m.baselines().is_empty(), "fig2 carries no baselines");
    }

    #[test]
    fn fig2_full_switches_to_paper_sizes() {
        let spec = JobSpec::Fig2 {
            full: true,
            device: Some("xeon".into()),
        };
        let m = spec.matrix().unwrap();
        // 2 sizes x 1 filtered device x 5 variants.
        assert_eq!(m.len(), 10);
        assert_eq!(m.cells()[0].panel, "8192");
        assert_eq!(m.cells().last().unwrap().panel, "16384");
    }

    #[test]
    fn fig6_matrix_matches_the_figure_binary_shape() {
        let spec = JobSpec::Fig6 {
            full: false,
            device: None,
        };
        let m = spec.matrix().unwrap();
        assert_eq!(m.figure(), "fig6_blur");
        assert_eq!(m.len(), 4 * 5);
        assert_eq!(m.cells()[0].panel, "1013x1272");
        assert_eq!(m.cells()[0].kind.kernel(), "blur");
    }

    #[test]
    fn gbmv_ladder_matrix_has_three_variants_per_order() {
        let spec = JobSpec::GbmvLadder {
            sizes: vec![512, 1024],
            device: Some("sg2044".into()),
        };
        let m = spec.matrix().unwrap();
        assert_eq!(m.figure(), "gbmv_ladder");
        // 2 orders x 1 device x 3 variants, orders outermost.
        assert_eq!(m.len(), 6);
        assert_eq!(m.cells()[0].panel, "512");
        assert_eq!(m.cells()[0].variant, "Naive");
        assert_eq!(m.cells()[0].kind.kernel(), "gbmv");
        assert_eq!(m.cells().last().unwrap().variant, "Parallel");
    }

    #[test]
    fn degenerate_gbmv_ladders_are_rejected() {
        let none = JobSpec::GbmvLadder {
            sizes: vec![],
            device: None,
        };
        assert!(none.matrix().unwrap_err().contains("at least one order"));
        let tiny = JobSpec::GbmvLadder {
            sizes: vec![512, 64],
            device: None,
        };
        assert!(tiny.matrix().unwrap_err().contains("bandwidth"));
    }

    #[test]
    fn unknown_device_filter_is_a_submission_error() {
        let spec = JobSpec::Fig2 {
            full: false,
            device: Some("cray-1".into()),
        };
        let err = spec.matrix().unwrap_err();
        assert!(err.contains("cray-1"), "{err}");
        assert!(err.contains("Mango Pi"), "{err}");
    }

    #[test]
    fn degenerate_ladders_are_rejected() {
        let none = JobSpec::TransposeLadder {
            sizes: vec![],
            block: 16,
            device: None,
        };
        assert!(none.matrix().unwrap_err().contains("at least one size"));
        let zero = JobSpec::TransposeLadder {
            sizes: vec![128],
            block: 0,
            device: None,
        };
        assert!(zero.matrix().unwrap_err().contains("block"));
    }

    #[test]
    fn specs_round_trip_the_wire_format() {
        let specs = [
            JobSpec::Fig2 {
                full: true,
                device: Some("mango".into()),
            },
            JobSpec::Fig6 {
                full: false,
                device: None,
            },
            JobSpec::TransposeLadder {
                sizes: vec![96, 128],
                block: 16,
                device: Some("mango".into()),
            },
            JobSpec::GbmvLadder {
                sizes: vec![512],
                device: Some("sg2044".into()),
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: JobSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn labels_are_compact() {
        let spec = JobSpec::TransposeLadder {
            sizes: vec![96, 128],
            block: 16,
            device: Some("mango".into()),
        };
        assert_eq!(spec.label(), "transpose_ladder[96,128] @mango");
        let spec = JobSpec::Fig2 {
            full: true,
            device: None,
        };
        assert_eq!(spec.label(), "fig2_transpose --full");
    }
}
