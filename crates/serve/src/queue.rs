//! Bounded priority job queue — the daemon's admission-control stage.
//!
//! Capacity is a hard limit: a submission against a full queue is
//! *rejected* (the server answers `queue_full` with a retry hint)
//! instead of blocking the connection or buffering unboundedly.
//! Scheduling order is priority-descending, FIFO within one priority
//! (an admission sequence number breaks ties), so equal-priority jobs
//! drain in arrival order and a late high-priority job overtakes the
//! queue but never a job already running.

use std::sync::{Condvar, Mutex};

/// Why [`JobQueue::submit`] refused an entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue holds `cap` entries; `depth` is that capacity. The
    /// caller should back off and resubmit.
    Full {
        /// Entries currently queued (= the capacity).
        depth: usize,
    },
    /// The queue was closed for shutdown; no work is admitted anymore.
    Closed,
}

#[derive(Debug)]
struct Entry<T> {
    job: u64,
    priority: u8,
    seq: u64,
    payload: T,
}

#[derive(Debug)]
struct State<T> {
    entries: Vec<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A bounded, closable priority queue of `(job id, payload)` entries.
#[derive(Debug)]
pub struct JobQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    takeable: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` entries (clamped to at least 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            state: Mutex::new(State {
                entries: Vec::new(),
                next_seq: 0,
                closed: false,
            }),
            takeable: Condvar::new(),
        }
    }

    /// Capacity this queue admits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Entries currently queued (racy the instant it returns; for
    /// status reporting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").entries.len()
    }

    /// Whether no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `payload` for `job` at `priority`, returning the queue
    /// depth including it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] against a full queue (admission control —
    /// nothing was queued), [`SubmitError::Closed`] once the queue shut
    /// down.
    pub fn submit(&self, job: u64, priority: u8, payload: T) -> Result<usize, SubmitError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.entries.len() >= self.cap {
            return Err(SubmitError::Full { depth: self.cap });
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.entries.push(Entry {
            job,
            priority,
            seq,
            payload,
        });
        self.takeable.notify_one();
        Ok(state.entries.len())
    }

    /// Block until an entry is schedulable and take the best one
    /// (highest priority, oldest within it), or return `None` once the
    /// queue is closed *and* drained — closing never drops admitted
    /// work.
    #[must_use]
    pub fn pop(&self) -> Option<(u64, u8, T)> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(best) = state
                .entries
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
                .map(|(i, _)| i)
            {
                let entry = state.entries.remove(best);
                return Some((entry.job, entry.priority, entry.payload));
            }
            if state.closed {
                return None;
            }
            state = self.takeable.wait(state).expect("queue poisoned");
        }
    }

    /// Block until the queue is non-empty (`true`) or closed *and*
    /// drained (`false`), without removing anything.
    ///
    /// This is the scheduler's gate for correct backpressure: it must
    /// *not* pop a job before it holds a budget seat for it, or the
    /// queue would drain into a hidden waiting room and a "full" queue
    /// would never reject. The scheduler waits here, acquires the seat,
    /// then [`Self::try_pop`]s — entries stay visible (and countable
    /// against capacity) until they are genuinely dispatched.
    #[must_use]
    pub fn wait_nonempty(&self) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if !state.entries.is_empty() {
                return true;
            }
            if state.closed {
                return false;
            }
            state = self.takeable.wait(state).expect("queue poisoned");
        }
    }

    /// Take the best entry (highest priority, oldest within it) if one
    /// is queued right now; never blocks.
    #[must_use]
    pub fn try_pop(&self) -> Option<(u64, u8, T)> {
        let mut state = self.state.lock().expect("queue poisoned");
        let best = state
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, _)| i)?;
        let entry = state.entries.remove(best);
        Some((entry.job, entry.priority, entry.payload))
    }

    /// Remove a still-queued job, returning its payload; `None` when it
    /// is not in the queue (already popped, finished, or never
    /// admitted).
    #[must_use]
    pub fn cancel(&self, job: u64) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        let index = state.entries.iter().position(|e| e.job == job)?;
        Some(state.entries.remove(index).payload)
    }

    /// Close the queue: further submissions fail, blocked [`Self::pop`]
    /// callers drain the remaining entries and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.takeable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn priority_beats_fifo_and_fifo_breaks_ties() {
        let q = JobQueue::new(8);
        q.submit(1, 0, "a").unwrap();
        q.submit(2, 5, "b").unwrap();
        q.submit(3, 5, "c").unwrap();
        q.submit(4, 9, "d").unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| {
            q.close();
            q.pop().map(|(job, _, _)| job)
        })
        .collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn a_full_queue_rejects_without_queueing() {
        let q = JobQueue::new(2);
        q.submit(1, 0, ()).unwrap();
        q.submit(2, 0, ()).unwrap();
        assert_eq!(q.submit(3, 9, ()), Err(SubmitError::Full { depth: 2 }));
        assert_eq!(q.len(), 2, "the rejected entry left no trace");
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let q = JobQueue::new(4);
        q.submit(1, 0, "x").unwrap();
        assert_eq!(q.cancel(1), Some("x"));
        assert_eq!(q.cancel(1), None, "already gone");
        assert_eq!(q.cancel(99), None, "never admitted");
        assert!(q.is_empty());
    }

    #[test]
    fn close_rejects_new_work_but_drains_admitted_work() {
        let q = JobQueue::new(4);
        q.submit(1, 0, ()).unwrap();
        q.close();
        assert_eq!(q.submit(2, 0, ()), Err(SubmitError::Closed));
        assert_eq!(q.pop().map(|(j, _, _)| j), Some(1));
        assert_eq!(q.pop(), None, "drained and closed");
    }

    #[test]
    fn wait_nonempty_leaves_entries_counting_against_capacity() {
        let q = JobQueue::new(1);
        q.submit(1, 0, "a").unwrap();
        assert!(q.wait_nonempty(), "work is queued");
        // The scheduler is now off acquiring a seat; the entry must
        // still hold its queue slot so admission control sees it.
        assert_eq!(q.submit(2, 0, "b"), Err(SubmitError::Full { depth: 1 }));
        assert_eq!(q.try_pop().map(|(j, _, _)| j), Some(1));
        assert_eq!(q.try_pop(), None, "drained; try_pop never blocks");
        q.close();
        assert!(!q.wait_nonempty(), "closed and drained");
    }

    #[test]
    fn pop_blocks_until_work_or_close() {
        let q = Arc::new(JobQueue::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop().map(|(j, _, _)| j))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(7, 0, ()).unwrap();
        assert_eq!(popper.join().unwrap(), Some(7));

        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
