//! End-to-end daemon tests, in-process: a real [`Server`] on a real
//! Unix socket, driven by real [`Client`]s over the wire protocol
//! (DESIGN.md §14).
//!
//! The determinism contract under test: a job submitted through the
//! daemon — at any `--jobs` level, with any number of concurrent
//! clients whose cell sets overlap — finishes with a combined digest
//! byte-identical to a serial one-shot run of the same matrix. Plus
//! the admission-control semantics: a full queue *rejects* with a
//! retry hint instead of admitting a cap+1'th job, priorities overtake
//! FIFO, queued jobs can be cancelled, and shutdown drains without
//! dropping admitted work.
//!
//! Process-boundary scenarios (SIGKILL mid-run, SIGTERM drain) live in
//! the workspace-level `tests/serve_daemon.rs`, which spawns the
//! actual binaries.

use membound_core::runner::Engine;
use membound_parallel::ShutdownFlag;
use membound_serve::client::{SubmitOptions, SubmitOutcome};
use membound_serve::{Client, JobSpec, Server, ServerConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A daemon running on a throwaway socket inside this test process.
struct Daemon {
    socket: PathBuf,
    flag: ShutdownFlag,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(name: &str, jobs: u32, queue_cap: usize, cache_dir: Option<PathBuf>) -> Self {
        let dir = std::env::temp_dir().join("membound_serve_tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let socket = dir.join(format!("{name}_{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let flag = ShutdownFlag::manual();
        let config = ServerConfig {
            socket: socket.clone(),
            jobs,
            queue_cap,
            cache_dir,
        };
        let server_flag = flag.clone();
        let handle = std::thread::spawn(move || Server::new(config).run(&server_flag));
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        Self {
            socket,
            flag,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.socket).expect("connect to daemon")
    }

    /// Request shutdown and join the server; asserts the clean-drain
    /// contract (no error, socket removed).
    fn stop(mut self) {
        self.flag.request();
        self.handle
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread")
            .expect("server drained cleanly");
        assert!(!self.socket.exists(), "socket file removed on drain");
    }
}

fn ladder(sizes: &[usize]) -> JobSpec {
    JobSpec::TransposeLadder {
        sizes: sizes.to_vec(),
        block: 16,
        device: Some("mango".into()),
    }
}

/// The digest a serial one-shot run of `spec` produces — the baseline
/// every served job must reproduce byte-for-byte.
fn serial_digest(spec: &JobSpec) -> String {
    Engine::new(1)
        .run(&spec.matrix().expect("valid spec"))
        .combined_digest()
}

/// Submit and unwrap the `Done` outcome, panicking on anything else.
fn submit_done(client: &mut Client, spec: &JobSpec, options: &SubmitOptions) -> SubmitOutcome {
    let outcome = client
        .submit(spec, options, |_| {})
        .expect("submit exchange");
    match &outcome {
        SubmitOutcome::Done { .. } => outcome,
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_match_serial_digests_at_every_jobs_level() {
    let spec = ladder(&[96, 128]);
    let want = serial_digest(&spec);
    for jobs in [1u32, 2, 4] {
        let daemon = Daemon::start(&format!("jobs{jobs}"), jobs, 8, None);
        let digests: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let daemon = &daemon;
                    let spec = &spec;
                    scope.spawn(move || {
                        let mut client = daemon.client();
                        match submit_done(&mut client, spec, &SubmitOptions::default()) {
                            SubmitOutcome::Done { digest, error, .. } => {
                                assert_eq!(error, None);
                                digest.expect("completed job has a digest")
                            }
                            _ => unreachable!(),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for digest in &digests {
            assert_eq!(
                digest, &want,
                "served digest diverged from serial at jobs={jobs}"
            );
        }
        daemon.stop();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ISSUE satellite: M concurrent clients with *overlapping* cell
    /// sets — random subsets of a shared size pool, so jobs race on
    /// identical cells through the shared budget and cache — each
    /// reproduce their own serial one-shot digest exactly.
    #[test]
    fn overlapping_concurrent_jobs_reproduce_serial_digests(
        subsets in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(64usize), Just(96), Just(128)],
                1..3,
            ),
            2..4,
        ),
        jobs in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let specs: Vec<JobSpec> = subsets.iter().map(|s| ladder(s)).collect();
        let cache = std::env::temp_dir()
            .join("membound_serve_tests")
            .join(format!("overlap_cache_{}", std::process::id()));
        let daemon = Daemon::start("overlap", jobs, specs.len().max(4), Some(cache));
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let daemon = &daemon;
                    scope.spawn(move || {
                        let mut client = daemon.client();
                        match submit_done(&mut client, spec, &SubmitOptions::default()) {
                            SubmitOutcome::Done { digest, .. } => digest.expect("digest"),
                            _ => unreachable!(),
                        }
                    })
                })
                .collect();
            for (spec, handle) in specs.iter().zip(handles) {
                let digest = handle.join().unwrap();
                prop_assert_eq!(
                    digest,
                    serial_digest(spec),
                    "served {} diverged from its serial run",
                    spec.label()
                );
            }
            Ok(())
        })?;
        daemon.stop();
    }
}

#[test]
fn warm_resubmission_answers_from_cache_without_simulating() {
    let cache = std::env::temp_dir()
        .join("membound_serve_tests")
        .join(format!("warm_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let spec = ladder(&[96, 128]);
    let daemon = Daemon::start("warm", 2, 4, Some(cache.clone()));
    let mut client = daemon.client();

    let (cold_digest, cells) = match submit_done(&mut client, &spec, &SubmitOptions::default()) {
        SubmitOutcome::Done {
            digest,
            cells,
            misses,
            ..
        } => {
            assert_eq!(misses, cells, "cold run simulates everything");
            (digest.expect("digest"), cells)
        }
        _ => unreachable!(),
    };

    match submit_done(&mut client, &spec, &SubmitOptions::default()) {
        SubmitOutcome::Done {
            digest,
            cached,
            misses,
            ..
        } => {
            assert_eq!(misses, 0, "warm resubmission simulates nothing");
            assert_eq!(cached, cells, "every cell answered from cache");
            assert_eq!(digest.expect("digest"), cold_digest);
        }
        _ => unreachable!(),
    }
    daemon.stop();
    let _ = std::fs::remove_dir_all(&cache);
}

/// Poll `status` until `predicate` holds for job `job`, or panic after
/// ten seconds. Status is served by a connection thread, so this
/// observes the daemon's real job table, not test-internal state.
fn wait_for_state(daemon: &Daemon, job: u64, predicate: impl Fn(&str) -> bool) {
    let mut client = daemon.client();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let rows = client.status(Some(job)).expect("status");
        if rows.iter().any(|r| r.job == job && predicate(&r.state)) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never reached the expected state: {rows:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One slot, one queue seat: with a job running and one queued, the
/// next submission must be rejected `queue_full` with a retry hint —
/// the queued job keeps its slot even while the scheduler waits for a
/// seat, so capacity is a true ceiling (the regression this PR fixes).
#[test]
fn full_queue_rejects_with_retry_after() {
    let daemon = Daemon::start("backpressure", 1, 1, None);
    let spec = ladder(&[64]);
    let slow = SubmitOptions {
        failpoint: Some("cell:delay=3000@0".into()),
        ..SubmitOptions::default()
    };

    std::thread::scope(|scope| {
        let daemon = &daemon;
        let spec = &spec;
        let running = scope.spawn(move || {
            let mut client = daemon.client();
            submit_done(&mut client, spec, &slow)
        });
        wait_for_state(daemon, 1, |s| s == "running");

        let queued = scope.spawn(move || {
            let mut client = daemon.client();
            submit_done(&mut client, spec, &SubmitOptions::default())
        });
        wait_for_state(daemon, 2, |s| s == "queued");

        let mut client = daemon.client();
        match client
            .submit(spec, &SubmitOptions::default(), |_| {})
            .expect("submit exchange")
        {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason, "queue_full");
                assert!(
                    retry_after_ms.is_some_and(|ms| ms > 0),
                    "rejection carries a retry hint"
                );
            }
            other => panic!("third submission must be rejected, got {other:?}"),
        }

        // The admitted jobs still finish, identically.
        let want = serial_digest(spec);
        for handle in [running, queued] {
            match handle.join().unwrap() {
                SubmitOutcome::Done { digest, .. } => {
                    assert_eq!(digest.expect("digest"), want);
                }
                _ => unreachable!(),
            }
        }
    });
    daemon.stop();
}

/// With one worker slot held by a delayed job, a late high-priority
/// submission overtakes an earlier low-priority one in the queue.
#[test]
fn priority_overtakes_fifo() {
    let daemon = Daemon::start("priority", 1, 8, None);
    let spec = ladder(&[64]);
    let slow = SubmitOptions {
        failpoint: Some("cell:delay=2000@0".into()),
        ..SubmitOptions::default()
    };

    std::thread::scope(|scope| {
        let daemon = &daemon;
        let spec = &spec;
        let blocker = scope.spawn(move || {
            let mut client = daemon.client();
            submit_done(&mut client, spec, &slow)
        });
        wait_for_state(daemon, 1, |s| s == "running");

        let low = scope.spawn(move || {
            let mut client = daemon.client();
            let outcome = submit_done(&mut client, spec, &SubmitOptions::default());
            (Instant::now(), outcome)
        });
        wait_for_state(daemon, 2, |s| s == "queued");
        let high = scope.spawn(move || {
            let mut client = daemon.client();
            let options = SubmitOptions {
                priority: 9,
                ..SubmitOptions::default()
            };
            let outcome = submit_done(&mut client, spec, &options);
            (Instant::now(), outcome)
        });

        let (low_done, _) = low.join().unwrap();
        let (high_done, _) = high.join().unwrap();
        assert!(
            high_done < low_done,
            "priority 9 must finish before priority 0 behind one worker slot"
        );
        blocker.join().unwrap();
    });
    daemon.stop();
}

#[test]
fn cancel_removes_a_queued_job_but_not_a_running_one() {
    let daemon = Daemon::start("cancel", 1, 8, None);
    let spec = ladder(&[64]);
    let slow = SubmitOptions {
        failpoint: Some("cell:delay=2000@0".into()),
        ..SubmitOptions::default()
    };

    std::thread::scope(|scope| {
        let daemon = &daemon;
        let spec = &spec;
        let blocker = scope.spawn(move || {
            let mut client = daemon.client();
            submit_done(&mut client, spec, &slow)
        });
        wait_for_state(daemon, 1, |s| s == "running");

        let queued = scope.spawn(move || {
            let mut client = daemon.client();
            client
                .submit(spec, &SubmitOptions::default(), |_| {})
                .expect("submit exchange")
        });
        wait_for_state(daemon, 2, |s| s == "queued");

        let mut client = daemon.client();
        client
            .cancel(2)
            .expect("cancel exchange")
            .expect("queued job cancels");
        wait_for_state(daemon, 2, |s| s == "cancelled");
        // The cancelled submitter's exchange terminates with a
        // `cancelled` Done line, not a hang.
        match queued.join().unwrap() {
            SubmitOutcome::Done { status, digest, .. } => {
                assert_eq!(status, "cancelled");
                assert_eq!(digest, None, "a cancelled job never simulated");
            }
            other => panic!("expected cancelled Done, got {other:?}"),
        }

        // The running job is not cancellable and still completes.
        let refusal = client
            .cancel(1)
            .expect("cancel exchange")
            .expect_err("running jobs cannot be cancelled");
        assert!(
            refusal.contains("running"),
            "refusal names the state: {refusal}"
        );
        let refusal = client
            .cancel(999)
            .expect("cancel exchange")
            .expect_err("unknown job");
        assert!(refusal.contains("unknown"), "refusal: {refusal}");
        blocker.join().unwrap();
    });
    daemon.stop();
}

/// A draining daemon rejects new submissions but finishes queued work.
#[test]
fn drain_rejects_new_work_and_finishes_admitted_work() {
    let daemon = Daemon::start("drain", 1, 8, None);
    let spec = ladder(&[64]);
    let slow = SubmitOptions {
        failpoint: Some("cell:delay=1500@0".into()),
        ..SubmitOptions::default()
    };

    std::thread::scope(|scope| {
        let daemon = &daemon;
        let spec = &spec;
        let running = scope.spawn(move || {
            let mut client = daemon.client();
            submit_done(&mut client, spec, &slow)
        });
        wait_for_state(daemon, 1, |s| s == "running");
        let queued = scope.spawn(move || {
            let mut client = daemon.client();
            submit_done(&mut client, spec, &SubmitOptions::default())
        });
        wait_for_state(daemon, 2, |s| s == "queued");

        // A client served *before* the drain: its next submission is
        // refused as `draining` (a post-drain connection would simply
        // never be accepted). The status round-trip guarantees a
        // connection thread owns this client before the flag trips.
        let mut client = daemon.client();
        client.status(None).expect("round-trip before drain");
        daemon.flag.request();
        std::thread::sleep(Duration::from_millis(50));
        match client
            .submit(spec, &SubmitOptions::default(), |_| {})
            .expect("submit exchange")
        {
            SubmitOutcome::Rejected { reason, .. } => assert_eq!(reason, "draining"),
            other => panic!("draining daemon must reject, got {other:?}"),
        }

        let want = serial_digest(spec);
        for handle in [running, queued] {
            match handle.join().unwrap() {
                SubmitOutcome::Done { digest, .. } => {
                    assert_eq!(digest.expect("digest"), want, "drain kept admitted work");
                }
                _ => unreachable!(),
            }
        }
    });
    daemon.stop();
}

/// Streamed telemetry is schema-v7 JSONL: every line the client's
/// callback sees parses as a `kind` record, and the stream carries
/// exactly one header plus one line per cell.
#[test]
fn streamed_telemetry_is_schema_v7_jsonl() {
    let daemon = Daemon::start("stream", 2, 4, None);
    let spec = ladder(&[96]);
    let mut lines = Vec::new();
    let mut client = daemon.client();
    let outcome = client
        .submit(&spec, &SubmitOptions::default(), |line| {
            lines.push(line.to_string());
        })
        .expect("submit exchange");
    let cells = match outcome {
        SubmitOutcome::Done { cells, .. } => cells,
        other => panic!("expected Done, got {other:?}"),
    };
    assert_eq!(
        lines.len() as u64,
        cells + 1,
        "one header + one line per cell"
    );
    assert!(
        lines[0].starts_with("{\"kind\":\"header\"") && lines[0].contains("\"schema_version\":7"),
        "header first: {}",
        lines[0]
    );
    for line in &lines[1..] {
        assert!(line.starts_with("{\"kind\":\"cell\""), "cell line: {line}");
    }
    daemon.stop();
}
