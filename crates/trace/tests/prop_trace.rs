//! Property tests for the trace substrate.

use membound_trace::synthetic::{PointerChase, RandomAccess, StridedSweep};
use membound_trace::{MemAccess, TraceBuffer, TraceSink, TracedProgram};
use proptest::prelude::*;

proptest! {
    /// `load_range` preserves byte counts exactly and never emits a probe
    /// crossing a line boundary.
    #[test]
    fn load_range_preserves_bytes_and_respects_lines(
        addr in 0u64..1_000_000,
        len in 0u64..4096,
    ) {
        let mut buf = TraceBuffer::new();
        buf.load_range(addr, len);
        prop_assert_eq!(buf.stats().bytes_loaded, len);
        for a in buf.iter() {
            let first_line = a.addr / 64;
            let last_line = (a.end().saturating_sub(1)).max(a.addr) / 64;
            prop_assert_eq!(first_line, last_line, "probe must stay in one line");
        }
        // Probes are contiguous and in order.
        let mut expected = addr;
        for a in buf.iter() {
            prop_assert_eq!(a.addr, expected);
            expected = a.end();
        }
        if len > 0 {
            prop_assert_eq!(expected, addr + len);
        }
    }

    /// `lines()` yields exactly the lines the byte range covers.
    #[test]
    fn lines_cover_the_access(addr in 0u64..1 << 40, size in 1u32..256) {
        let a = MemAccess::load(addr, size);
        let lines: Vec<u64> = a.lines(64).collect();
        prop_assert_eq!(*lines.first().unwrap(), addr / 64);
        prop_assert_eq!(*lines.last().unwrap(), (addr + u64::from(size) - 1) / 64);
        // Consecutive.
        for w in lines.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    /// Replaying a recorded buffer reproduces it bit-exactly.
    #[test]
    fn replay_round_trips(accesses in proptest::collection::vec(
        (0u64..1 << 30, 1u32..64, any::<bool>()), 0..200)
    ) {
        let mut original = TraceBuffer::new();
        for (addr, size, write) in accesses {
            if write {
                original.store(addr, size);
            } else {
                original.load(addr, size);
            }
        }
        let mut replayed = TraceBuffer::new();
        original.replay_into(&mut replayed);
        prop_assert_eq!(original.as_slice(), replayed.as_slice());
        prop_assert_eq!(original.stats().bytes_total(), replayed.stats().bytes_total());
    }

    /// Range splitting composes for every synthetic generator.
    #[test]
    fn synthetic_ranges_compose(
        count in 1u64..500,
        split in 0u64..500,
        stride in -512i64..512,
    ) {
        prop_assume!(stride != 0);
        let split = split.min(count);
        let sweep = StridedSweep::new(1 << 20, count, 8, stride);
        let chase = PointerChase::new(1 << 21, 64, 128, count);
        let random = RandomAccess::new(1 << 22, 1 << 16, count, 8);

        fn check<P: TracedProgram>(p: &P, split: u64, count: u64) -> Result<(), TestCaseError> {
            let mut whole = TraceBuffer::new();
            p.trace_all(&mut whole);
            let mut parts = TraceBuffer::new();
            p.trace_range(&mut parts, 0, split);
            p.trace_range(&mut parts, split, count);
            prop_assert_eq!(whole.as_slice(), parts.as_slice());
            Ok(())
        }
        check(&sweep, split, count)?;
        check(&chase, split, count)?;
        check(&random, split, count)?;
    }

    /// Sweep footprints account every byte exactly once.
    #[test]
    fn sweep_footprint_matches_trace(count in 1u64..300) {
        let sweep = StridedSweep::new(0, count, 8, 64);
        let mut buf = TraceBuffer::new();
        sweep.trace_all(&mut buf);
        prop_assert_eq!(buf.stats().bytes_loaded, sweep.footprint().bytes_read);
        prop_assert_eq!(buf.stats().loads, count);
    }
}
