//! Loop-structured trace IR.
//!
//! [`TraceOp`] is a compact program representation of the access stream a
//! kernel emits into a [`TraceSink`]: the three leaf batch shapes the sink
//! trait already exposes (`Range`, `Strided`, `StridedRmw`), scalar
//! accesses and compute/barrier markers, plus two structured nodes —
//! `Seq` for grouping and `Repeat` for a loop nest whose body re-executes
//! `count` times with a fixed per-iteration address delta per body op.
//!
//! The defining invariant is **bit-exactness under replay**: expanding a
//! `TraceOp` with [`TraceOp::replay`] produces *exactly* the op sequence
//! that was folded into it, including any address wrap-around near the top
//! of the address space (all shift arithmetic is two's-complement
//! wrapping, matching [`strided_addr`]). The [`Recorder`] only ever folds
//! by *verified equality* — an op joins a `Repeat` only if it compares
//! equal to the shifted body op it would replay as — so recording is
//! lossless by construction, never by approximation.
//!
//! The analytic executor in `membound-sim` consumes this IR: `Repeat`
//! nests (and large leaf batches) whose steady-state behaviour is provable
//! are fast-forwarded by exact counter multiplication; everything else is
//! replayed element-by-element through the same sink methods.

use serde::{Deserialize, Serialize};

use crate::{IterCost, MemAccess, TraceSink};

/// Maximum body length (in ops) the recorder will try to fold into a
/// `Repeat`. Longer periods are left unfolded — they replay identically,
/// just without the compact representation.
pub const MAX_FOLD_PERIOD: usize = 8;

/// Default recorder buffer capacity (in ops) before the front of the
/// buffer is drained to the output for execution.
pub const DEFAULT_RECORDER_CAP: usize = 4096;

/// One node of the loop-structured trace program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// A single scalar reference (load when `write` is false).
    Access {
        /// Virtual byte address of the first byte touched.
        addr: u64,
        /// Bytes touched.
        size: u32,
        /// Store when true, load otherwise.
        write: bool,
    },
    /// `iters` iterations of straight-line compute with per-iteration cost.
    Compute {
        /// Per-iteration instruction mix.
        cost: IterCost,
        /// Iteration count.
        iters: u64,
    },
    /// A phase boundary (synchronization point).
    Barrier,
    /// A dense byte range touched line-by-line.
    Range {
        /// First byte of the range.
        addr: u64,
        /// Length of the range in bytes.
        len: u64,
        /// Store when true.
        write: bool,
    },
    /// `count` elements of `size` bytes at a constant byte stride.
    Strided {
        /// Address of element 0.
        base: u64,
        /// Signed byte stride between consecutive elements.
        stride: i64,
        /// Element count.
        count: u64,
        /// Element size in bytes.
        size: u32,
        /// Store when true.
        write: bool,
    },
    /// `count` read-modify-write element pairs at a constant byte stride.
    StridedRmw {
        /// Address of element 0.
        base: u64,
        /// Signed byte stride between consecutive elements.
        stride: i64,
        /// Element count.
        count: u64,
        /// Element size in bytes.
        size: u32,
    },
    /// A loop nest: `body` re-executes `count` times; iteration `i`
    /// replays `body[j]` shifted by `steps[j] * i` bytes (wrapping).
    Repeat {
        /// Ops of one iteration (iteration 0's addresses).
        body: Vec<TraceOp>,
        /// Per-body-op address delta applied each iteration.
        steps: Vec<i64>,
        /// Number of iterations (>= 2 when produced by the recorder).
        count: u64,
    },
    /// A grouping node; replays its children in order.
    Seq(Vec<TraceOp>),
}

impl TraceOp {
    /// The op shifted by `delta` bytes (two's-complement wrapping, the
    /// same arithmetic as [`strided_addr`]). Structured nodes shift every
    /// child; `Compute`/`Barrier` are unchanged.
    #[must_use]
    pub fn shifted(&self, delta: i64) -> TraceOp {
        if delta == 0 {
            return self.clone();
        }
        match self {
            TraceOp::Access { addr, size, write } => TraceOp::Access {
                addr: addr.wrapping_add_signed(delta),
                size: *size,
                write: *write,
            },
            TraceOp::Compute { .. } | TraceOp::Barrier => self.clone(),
            TraceOp::Range { addr, len, write } => TraceOp::Range {
                addr: addr.wrapping_add_signed(delta),
                len: *len,
                write: *write,
            },
            TraceOp::Strided {
                base,
                stride,
                count,
                size,
                write,
            } => TraceOp::Strided {
                base: base.wrapping_add_signed(delta),
                stride: *stride,
                count: *count,
                size: *size,
                write: *write,
            },
            TraceOp::StridedRmw {
                base,
                stride,
                count,
                size,
            } => TraceOp::StridedRmw {
                base: base.wrapping_add_signed(delta),
                stride: *stride,
                count: *count,
                size: *size,
            },
            TraceOp::Repeat { body, steps, count } => TraceOp::Repeat {
                body: body.iter().map(|op| op.shifted(delta)).collect(),
                steps: steps.clone(),
                count: *count,
            },
            TraceOp::Seq(ops) => TraceOp::Seq(ops.iter().map(|op| op.shifted(delta)).collect()),
        }
    }

    /// If `self` is the same op as `other` with every non-address
    /// parameter equal and a single uniform address delta, return that
    /// delta (wrapping). `Compute` compares by value and yields delta 0;
    /// `Barrier` never folds. This is the recorder's fold predicate:
    /// `other.shifted(d).replay(..)` is bit-identical to `self.replay(..)`
    /// exactly when `self.delta_from(other) == Some(d)`.
    #[must_use]
    pub fn delta_from(&self, other: &TraceOp) -> Option<i64> {
        match (self, other) {
            (
                TraceOp::Access { addr, size, write },
                TraceOp::Access {
                    addr: oa,
                    size: os,
                    write: ow,
                },
            ) if size == os && write == ow => Some(addr.wrapping_sub(*oa) as i64),
            (a @ TraceOp::Compute { .. }, b @ TraceOp::Compute { .. }) if a == b => Some(0),
            (
                TraceOp::Range { addr, len, write },
                TraceOp::Range {
                    addr: oa,
                    len: ol,
                    write: ow,
                },
            ) if len == ol && write == ow => Some(addr.wrapping_sub(*oa) as i64),
            (
                TraceOp::Strided {
                    base,
                    stride,
                    count,
                    size,
                    write,
                },
                TraceOp::Strided {
                    base: ob,
                    stride: ost,
                    count: oc,
                    size: os,
                    write: ow,
                },
            ) if stride == ost && count == oc && size == os && write == ow => {
                Some(base.wrapping_sub(*ob) as i64)
            }
            (
                TraceOp::StridedRmw {
                    base,
                    stride,
                    count,
                    size,
                },
                TraceOp::StridedRmw {
                    base: ob,
                    stride: ost,
                    count: oc,
                    size: os,
                },
            ) if stride == ost && count == oc && size == os => Some(base.wrapping_sub(*ob) as i64),
            (
                TraceOp::Repeat { body, steps, count },
                TraceOp::Repeat {
                    body: obody,
                    steps: osteps,
                    count: ocount,
                },
            ) if steps == osteps && count == ocount && body.len() == obody.len() => {
                uniform_delta(body, obody)
            }
            (TraceOp::Seq(ops), TraceOp::Seq(oops)) if ops.len() == oops.len() => {
                uniform_delta(ops, oops)
            }
            _ => None,
        }
    }

    /// Expand the op into the sink calls it was folded from. Bit-exact:
    /// iteration `i` of a `Repeat` replays `body[j].shifted(steps[j] * i)`
    /// with wrapping multiply-and-add, which is precisely the equality the
    /// recorder verified when folding.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        match self {
            TraceOp::Access { addr, size, write } => {
                if *write {
                    sink.store(*addr, *size);
                } else {
                    sink.load(*addr, *size);
                }
            }
            TraceOp::Compute { cost, iters } => sink.compute(*cost, *iters),
            TraceOp::Barrier => sink.barrier(),
            TraceOp::Range { addr, len, write } => sink.access_range(*addr, *len, *write),
            TraceOp::Strided {
                base,
                stride,
                count,
                size,
                write,
            } => sink.access_strided(*base, *stride, *count, *size, *write),
            TraceOp::StridedRmw {
                base,
                stride,
                count,
                size,
            } => sink.access_strided_rmw(*base, *stride, *count, *size),
            TraceOp::Repeat { body, steps, count } => {
                for i in 0..*count {
                    for (op, step) in body.iter().zip(steps) {
                        op.shifted(step.wrapping_mul(i as i64)).replay(sink);
                    }
                }
            }
            TraceOp::Seq(ops) => {
                for op in ops {
                    op.replay(sink);
                }
            }
        }
    }

    /// Number of leaf ops this node expands to under replay (saturating).
    /// Structured nodes count their expansion; a leaf counts 1 regardless
    /// of how many elements it touches.
    #[must_use]
    pub fn leaf_count(&self) -> u64 {
        match self {
            TraceOp::Repeat { body, count, .. } => body
                .iter()
                .fold(0u64, |acc, op| acc.saturating_add(op.leaf_count()))
                .saturating_mul(*count),
            TraceOp::Seq(ops) => ops
                .iter()
                .fold(0u64, |acc, op| acc.saturating_add(op.leaf_count())),
            _ => 1,
        }
    }

    /// Absolute byte footprint `[min, max)` touched by this op (over all
    /// iterations for `Repeat`), in `i128` so directional expansion never
    /// wraps. `None` when a sub-expression's extent cannot be computed or
    /// the op touches nothing.
    #[must_use]
    pub fn footprint(&self) -> Option<(i128, i128)> {
        match self {
            TraceOp::Access { addr, size, .. } => Some((
                i128::from(*addr),
                i128::from(*addr) + i128::from((*size).max(1)),
            )),
            TraceOp::Compute { .. } | TraceOp::Barrier => None,
            TraceOp::Range { addr, len, .. } => {
                if *len == 0 {
                    None
                } else {
                    Some((i128::from(*addr), i128::from(*addr) + i128::from(*len)))
                }
            }
            TraceOp::Strided {
                base,
                stride,
                count,
                size,
                ..
            }
            | TraceOp::StridedRmw {
                base,
                stride,
                count,
                size,
            } => {
                if *count == 0 {
                    return None;
                }
                let span = i128::from(*stride) * i128::from(*count - 1);
                let lo = i128::from(*base) + span.min(0);
                let hi = i128::from(*base) + span.max(0) + i128::from((*size).max(1));
                Some((lo, hi))
            }
            TraceOp::Repeat { body, steps, count } => {
                if *count == 0 {
                    return None;
                }
                let mut acc: Option<(i128, i128)> = None;
                for (op, step) in body.iter().zip(steps) {
                    if let Some((lo, hi)) = op.footprint() {
                        let span = i128::from(*step) * i128::from(*count - 1);
                        let lo = lo + span.min(0);
                        let hi = hi + span.max(0);
                        acc = Some(match acc {
                            Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                            None => (lo, hi),
                        });
                    }
                }
                acc
            }
            TraceOp::Seq(ops) => {
                let mut acc: Option<(i128, i128)> = None;
                for op in ops {
                    if let Some((lo, hi)) = op.footprint() {
                        acc = Some(match acc {
                            Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                            None => (lo, hi),
                        });
                    }
                }
                acc
            }
        }
    }

    /// Accumulate op-kind counts and structural depth into `stats`.
    pub fn tally(&self, stats: &mut IrStats) {
        self.tally_at(stats, 1);
    }

    fn tally_at(&self, stats: &mut IrStats, depth: u32) {
        stats.max_depth = stats.max_depth.max(depth);
        match self {
            TraceOp::Access { .. } => stats.access += 1,
            TraceOp::Compute { .. } => stats.compute += 1,
            TraceOp::Barrier => stats.barrier += 1,
            TraceOp::Range { .. } => stats.range += 1,
            TraceOp::Strided { .. } => stats.strided += 1,
            TraceOp::StridedRmw { .. } => stats.strided_rmw += 1,
            TraceOp::Repeat { body, .. } => {
                stats.repeat += 1;
                for op in body {
                    op.tally_at(stats, depth + 1);
                }
            }
            TraceOp::Seq(ops) => {
                stats.seq += 1;
                for op in ops {
                    op.tally_at(stats, depth + 1);
                }
            }
        }
        stats.expanded_leaves = stats.expanded_leaves.saturating_add(match self {
            TraceOp::Repeat { .. } | TraceOp::Seq(_) => 0,
            _ => 1,
        });
    }
}

fn uniform_delta(a: &[TraceOp], b: &[TraceOp]) -> Option<i64> {
    let mut delta: Option<i64> = None;
    for (x, y) in a.iter().zip(b) {
        let d = x.delta_from(y)?;
        match (x, delta) {
            // Compute nodes are address-free; they are compatible with
            // any shift and must not pin the delta to 0.
            (TraceOp::Compute { .. }, _) => {}
            (_, Some(prev)) if prev != d => return None,
            (_, Some(_)) => {}
            (_, None) => delta = Some(d),
        }
    }
    Some(delta.unwrap_or(0))
}

/// Per-kind op counts and structural metrics of a trace program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct IrStats {
    pub access: u64,
    pub compute: u64,
    pub barrier: u64,
    pub range: u64,
    pub strided: u64,
    pub strided_rmw: u64,
    pub repeat: u64,
    pub seq: u64,
    /// Deepest nesting level seen (1 for a flat program).
    pub max_depth: u32,
    /// Number of recorded nodes that are leaves (not expansion counts).
    pub expanded_leaves: u64,
}

impl IrStats {
    /// Total recorded nodes of any kind.
    #[must_use]
    pub fn total_nodes(&self) -> u64 {
        self.access
            + self.compute
            + self.barrier
            + self.range
            + self.strided
            + self.strided_rmw
            + self.repeat
            + self.seq
    }

    /// Tally every op of `program`.
    #[must_use]
    pub fn of(program: &[TraceOp]) -> IrStats {
        let mut stats = IrStats::default();
        for op in program {
            op.tally(&mut stats);
        }
        stats
    }
}

/// Online loop-structure recovery over a stream of [`TraceOp`]s.
///
/// `push` appends an op and greedily folds repetition at the buffer tail:
/// first by *extending* a tail `Repeat` (the incoming op is compared for
/// equality against the body op it would replay as — O(1) per op in
/// steady state), then by *creating* a `Repeat` when the last `L` ops are
/// a uniform-delta copy of the preceding `L` (`L <= MAX_FOLD_PERIOD`).
/// Folding is verified by equality, so draining and replaying the buffer
/// always reproduces the pushed stream bit-exactly, in order.
///
/// The buffer is bounded: past `cap` ops the front half is drained to the
/// output (the caller executes drained ops immediately), so memory stays
/// O(cap) regardless of stream length.
#[derive(Debug, Clone)]
pub struct Recorder {
    buf: Vec<TraceOp>,
    /// Number of body ops of the tail `Repeat`'s next iteration already
    /// matched (a partially-accepted iteration; reconstructed on spill).
    pending: usize,
    cap: usize,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_RECORDER_CAP)
    }
}

impl Recorder {
    /// A recorder that drains to the output past `cap` buffered ops.
    #[must_use]
    pub fn new(cap: usize) -> Recorder {
        Recorder {
            buf: Vec::new(),
            pending: 0,
            cap: cap.max(4),
        }
    }

    /// Append `op`; any ops evicted from the front of the bounded buffer
    /// are moved to `out` in stream order for immediate execution.
    pub fn push(&mut self, op: TraceOp, out: &mut Vec<TraceOp>) {
        if let Some(TraceOp::Repeat { body, steps, count }) = self.buf.last_mut() {
            if self.pending < body.len() {
                let step = steps[self.pending];
                let expected = body[self.pending].shifted(step.wrapping_mul(*count as i64));
                if op == expected {
                    self.pending += 1;
                    if self.pending == body.len() {
                        *count += 1;
                        self.pending = 0;
                    }
                    return;
                }
                if self.pending == 0 && *count == 2 {
                    // A speculative fold that never confirmed a third
                    // iteration. `delta_from` accepts *any* two same-shaped
                    // ops (the delta is unconstrained), so two unrelated
                    // loads can fold; unfolding here keeps the buffer flat
                    // until a longer period (e.g. the real loop body)
                    // proves itself.
                    self.unfold_tail();
                } else {
                    self.spill_pending();
                }
            }
        }
        self.buf.push(op);
        self.try_fold_tail();
        if self.buf.len() > self.cap {
            let drain = self.buf.len() / 2;
            out.extend(self.buf.drain(..drain));
        }
    }

    /// Move every buffered op (including a partially-matched tail
    /// iteration) to `out` in stream order.
    pub fn flush(&mut self, out: &mut Vec<TraceOp>) {
        self.spill_pending();
        out.append(&mut self.buf);
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Re-materialize the `pending` already-matched ops of the tail
    /// `Repeat`'s unfinished iteration as plain ops after it. They were
    /// accepted by equality with `body[j].shifted(steps[j] * count)`, so
    /// that expression reconstructs them exactly.
    fn spill_pending(&mut self) {
        if self.pending == 0 {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let Some(TraceOp::Repeat { body, steps, count }) = self.buf.last() else {
            unreachable!("pending iteration without a tail Repeat");
        };
        let spill: Vec<TraceOp> = (0..pending)
            .map(|j| body[j].shifted(steps[j].wrapping_mul(*count as i64)))
            .collect();
        self.buf.extend(spill);
    }

    /// Expand the tail `Repeat{count: 2}` back into its four plain ops
    /// (both iterations). Replay of the expansion is bit-identical to
    /// replay of the `Repeat`, so this only changes structure.
    fn unfold_tail(&mut self) {
        let Some(TraceOp::Repeat { body, steps, count }) = self.buf.pop() else {
            unreachable!("unfold_tail without a tail Repeat");
        };
        debug_assert_eq!(count, 2);
        let second: Vec<TraceOp> = body
            .iter()
            .zip(&steps)
            .map(|(op, step)| op.shifted(*step))
            .collect();
        self.buf.extend(body);
        self.buf.extend(second);
    }

    /// Fold the tail into a `Repeat{count: 2}` when the last `L` ops are
    /// a uniform-per-op-delta copy of the preceding `L`, smallest `L`
    /// first.
    fn try_fold_tail(&mut self) {
        let n = self.buf.len();
        for l in 1..=MAX_FOLD_PERIOD.min(n / 2) {
            let (prev, last) = (&self.buf[n - 2 * l..n - l], &self.buf[n - l..]);
            let deltas: Option<Vec<i64>> = last
                .iter()
                .zip(prev)
                .map(|(cur, old)| cur.delta_from(old))
                .collect();
            if let Some(steps) = deltas {
                let body: Vec<TraceOp> = prev.to_vec();
                self.buf.truncate(n - 2 * l);
                self.buf.push(TraceOp::Repeat {
                    body,
                    steps,
                    count: 2,
                });
                return;
            }
        }
    }
}

/// A [`TraceSink`] that records the emission into a folded program
/// instead of simulating it. Useful for inspecting a kernel's lowered IR
/// (`membound-cli trace-ir`).
#[derive(Debug, Default)]
pub struct RecordingSink {
    recorder: Recorder,
    program: Vec<TraceOp>,
}

impl RecordingSink {
    /// A recording sink with the default buffer capacity.
    #[must_use]
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// Finish recording and return the folded program.
    #[must_use]
    pub fn finish(mut self) -> Vec<TraceOp> {
        self.recorder.flush(&mut self.program);
        self.program
    }
}

impl TraceSink for RecordingSink {
    fn access(&mut self, access: MemAccess) {
        self.recorder.push(
            TraceOp::Access {
                addr: access.addr,
                size: access.size,
                write: access.kind.is_write(),
            },
            &mut self.program,
        );
    }

    fn compute(&mut self, cost: IterCost, iters: u64) {
        self.recorder
            .push(TraceOp::Compute { cost, iters }, &mut self.program);
    }

    fn barrier(&mut self) {
        self.recorder.flush(&mut self.program);
        self.program.push(TraceOp::Barrier);
    }

    fn access_range(&mut self, addr: u64, len: u64, write: bool) {
        self.recorder
            .push(TraceOp::Range { addr, len, write }, &mut self.program);
    }

    fn access_strided(&mut self, base: u64, stride_bytes: i64, count: u64, size: u32, write: bool) {
        self.recorder.push(
            TraceOp::Strided {
                base,
                stride: stride_bytes,
                count,
                size,
                write,
            },
            &mut self.program,
        );
    }

    fn access_strided_rmw(&mut self, base: u64, stride_bytes: i64, count: u64, size: u32) {
        self.recorder.push(
            TraceOp::StridedRmw {
                base,
                stride: stride_bytes,
                count,
                size,
            },
            &mut self.program,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that flattens everything back to the raw op stream for
    /// bit-exactness comparisons.
    #[derive(Default)]
    struct FlatSink(Vec<TraceOp>);

    impl TraceSink for FlatSink {
        fn access(&mut self, access: MemAccess) {
            self.0.push(TraceOp::Access {
                addr: access.addr,
                size: access.size,
                write: access.kind.is_write(),
            });
        }
        fn compute(&mut self, cost: IterCost, iters: u64) {
            self.0.push(TraceOp::Compute { cost, iters });
        }
        fn barrier(&mut self) {
            self.0.push(TraceOp::Barrier);
        }
        fn access_range(&mut self, addr: u64, len: u64, write: bool) {
            self.0.push(TraceOp::Range { addr, len, write });
        }
        fn access_strided(
            &mut self,
            base: u64,
            stride_bytes: i64,
            count: u64,
            size: u32,
            write: bool,
        ) {
            self.0.push(TraceOp::Strided {
                base,
                stride: stride_bytes,
                count,
                size,
                write,
            });
        }
        fn access_strided_rmw(&mut self, base: u64, stride_bytes: i64, count: u64, size: u32) {
            self.0.push(TraceOp::StridedRmw {
                base,
                stride: stride_bytes,
                count,
                size,
            });
        }
    }

    fn roundtrip(ops: &[TraceOp]) -> (Vec<TraceOp>, Vec<TraceOp>) {
        let mut rec = Recorder::new(64);
        let mut program = Vec::new();
        for op in ops {
            rec.push(op.clone(), &mut program);
        }
        rec.flush(&mut program);
        let mut flat = FlatSink::default();
        for op in &program {
            op.replay(&mut flat);
        }
        (program, flat.0)
    }

    fn load(addr: u64) -> TraceOp {
        TraceOp::Access {
            addr,
            size: 8,
            write: false,
        }
    }

    #[test]
    fn uniform_stream_folds_to_single_repeat() {
        let ops: Vec<TraceOp> = (0..100).map(|i| load(0x1000 + 8 * i)).collect();
        let (program, flat) = roundtrip(&ops);
        assert_eq!(flat, ops, "replay must be bit-exact");
        assert_eq!(program.len(), 1);
        let TraceOp::Repeat { body, steps, count } = &program[0] else {
            panic!("expected a Repeat, got {program:?}");
        };
        assert_eq!((body.len(), steps.as_slice(), *count), (1, &[8][..], 100));
    }

    #[test]
    fn multi_op_body_folds_with_per_op_steps() {
        // triad-like: load a[i], load b[i], store c[i]
        let mut ops = Vec::new();
        for i in 0..50u64 {
            ops.push(load(0x10_0000 + 8 * i));
            ops.push(load(0x20_0000 + 8 * i));
            ops.push(TraceOp::Access {
                addr: 0x30_0000 + 8 * i,
                size: 8,
                write: true,
            });
        }
        let (program, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
        assert_eq!(program.len(), 1);
        let TraceOp::Repeat { body, steps, count } = &program[0] else {
            panic!("expected a Repeat, got {program:?}");
        };
        assert_eq!(
            (body.len(), steps.as_slice(), *count),
            (3, &[8, 8, 8][..], 50)
        );
    }

    #[test]
    fn strided_rows_fold_like_fig2() {
        let ops: Vec<TraceOp> = (0..32)
            .map(|row| TraceOp::Strided {
                base: 0x4000_0000 + row * 4096,
                stride: 4096,
                count: 64,
                size: 8,
                write: false,
            })
            .collect();
        let (program, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
        assert_eq!(program.len(), 1);
        assert!(matches!(
            &program[0],
            TraceOp::Repeat { steps, count: 32, .. } if steps == &[4096]
        ));
    }

    #[test]
    fn partial_tail_iteration_spills_exactly() {
        // 10 full iterations of [A, B] then a lone A.
        let mut ops = Vec::new();
        for i in 0..10u64 {
            ops.push(load(0x1000 + 16 * i));
            ops.push(load(0x8000 + 16 * i));
        }
        ops.push(load(0x1000 + 16 * 10));
        let (_, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
    }

    #[test]
    fn irregular_stream_survives_roundtrip() {
        let ops = vec![
            load(0x1000),
            TraceOp::Range {
                addr: 0x2000,
                len: 300,
                write: true,
            },
            load(0x1000),
            load(0x1040),
            load(0x1080),
            TraceOp::Compute {
                cost: IterCost::default(),
                iters: 7,
            },
            load(0x1080),
        ];
        let (_, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
    }

    #[test]
    fn bounded_buffer_drains_in_order() {
        // Addresses chosen so nothing folds (random-ish walk).
        let ops: Vec<TraceOp> = (0..500u64)
            .map(|i| load(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        let mut rec = Recorder::new(16);
        let mut program = Vec::new();
        for op in &ops {
            rec.push(op.clone(), &mut program);
        }
        rec.flush(&mut program);
        let leaves: u64 = program.iter().map(TraceOp::leaf_count).sum();
        assert_eq!(leaves, ops.len() as u64, "nothing may be lost");
        let mut flat = FlatSink::default();
        for op in &program {
            op.replay(&mut flat);
        }
        assert_eq!(flat.0, ops);
    }

    #[test]
    fn wrapping_near_address_space_top_replays_bit_exactly() {
        // The PR-4 regression pattern: ops hugging u64::MAX must fold and
        // replay with identical wrap behaviour to the raw stream.
        let top = u64::MAX - 8;
        let ops: Vec<TraceOp> = (0..16u64).map(|i| load(top.wrapping_add(i))).collect();
        let (program, flat) = roundtrip(&ops);
        assert_eq!(flat, ops, "wrap-around must reproduce exactly");
        assert_eq!(program.len(), 1, "uniform +1 walk folds even across wrap");

        // Range clamped at the top of the address space.
        let ops = vec![
            TraceOp::Range {
                addr: u64::MAX - 8,
                len: 64,
                write: false,
            };
            4
        ];
        let (_, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
    }

    #[test]
    fn shifted_repeat_expansion_wraps_like_strided_addr() {
        use crate::strided_addr;
        let base = u64::MAX - 24;
        let op = TraceOp::Repeat {
            body: vec![load(base)],
            steps: vec![8],
            count: 8,
        };
        let mut flat = FlatSink::default();
        op.replay(&mut flat);
        for (i, got) in flat.0.iter().enumerate() {
            let want = strided_addr(base, 8, i as u64);
            assert!(matches!(got, TraceOp::Access { addr, .. } if *addr == want));
        }
    }

    #[test]
    fn nested_repeats_fold_and_replay() {
        // (B^8 C)^6 with B advancing inside the row and C fixed per row.
        let mut ops = Vec::new();
        for row in 0..6u64 {
            for i in 0..8u64 {
                ops.push(load(0x1_0000 + row * 512 + i * 8));
            }
            ops.push(TraceOp::Access {
                addr: 0x9_0000 + row * 8,
                size: 8,
                write: true,
            });
        }
        let (program, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
        let stats = IrStats::of(&program);
        assert!(stats.repeat >= 2, "expected nesting, got {program:?}");
        assert!(stats.max_depth >= 2);
    }

    #[test]
    fn barrier_never_folds() {
        let ops = vec![TraceOp::Barrier, TraceOp::Barrier, TraceOp::Barrier];
        let (program, flat) = roundtrip(&ops);
        assert_eq!(flat, ops);
        assert_eq!(program.len(), 3);
    }

    #[test]
    fn recording_sink_captures_folded_program() {
        let mut sink = RecordingSink::new();
        for i in 0..64u64 {
            sink.load(0x5000 + i * 8, 8);
        }
        sink.barrier();
        let program = sink.finish();
        assert_eq!(program.len(), 2);
        assert!(matches!(program[0], TraceOp::Repeat { count: 64, .. }));
        assert!(matches!(program[1], TraceOp::Barrier));
    }

    #[test]
    fn footprint_covers_directional_expansion() {
        let op = TraceOp::Repeat {
            body: vec![TraceOp::Strided {
                base: 0x10_0000,
                stride: -64,
                count: 16,
                size: 8,
                write: false,
            }],
            steps: vec![4096],
            count: 10,
        };
        let (lo, hi) = op.footprint().unwrap();
        assert_eq!(lo, 0x10_0000 - 64 * 15);
        assert_eq!(hi, 0x10_0000 + 4096 * 9 + 8);
    }

    #[test]
    fn leaf_count_expands_repeats() {
        let op = TraceOp::Repeat {
            body: vec![load(0), load(8)],
            steps: vec![16, 16],
            count: 100,
        };
        assert_eq!(op.leaf_count(), 200);
    }
}
