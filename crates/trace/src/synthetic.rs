//! Synthetic reference generators.
//!
//! These are the calibration workloads: strided sweeps (STREAM-like),
//! uniform-random accesses (TLB/cache pressure) and pointer chases
//! (latency). The simulator's test-suite uses them to pin down expected
//! hit/miss behaviour, and the STREAM experiment uses [`StridedSweep`] to
//! size arrays per memory level.

use crate::{IterCost, TraceSink, TracedProgram, WorkloadFootprint};

/// A read or read-write sweep over a contiguous array with a fixed stride.
///
/// `stride_bytes` may be negative to sweep backwards (exercising the
/// backward prefetch path the C906 documents).
///
/// # Example
///
/// ```
/// use membound_trace::synthetic::StridedSweep;
/// use membound_trace::{TraceBuffer, TracedProgram};
///
/// let sweep = StridedSweep::new(0x1_0000, 64, 8, 64); // 64 refs, 64B apart
/// let mut buf = TraceBuffer::new();
/// sweep.trace_all(&mut buf);
/// assert_eq!(buf.len(), 64);
/// assert_eq!(buf.as_slice()[1].addr - buf.as_slice()[0].addr, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedSweep {
    base: u64,
    count: u64,
    access_size: u32,
    stride_bytes: i64,
    write: bool,
}

impl StridedSweep {
    /// A read sweep of `count` accesses of `access_size` bytes, starting at
    /// `base`, `stride_bytes` apart.
    ///
    /// # Panics
    ///
    /// Panics if `access_size` is zero.
    #[must_use]
    pub fn new(base: u64, count: u64, access_size: u32, stride_bytes: i64) -> Self {
        assert!(access_size > 0, "access size must be nonzero");
        Self {
            base,
            count,
            access_size,
            stride_bytes,
            write: false,
        }
    }

    /// Make the sweep store instead of load.
    #[must_use]
    pub fn writing(mut self) -> Self {
        self.write = true;
        self
    }

    /// Address of the `i`-th access.
    #[must_use]
    pub fn addr_of(&self, i: u64) -> u64 {
        self.base
            .wrapping_add_signed(self.stride_bytes.wrapping_mul(i as i64))
    }
}

impl TracedProgram for StridedSweep {
    fn outer_iterations(&self) -> u64 {
        self.count
    }

    fn trace_range<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64) {
        // One batch for the whole range: the per-element default is
        // identical to the old scalar loop, and simulating sinks get to
        // execute the calibration sweep through their bulk path.
        sink.access_strided(
            self.addr_of(lo),
            self.stride_bytes,
            hi - lo,
            self.access_size,
            self.write,
        );
        let unit_stride = self.stride_bytes.unsigned_abs() == u64::from(self.access_size);
        let cost = IterCost::new(2, 0)
            .mem(u32::from(!self.write), u32::from(self.write))
            .elem_bytes(self.access_size)
            .vectorizable(unit_stride);
        sink.compute(cost, hi - lo);
    }

    fn footprint(&self) -> WorkloadFootprint {
        let bytes = self.count * u64::from(self.access_size);
        if self.write {
            WorkloadFootprint::new(0, bytes)
        } else {
            WorkloadFootprint::new(bytes, 0)
        }
    }
}

/// Uniform-pseudo-random single accesses within a window — a worst case for
/// caches, prefetchers and TLBs.
///
/// Uses a fixed-seed xorshift so traces are reproducible without pulling a
/// RNG dependency into release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomAccess {
    base: u64,
    window_bytes: u64,
    count: u64,
    access_size: u32,
    seed: u64,
}

impl RandomAccess {
    /// `count` loads of `access_size` bytes at pseudo-random aligned offsets
    /// within `[base, base + window_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than one access or `access_size` is 0.
    #[must_use]
    pub fn new(base: u64, window_bytes: u64, count: u64, access_size: u32) -> Self {
        assert!(access_size > 0, "access size must be nonzero");
        assert!(
            window_bytes >= u64::from(access_size),
            "window must fit at least one access"
        );
        Self {
            base,
            window_bytes,
            count,
            access_size,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Override the xorshift seed (still deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        assert!(seed != 0, "xorshift seed must be nonzero");
        self.seed = seed;
        self
    }

    fn xorshift(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

impl TracedProgram for RandomAccess {
    fn outer_iterations(&self) -> u64 {
        self.count
    }

    fn trace_range<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64) {
        let slots = self.window_bytes / u64::from(self.access_size);
        let mut state = self.seed;
        // Fast-forward deterministically so ranges compose like trace_all.
        for _ in 0..lo {
            state = Self::xorshift(state);
        }
        for _ in lo..hi {
            state = Self::xorshift(state);
            let slot = state % slots;
            sink.load(
                self.base + slot * u64::from(self.access_size),
                self.access_size,
            );
        }
        sink.compute(
            IterCost::new(3, 0).mem(1, 0).elem_bytes(self.access_size),
            hi - lo,
        );
    }

    fn footprint(&self) -> WorkloadFootprint {
        // Expected distinct coverage is complicated; report the window,
        // which is the steady-state resident set.
        WorkloadFootprint::new(self.window_bytes, 0)
    }
}

/// A dependent pointer chase: each access address is derived from the
/// previous one, defeating memory-level parallelism. Used to measure
/// latency rather than bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChase {
    base: u64,
    nodes: u64,
    node_stride: u64,
    count: u64,
}

impl PointerChase {
    /// Chase `count` hops around `nodes` nodes spaced `node_stride` bytes
    /// apart, starting at `base`.
    ///
    /// The visiting order is a fixed full-cycle permutation (stride chosen
    /// coprime with `nodes`) so every node is visited before any repeats.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(base: u64, nodes: u64, node_stride: u64, count: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            base,
            nodes,
            node_stride,
            count,
        }
    }

    fn hop_stride(&self) -> u64 {
        // A large odd constant is coprime with any power-of-two node count
        // and almost always coprime otherwise; fall back to 1 if not.
        let candidate = 0x5851_f42d % self.nodes;
        let candidate = if candidate == 0 { 1 } else { candidate };
        if gcd(candidate, self.nodes) == 1 {
            candidate
        } else {
            1
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl TracedProgram for PointerChase {
    fn outer_iterations(&self) -> u64 {
        self.count
    }

    fn trace_range<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64) {
        let stride = self.hop_stride();
        let mut node = (lo * stride) % self.nodes;
        for _ in lo..hi {
            sink.load(self.base + node * self.node_stride, 8);
            node = (node + stride) % self.nodes;
        }
        sink.compute(IterCost::new(1, 0).mem(1, 0), hi - lo);
    }

    fn footprint(&self) -> WorkloadFootprint {
        WorkloadFootprint::new(self.nodes.min(self.count) * 8, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;
    use std::collections::HashSet;

    #[test]
    fn strided_sweep_addresses_are_arithmetic() {
        let s = StridedSweep::new(1000, 10, 8, 24);
        for i in 0..10 {
            assert_eq!(s.addr_of(i), 1000 + 24 * i);
        }
    }

    #[test]
    fn backward_sweep_descends() {
        let s = StridedSweep::new(1000, 5, 8, -64);
        let mut buf = TraceBuffer::new();
        s.trace_all(&mut buf);
        let addrs: Vec<u64> = buf.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![1000, 936, 872, 808, 744]);
    }

    #[test]
    fn writing_sweep_emits_stores() {
        let s = StridedSweep::new(0, 4, 8, 8).writing();
        let mut buf = TraceBuffer::new();
        s.trace_all(&mut buf);
        assert_eq!(buf.stats().stores, 4);
        assert_eq!(buf.stats().loads, 0);
        assert_eq!(s.footprint().bytes_written, 32);
    }

    #[test]
    fn unit_stride_sweep_is_vectorizable_marked() {
        // compute() carries the vectorizable bit; inspect via stats only
        // indirectly — the bit matters in membound-sim tests. Here just
        // confirm trace shape.
        let s = StridedSweep::new(0, 8, 8, 8);
        assert_eq!(s.footprint().bytes_read, 64);
    }

    /// The sweep must reach bulk sinks as one `access_strided` batch per
    /// traced range, not per-element probes.
    #[test]
    fn strided_sweep_batches_through_access_strided() {
        struct Batches(Vec<(u64, i64, u64, u32, bool)>);
        impl crate::TraceSink for Batches {
            fn access(&mut self, _a: crate::MemAccess) {
                panic!("sweep must not fall back to per-element emission");
            }
            fn access_strided(
                &mut self,
                base: u64,
                stride: i64,
                count: u64,
                size: u32,
                write: bool,
            ) {
                self.0.push((base, stride, count, size, write));
            }
        }
        let s = StridedSweep::new(1000, 10, 8, -24).writing();
        let mut sink = Batches(Vec::new());
        s.trace_range(&mut sink, 2, 7);
        assert_eq!(sink.0, vec![(1000 - 48, -24, 5, 8, true)]);
    }

    #[test]
    fn random_access_stays_in_window_and_is_deterministic() {
        let r = RandomAccess::new(0x10_000, 4096, 256, 8);
        let mut a = TraceBuffer::new();
        let mut b = TraceBuffer::new();
        r.trace_all(&mut a);
        r.trace_all(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
        for acc in a.iter() {
            assert!(acc.addr >= 0x10_000);
            assert!(acc.end() <= 0x10_000 + 4096);
            assert_eq!(acc.addr % 8, 0);
        }
    }

    #[test]
    fn random_access_ranges_compose() {
        let r = RandomAccess::new(0, 1 << 20, 100, 8);
        let mut whole = TraceBuffer::new();
        r.trace_all(&mut whole);
        let mut parts = TraceBuffer::new();
        r.trace_range(&mut parts, 0, 50);
        r.trace_range(&mut parts, 50, 100);
        assert_eq!(whole.as_slice(), parts.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomAccess::new(0, 1 << 16, 64, 8);
        let b = a.with_seed(42);
        let mut ta = TraceBuffer::new();
        let mut tb = TraceBuffer::new();
        a.trace_all(&mut ta);
        b.trace_all(&mut tb);
        assert_ne!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    #[should_panic(expected = "seed must be nonzero")]
    fn zero_seed_rejected() {
        let _ = RandomAccess::new(0, 64, 1, 8).with_seed(0);
    }

    #[test]
    fn pointer_chase_visits_all_nodes_before_repeating() {
        let p = PointerChase::new(0, 64, 64, 64);
        let mut buf = TraceBuffer::new();
        p.trace_all(&mut buf);
        let distinct: HashSet<u64> = buf.iter().map(|a| a.addr).collect();
        assert_eq!(distinct.len(), 64, "full cycle must cover every node");
    }

    #[test]
    fn pointer_chase_prime_node_count_full_cycle() {
        let p = PointerChase::new(0, 97, 64, 97);
        let mut buf = TraceBuffer::new();
        p.trace_all(&mut buf);
        let distinct: HashSet<u64> = buf.iter().map(|a| a.addr).collect();
        assert_eq!(distinct.len(), 97);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
    }
}
