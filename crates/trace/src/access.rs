//! Single memory references.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// An instruction fetch. Only emitted by code-layout experiments; the
    /// kernel ladders emit data references only.
    Fetch,
}

impl AccessKind {
    /// Whether this reference writes memory.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Whether this reference reads memory (loads and fetches).
    #[must_use]
    pub fn is_read(self) -> bool {
        !self.is_write()
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Fetch => "fetch",
        };
        f.write_str(s)
    }
}

/// One memory reference: a virtual address, an access size in bytes and a
/// kind.
///
/// Addresses are virtual; the simulator's TLB model translates them. Sizes
/// are small (1–64 bytes: scalar through one vector register), and a single
/// reference may straddle a cache-line boundary — the cache model splits it.
///
/// # Example
///
/// ```
/// use membound_trace::{AccessKind, MemAccess};
///
/// let a = MemAccess::load(0xdead_b000, 8);
/// assert_eq!(a.kind, AccessKind::Load);
/// assert_eq!(a.end(), 0xdead_b008);
/// assert!(!a.kind.is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual byte address of the first byte touched.
    pub addr: u64,
    /// Number of bytes touched.
    pub size: u32,
    /// Load, store or fetch.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Create a reference of the given kind.
    #[must_use]
    pub fn new(addr: u64, size: u32, kind: AccessKind) -> Self {
        Self { addr, size, kind }
    }

    /// Create a load.
    #[must_use]
    pub fn load(addr: u64, size: u32) -> Self {
        Self::new(addr, size, AccessKind::Load)
    }

    /// Create a store.
    #[must_use]
    pub fn store(addr: u64, size: u32) -> Self {
        Self::new(addr, size, AccessKind::Store)
    }

    /// Create an instruction fetch.
    #[must_use]
    pub fn fetch(addr: u64, size: u32) -> Self {
        Self::new(addr, size, AccessKind::Fetch)
    }

    /// One-past-the-end address of the reference.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.addr.saturating_add(u64::from(self.size))
    }

    /// The cache-line index of the first byte for lines of `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[must_use]
    pub fn line(&self, line_size: u64) -> u64 {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.addr >> line_size.trailing_zeros()
    }

    /// Iterate over the cache-line indices this reference touches.
    ///
    /// Almost always yields a single line; unaligned vector references may
    /// straddle two.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn lines(&self, line_size: u64) -> impl Iterator<Item = u64> {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let shift = line_size.trailing_zeros();
        let first = self.addr >> shift;
        // `end()` saturates at `u64::MAX`, so for references at the very
        // top of the address space `end() - 1` can land *below* `addr`,
        // which would make the range empty; clamp so the reference always
        // touches at least its first line.
        let last = if self.size == 0 {
            first
        } else {
            ((self.end() - 1) >> shift).max(first)
        };
        first..=last
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}+{}", self.kind, self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_reads_and_writes() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::Load.is_read());
        assert!(AccessKind::Fetch.is_read());
        assert!(!AccessKind::Fetch.is_write());
    }

    #[test]
    fn end_is_exclusive() {
        let a = MemAccess::store(100, 8);
        assert_eq!(a.end(), 108);
    }

    #[test]
    fn end_saturates_at_address_space_top() {
        let a = MemAccess::load(u64::MAX - 2, 8);
        assert_eq!(a.end(), u64::MAX);
    }

    #[test]
    fn line_index_uses_power_of_two_shift() {
        let a = MemAccess::load(130, 4);
        assert_eq!(a.line(64), 2);
        assert_eq!(a.line(128), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_rejects_non_power_of_two() {
        let _ = MemAccess::load(0, 4).line(48);
    }

    #[test]
    fn aligned_access_touches_one_line() {
        let a = MemAccess::load(128, 64);
        assert_eq!(a.lines(64).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let a = MemAccess::load(60, 8);
        assert_eq!(a.lines(64).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn saturating_end_still_touches_the_first_line() {
        // `end()` saturates at u64::MAX here, so the naive `end() - 1`
        // computation lands below `addr` and used to yield no lines.
        let a = MemAccess::load(u64::MAX, 8);
        assert_eq!(a.lines(1).collect::<Vec<_>>(), vec![u64::MAX]);
        // With 64-byte lines the clamp keeps the last touched line sane.
        let b = MemAccess::load(u64::MAX - 1, 8);
        assert_eq!(b.lines(64).collect::<Vec<_>>(), vec![u64::MAX >> 6]);
    }

    #[test]
    fn top_of_address_space_line_index_reaches_u64_max() {
        // With 1-byte lines the very last address yields the line index
        // u64::MAX — a legal value consumers must not repurpose. The
        // cache model in membound-sim uses u64::MAX as its empty-way
        // sentinel and guards its install paths against exactly this
        // aliasing (see the sentinel tests in membound-sim's assoc
        // module); this test pins the trace-side fact those guards rely
        // on.
        let a = MemAccess::load(u64::MAX, 1);
        assert_eq!(a.lines(1).collect::<Vec<_>>(), vec![u64::MAX]);
        // Any line size of 2+ bytes keeps indices strictly below
        // u64::MAX, so realistic cache geometries cannot collide.
        for shift in 1..8u32 {
            let line = 1u64 << shift;
            assert!(a.lines(line).all(|l| l < u64::MAX), "line size {line}");
        }
    }

    #[test]
    fn zero_size_access_touches_its_line_only() {
        let a = MemAccess::load(64, 0);
        assert_eq!(a.lines(64).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn display_is_nonempty_and_hex() {
        let a = MemAccess::store(0x40, 8);
        let s = a.to_string();
        assert!(s.contains("store"));
        assert!(s.contains("0x40"));
    }
}
