//! Reuse-distance (LRU stack distance) analysis.
//!
//! The stack distance of an access is the number of *distinct* lines
//! touched since the previous access to the same line (∞ for first
//! touches). Its classic property: a fully associative LRU cache of
//! capacity `C` lines misses exactly the accesses whose stack distance is
//! ≥ `C` — which makes the histogram a simulator-independent way to read
//! off cold/capacity miss counts for *every* capacity at once, and a
//! cross-check for the cache model in `membound-sim` (see that crate's
//! property tests).
//!
//! The implementation is the standard order-statistics-tree algorithm
//! (O(N log M) for N accesses over M distinct lines), using an implicit
//! Fenwick tree over access timestamps.
//!
//! # Example
//!
//! ```
//! use membound_trace::reuse::ReuseHistogram;
//!
//! // Touch lines 0,1,2 then 0 again: the re-touch has distance 2.
//! let mut h = ReuseHistogram::new(64);
//! for line in [0u64, 1, 2, 0] {
//!     h.record(line * 64);
//! }
//! assert_eq!(h.cold_misses(), 3);
//! assert_eq!(h.distance_counts().get(&2), Some(&1));
//! // A 2-line LRU cache would miss all 4; a 4-line cache only the 3 cold.
//! assert_eq!(h.misses_for_capacity(2), 4);
//! assert_eq!(h.misses_for_capacity(4), 3);
//! ```

use std::collections::{BTreeMap, HashMap};

/// Streaming reuse-distance histogram over cache-line-granular accesses.
#[derive(Debug, Clone)]
pub struct ReuseHistogram {
    line_bytes: u64,
    /// Fenwick tree over timestamps: 1 where a line's most recent access
    /// sits, 0 elsewhere.
    fenwick: Vec<u64>,
    /// line -> timestamp of its most recent access (1-based).
    last_access: HashMap<u64, usize>,
    /// time counter (number of accesses so far).
    time: usize,
    /// distance -> count (finite distances only).
    histogram: BTreeMap<u64, u64>,
    cold: u64,
}

impl ReuseHistogram {
    /// An empty histogram over lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn new(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            line_bytes,
            fenwick: vec![0; 1024],
            last_access: HashMap::new(),
            time: 0,
            histogram: BTreeMap::new(),
            cold: 0,
        }
    }

    fn fenwick_add(&mut self, mut i: usize, delta: i64) {
        while i < self.fenwick.len() {
            self.fenwick[i] = self.fenwick[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
        }
    }

    fn fenwick_sum(&self, mut i: usize) -> u64 {
        let mut s = 0;
        while i > 0 {
            s += self.fenwick[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Double the Fenwick tree. New nodes span old timestamps, so the
    /// tree is rebuilt from the live last-access positions (amortized
    /// O(log) per access overall).
    fn grow(&mut self) {
        self.fenwick = vec![0; self.fenwick.len() * 2];
        let stamps: Vec<usize> = self.last_access.values().copied().collect();
        for t in stamps {
            self.fenwick_add(t, 1);
        }
    }

    /// Record an access to the line containing byte address `addr`.
    pub fn record(&mut self, addr: u64) {
        let line = addr / self.line_bytes;
        self.time += 1;
        if self.time >= self.fenwick.len() {
            self.grow();
        }
        match self.last_access.insert(line, self.time) {
            None => {
                self.cold += 1;
            }
            Some(prev) => {
                // Distinct lines touched strictly after `prev`:
                let later = self.fenwick_sum(self.time - 1) - self.fenwick_sum(prev);
                *self.histogram.entry(later).or_insert(0) += 1;
                self.fenwick_add(prev, -1);
            }
        }
        self.fenwick_add(self.time, 1);
    }

    /// Total accesses recorded.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.time as u64
    }

    /// First-touch (cold/compulsory) accesses — also the number of
    /// distinct lines seen.
    #[must_use]
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// The histogram of finite reuse distances.
    #[must_use]
    pub fn distance_counts(&self) -> &BTreeMap<u64, u64> {
        &self.histogram
    }

    /// Misses a fully associative LRU cache of `capacity_lines` lines
    /// would take on this trace: cold misses plus every reuse at distance
    /// ≥ capacity.
    #[must_use]
    pub fn misses_for_capacity(&self, capacity_lines: u64) -> u64 {
        let capacity_reuses: u64 = self
            .histogram
            .range(capacity_lines..)
            .map(|(_, &c)| c)
            .sum();
        self.cold + capacity_reuses
    }

    /// The smallest LRU capacity (in lines) whose miss ratio does not
    /// exceed `target` — the knee of the miss-ratio curve; `None` if even
    /// a cache holding every line misses too often (cold misses dominate).
    #[must_use]
    pub fn capacity_for_miss_ratio(&self, target: f64) -> Option<u64> {
        if self.time == 0 {
            return Some(0);
        }
        let total = self.accesses() as f64;
        if self.cold as f64 / total > target {
            return None;
        }
        // Candidate capacities: each distinct distance + 1 (and 0).
        let mut candidates: Vec<u64> = std::iter::once(0)
            .chain(self.histogram.keys().map(|&d| d + 1))
            .collect();
        candidates.sort_unstable();
        candidates
            .into_iter()
            .find(|&c| self.misses_for_capacity(c) as f64 / total <= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_lines(h: &mut ReuseHistogram, lines: &[u64]) {
        for &l in lines {
            h.record(l * 64);
        }
    }

    #[test]
    fn first_touches_are_cold() {
        let mut h = ReuseHistogram::new(64);
        record_lines(&mut h, &[1, 2, 3, 4]);
        assert_eq!(h.cold_misses(), 4);
        assert!(h.distance_counts().is_empty());
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut h = ReuseHistogram::new(64);
        record_lines(&mut h, &[5, 5, 5]);
        assert_eq!(h.cold_misses(), 1);
        assert_eq!(h.distance_counts().get(&0), Some(&2));
        // Any cache with >= 1 line hits the re-touches.
        assert_eq!(h.misses_for_capacity(1), 1);
    }

    #[test]
    fn textbook_example() {
        // a b c b a: reuse(b) = 1 (c), reuse(a) = 2 (b, c distinct).
        let mut h = ReuseHistogram::new(64);
        record_lines(&mut h, &[10, 11, 12, 11, 10]);
        assert_eq!(h.cold_misses(), 3);
        assert_eq!(h.distance_counts().get(&1), Some(&1));
        assert_eq!(h.distance_counts().get(&2), Some(&1));
    }

    #[test]
    fn repeated_touches_do_not_inflate_distance() {
        // a b b b a: distance of the final a is 1 (only b distinct).
        let mut h = ReuseHistogram::new(64);
        record_lines(&mut h, &[1, 2, 2, 2, 1]);
        assert_eq!(h.distance_counts().get(&1), Some(&1));
        assert_eq!(h.distance_counts().get(&0), Some(&2));
    }

    #[test]
    fn cyclic_sweep_distances_equal_working_set() {
        // Sweeping N lines cyclically: every reuse has distance N-1.
        let n = 50u64;
        let mut h = ReuseHistogram::new(64);
        for _round in 0..4 {
            record_lines(&mut h, &(0..n).collect::<Vec<_>>());
        }
        assert_eq!(h.cold_misses(), n);
        assert_eq!(h.distance_counts().get(&(n - 1)), Some(&(3 * n)));
        // LRU of exactly n lines hits; n-1 misses everything (the classic
        // LRU cliff).
        assert_eq!(h.misses_for_capacity(n), n);
        assert_eq!(h.misses_for_capacity(n - 1), 4 * n);
    }

    #[test]
    fn miss_curve_is_monotone_in_capacity() {
        let mut h = ReuseHistogram::new(64);
        let pattern: Vec<u64> = (0..200).map(|i| (i * 37) % 64).collect();
        record_lines(&mut h, &pattern);
        let mut prev = u64::MAX;
        for c in 0..70 {
            let m = h.misses_for_capacity(c);
            assert!(m <= prev, "miss curve must be non-increasing");
            prev = m;
        }
        assert_eq!(h.misses_for_capacity(10_000), h.cold_misses());
    }

    #[test]
    fn capacity_for_miss_ratio_finds_the_knee() {
        let n = 32u64;
        let mut h = ReuseHistogram::new(64);
        for _ in 0..10 {
            record_lines(&mut h, &(0..n).collect::<Vec<_>>());
        }
        // 10 rounds x 32 accesses; cold 32. Capacity 32 -> ratio 0.1.
        assert_eq!(h.capacity_for_miss_ratio(0.11), Some(n));
        assert_eq!(h.capacity_for_miss_ratio(0.05), None, "cold floor");
    }

    #[test]
    fn addresses_within_one_line_are_one_line() {
        let mut h = ReuseHistogram::new(64);
        h.record(0);
        h.record(63);
        h.record(64);
        assert_eq!(h.cold_misses(), 2);
        assert_eq!(h.distance_counts().get(&0), Some(&1));
    }

    #[test]
    fn grows_past_initial_fenwick_capacity() {
        let mut h = ReuseHistogram::new(64);
        for i in 0..5000u64 {
            h.record((i % 100) * 64);
        }
        assert_eq!(h.accesses(), 5000);
        assert_eq!(h.cold_misses(), 100);
        assert_eq!(h.misses_for_capacity(100), 100);
    }
}
