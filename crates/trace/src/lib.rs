//! Memory-access traces for the `membound` simulator.
//!
//! The kernels in `membound-core` exist in two forms: a *native* form that
//! really executes on the host, and a *traced* form that emits the same
//! sequence of memory references into a [`TraceSink`]. The simulator in
//! `membound-sim` consumes those references and charges them against a
//! device model (caches, TLBs, prefetchers, DRAM channels).
//!
//! This crate defines:
//!
//! * [`MemAccess`] — a single load/store/instruction-fetch reference,
//! * [`AccessKind`] — the reference kind,
//! * [`TraceSink`] — the consumer-side trait the simulator implements,
//! * [`TraceBuffer`] — an in-memory recording sink,
//! * [`IterCost`] — the per-iteration instruction budget that accompanies a
//!   stream of references so the core timing model can charge compute cycles,
//! * [`TracedProgram`] — the producer-side trait kernels implement,
//! * [`synthetic`] — stride/random/pointer-chase reference generators used by
//!   the simulator's own test-suite and by the STREAM-style calibration runs.
//!
//! # Example
//!
//! ```
//! use membound_trace::{AccessKind, MemAccess, TraceBuffer, TraceSink};
//!
//! let mut buf = TraceBuffer::new();
//! buf.access(MemAccess::load(0x1000, 8));
//! buf.access(MemAccess::store(0x2000, 8));
//! assert_eq!(buf.len(), 2);
//! assert_eq!(buf.stats().bytes_loaded, 8);
//! assert_eq!(buf.stats().bytes_stored, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod buffer;
mod codec;
pub mod ir;
mod program;
pub mod reuse;
pub mod synthetic;

pub use access::{AccessKind, MemAccess};
pub use buffer::{TraceBuffer, TraceStats};
pub use codec::CodecError;
pub use ir::{IrStats, Recorder, RecordingSink, TraceOp};
pub use program::{IterCost, TracedProgram, WorkloadFootprint};

/// A consumer of memory references.
///
/// Implemented by [`TraceBuffer`] (records everything) and by the simulator's
/// per-core pipelines (charges each reference against the memory hierarchy as
/// it arrives, without materializing the trace).
pub trait TraceSink {
    /// Consume one memory reference.
    fn access(&mut self, access: MemAccess);

    /// Charge the compute cost of `iters` loop iterations, each costing
    /// `cost`.
    ///
    /// Sinks that only care about traffic (like [`TraceBuffer`]) may ignore
    /// this; timing sinks convert it into issue-slots.
    fn compute(&mut self, cost: IterCost, iters: u64) {
        let _ = (cost, iters);
    }

    /// Mark a synchronization point (e.g. an OpenMP-style barrier at the end
    /// of a parallel region). Timing sinks align their clock here.
    fn barrier(&mut self) {}

    /// Convenience: a `size`-byte load at `addr`.
    fn load(&mut self, addr: u64, size: u32) {
        self.access(MemAccess::load(addr, size));
    }

    /// Convenience: a `size`-byte store at `addr`.
    fn store(&mut self, addr: u64, size: u32) {
        self.access(MemAccess::store(addr, size));
    }

    /// Consume a contiguous unit-stride run over `[addr, addr + len)`;
    /// `write` selects stores over loads.
    ///
    /// The default splits the run into one [`MemAccess`] probe per
    /// 64-byte cache line touched (sizes exact, so byte-traffic
    /// statistics are preserved) and dispatches each through
    /// [`TraceSink::access`]. Simulating sinks may override it to process
    /// the whole run in bulk — amortizing address translation per page
    /// and probing per line instead of per access — as long as every
    /// observable statistic stays identical to the per-probe default.
    fn access_range(&mut self, addr: u64, len: u64, write: bool) {
        emit_range(self, addr, len, write);
    }

    /// Emit a contiguous read of `[addr, addr + len)` as one line-granular
    /// probe per 64-byte cache line touched.
    ///
    /// Kernels use this for unit-stride inner loops: the cache model only
    /// cares about which lines are touched in which order, and the issue
    /// cost of the individual scalar loads is charged separately through
    /// [`TraceSink::compute`].
    fn load_range(&mut self, addr: u64, len: u64) {
        self.access_range(addr, len, false);
    }

    /// Emit a contiguous write of `[addr, addr + len)` as one line-granular
    /// probe per 64-byte cache line touched. See [`TraceSink::load_range`].
    fn store_range(&mut self, addr: u64, len: u64) {
        self.access_range(addr, len, true);
    }

    /// Consume a constant-stride batch: `count` references of
    /// `access_size` bytes each, element `i` at
    /// `base + stride_bytes * i` (wrapping; `stride_bytes` may be
    /// negative or zero). `write` selects stores over loads.
    ///
    /// The default dispatches one [`MemAccess`] per element through
    /// [`TraceSink::access`], in index order — semantically identical to
    /// the scalar loop it replaces. Simulating sinks may override it to
    /// execute the whole batch in bulk (amortizing translation over
    /// same-page spans, fusing prefetcher updates), as long as every
    /// observable statistic stays identical to the per-element default.
    fn access_strided(
        &mut self,
        base: u64,
        stride_bytes: i64,
        count: u64,
        access_size: u32,
        write: bool,
    ) {
        emit_strided(self, base, stride_bytes, count, access_size, write);
    }

    /// Consume a constant-stride batch of read-modify-write pairs: for
    /// each of the `count` elements, a load at
    /// `base + stride_bytes * i` immediately followed by a store to the
    /// same address (the transpose swap's column-side pattern).
    ///
    /// The default dispatches the load and the store per element through
    /// [`TraceSink::access`], preserving the exact interleaving of the
    /// scalar emission it replaces.
    fn access_strided_rmw(&mut self, base: u64, stride_bytes: i64, count: u64, access_size: u32) {
        for i in 0..count {
            let addr = strided_addr(base, stride_bytes, i);
            self.access(MemAccess::load(addr, access_size));
            self.access(MemAccess::store(addr, access_size));
        }
    }
}

/// Granularity of range probes: one probe per this many bytes. Matches the
/// 64-byte cache lines used by all four devices in the paper.
pub const PROBE_LINE_BYTES: u64 = 64;

/// Address of element `i` in a constant-stride batch (wrapping, so
/// negative strides and end-of-address-space bases are well-defined).
#[must_use]
pub fn strided_addr(base: u64, stride_bytes: i64, i: u64) -> u64 {
    base.wrapping_add_signed(stride_bytes.wrapping_mul(i as i64))
}

fn emit_strided<S: TraceSink + ?Sized>(
    sink: &mut S,
    base: u64,
    stride_bytes: i64,
    count: u64,
    access_size: u32,
    write: bool,
) {
    for i in 0..count {
        let addr = strided_addr(base, stride_bytes, i);
        if write {
            sink.access(MemAccess::store(addr, access_size));
        } else {
            sink.access(MemAccess::load(addr, access_size));
        }
    }
}

fn emit_range<S: TraceSink + ?Sized>(sink: &mut S, addr: u64, len: u64, write: bool) {
    let end = addr.saturating_add(len);
    let mut cur = addr;
    while cur < end {
        // `|` then saturate instead of `(cur / LINE + 1) * LINE`: the
        // latter overflows for addresses in the top line of the address
        // space (the same clamp `MemAccess::lines()` uses).
        let line_end = (cur | (PROBE_LINE_BYTES - 1)).saturating_add(1);
        let stop = line_end.min(end);
        let size = (stop - cur) as u32;
        if write {
            sink.access(MemAccess::store(cur, size));
        } else {
            sink.access(MemAccess::load(cur, size));
        }
        cur = stop;
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn access(&mut self, access: MemAccess) {
        (**self).access(access);
    }
    fn compute(&mut self, cost: IterCost, iters: u64) {
        (**self).compute(cost, iters);
    }
    fn barrier(&mut self) {
        (**self).barrier();
    }
    fn access_range(&mut self, addr: u64, len: u64, write: bool) {
        (**self).access_range(addr, len, write);
    }
    fn access_strided(
        &mut self,
        base: u64,
        stride_bytes: i64,
        count: u64,
        access_size: u32,
        write: bool,
    ) {
        (**self).access_strided(base, stride_bytes, count, access_size, write);
    }
    fn access_strided_rmw(&mut self, base: u64, stride_bytes: i64, count: u64, access_size: u32) {
        (**self).access_strided_rmw(base, stride_bytes, count, access_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_through_mut_ref_delegates() {
        let mut buf = TraceBuffer::new();
        {
            let sink: &mut dyn TraceSink = &mut buf;
            sink.load(0x10, 4);
            sink.store(0x20, 4);
            sink.barrier();
        }
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn load_range_splits_on_line_boundaries() {
        let mut buf = TraceBuffer::new();
        buf.load_range(60, 72); // spans lines 0, 1 and 2
        let sizes: Vec<u32> = buf.iter().map(|a| a.size).collect();
        assert_eq!(sizes, vec![4, 64, 4]);
        assert_eq!(buf.stats().bytes_loaded, 72);
        let lines: Vec<u64> = buf.iter().map(|a| a.line(64)).collect();
        assert_eq!(lines, vec![0, 1, 2]);
    }

    #[test]
    fn aligned_range_emits_full_line_probes() {
        let mut buf = TraceBuffer::new();
        buf.store_range(128, 128);
        assert_eq!(buf.len(), 2);
        assert!(buf.iter().all(|a| a.size == 64 && a.kind.is_write()));
        assert_eq!(buf.stats().bytes_stored, 128);
    }

    #[test]
    fn tiny_range_within_one_line_is_one_probe() {
        let mut buf = TraceBuffer::new();
        buf.load_range(10, 8);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.as_slice()[0].size, 8);
    }

    #[test]
    fn empty_range_emits_nothing() {
        let mut buf = TraceBuffer::new();
        buf.load_range(100, 0);
        assert!(buf.is_empty());
    }

    /// `load_range`/`store_range` must route through `access_range`, so a
    /// sink that overrides it sees every range — including calls made
    /// through a `&mut` reference.
    #[test]
    fn range_overrides_are_reachable_through_mut_refs() {
        struct Counting {
            ranges: Vec<(u64, u64, bool)>,
        }
        impl TraceSink for Counting {
            fn access(&mut self, _access: MemAccess) {
                panic!("bulk sink must not see per-probe accesses");
            }
            fn access_range(&mut self, addr: u64, len: u64, write: bool) {
                self.ranges.push((addr, len, write));
            }
        }
        let mut sink = Counting { ranges: Vec::new() };
        {
            let via_ref: &mut Counting = &mut sink;
            via_ref.load_range(0, 128);
            via_ref.store_range(64, 64);
        }
        sink.access_range(128, 8, false);
        assert_eq!(
            sink.ranges,
            vec![(0, 128, false), (64, 64, true), (128, 8, false)]
        );
    }

    /// Regression: `emit_range` computed the next line boundary as
    /// `(cur / 64 + 1) * 64`, which overflows for addresses in the top
    /// cache line of the address space (debug panic, release hang via
    /// `stop - cur` underflow). The saturating form clamps like
    /// `MemAccess::lines()`.
    #[test]
    fn range_in_top_line_of_address_space_terminates() {
        let mut buf = TraceBuffer::new();
        buf.load_range(u64::MAX - 8, 16);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.as_slice()[0].addr, u64::MAX - 8);
        assert_eq!(buf.as_slice()[0].size, 8);
    }

    /// The per-element default of `access_strided` must be
    /// probe-for-probe identical to the scalar loop it replaces, for
    /// positive, negative and zero strides.
    #[test]
    fn strided_default_matches_scalar_loop() {
        for &(base, stride) in &[
            (0x1000u64, 128i64),
            (0x8000, -640),
            (0x2000, 0),
            (u64::MAX - 100, 24),
        ] {
            let mut batched = TraceBuffer::new();
            batched.access_strided(base, stride, 9, 8, false);
            batched.access_strided(base, stride, 9, 8, true);
            batched.access_strided_rmw(base, stride, 9, 8);

            let mut scalar = TraceBuffer::new();
            for i in 0..9u64 {
                scalar.load(strided_addr(base, stride, i), 8);
            }
            for i in 0..9u64 {
                scalar.store(strided_addr(base, stride, i), 8);
            }
            for i in 0..9u64 {
                let addr = strided_addr(base, stride, i);
                scalar.load(addr, 8);
                scalar.store(addr, 8);
            }
            assert_eq!(
                batched.as_slice(),
                scalar.as_slice(),
                "base {base:#x} stride {stride}"
            );
        }
    }

    /// Strided batches must route through `access_strided`, so a sink
    /// that overrides it sees every batch — including through `&mut`.
    #[test]
    fn strided_overrides_are_reachable_through_mut_refs() {
        struct Counting {
            batches: Vec<(u64, i64, u64, u32, bool)>,
        }
        impl TraceSink for Counting {
            fn access(&mut self, _access: MemAccess) {
                panic!("bulk sink must not see per-element accesses");
            }
            fn access_strided(
                &mut self,
                base: u64,
                stride: i64,
                count: u64,
                size: u32,
                write: bool,
            ) {
                self.batches.push((base, stride, count, size, write));
            }
            fn access_strided_rmw(&mut self, base: u64, stride: i64, count: u64, size: u32) {
                self.batches.push((base, stride, count, size, true));
            }
        }
        let mut sink = Counting {
            batches: Vec::new(),
        };
        {
            let via_ref: &mut Counting = &mut sink;
            via_ref.access_strided(0x100, 64, 4, 8, false);
            via_ref.access_strided_rmw(0x200, -64, 4, 8);
        }
        assert_eq!(
            sink.batches,
            vec![(0x100, 64, 4, 8, false), (0x200, -64, 4, 8, true)]
        );
    }
}
