//! In-memory trace recording.

use crate::{AccessKind, IterCost, MemAccess, TraceSink};
use serde::{Deserialize, Serialize};

/// Aggregate statistics over a recorded trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of load references.
    pub loads: u64,
    /// Number of store references.
    pub stores: u64,
    /// Number of instruction fetches.
    pub fetches: u64,
    /// Total bytes loaded.
    pub bytes_loaded: u64,
    /// Total bytes stored.
    pub bytes_stored: u64,
    /// Total compute iterations charged via [`TraceSink::compute`].
    pub compute_iters: u64,
    /// Number of barriers observed.
    pub barriers: u64,
}

impl TraceStats {
    /// Total number of data references (loads + stores).
    #[must_use]
    pub fn data_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total bytes moved in either direction.
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }
}

/// A [`TraceSink`] that records every reference in order.
///
/// Used by tests that need to inspect exact access sequences, and as the
/// hand-off format when a trace is generated once and replayed against
/// several device models.
///
/// # Example
///
/// ```
/// use membound_trace::{MemAccess, TraceBuffer, TraceSink};
///
/// let mut buf = TraceBuffer::new();
/// for i in 0..4u64 {
///     buf.load(i * 8, 8);
/// }
/// assert_eq!(buf.len(), 4);
/// assert_eq!(buf.stats().bytes_loaded, 32);
/// assert!(buf.iter().all(|a| a.size == 8));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBuffer {
    accesses: Vec<MemAccess>,
    stats: TraceStats,
}

impl TraceBuffer {
    /// Create an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with room for `cap` references.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            accesses: Vec::with_capacity(cap),
            stats: TraceStats::default(),
        }
    }

    /// Number of recorded references.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether no references have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Aggregate statistics of the recorded references.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Iterate over the recorded references in order.
    pub fn iter(&self) -> std::slice::Iter<'_, MemAccess> {
        self.accesses.iter()
    }

    /// View the recorded references as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[MemAccess] {
        &self.accesses
    }

    /// Replay every recorded reference into another sink, in order.
    pub fn replay_into<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        for &a in &self.accesses {
            sink.access(a);
        }
    }

    /// Drop all recorded references and reset statistics.
    pub fn clear(&mut self) {
        self.accesses.clear();
        self.stats = TraceStats::default();
    }
}

impl TraceSink for TraceBuffer {
    fn access(&mut self, access: MemAccess) {
        match access.kind {
            AccessKind::Load => {
                self.stats.loads += 1;
                self.stats.bytes_loaded += u64::from(access.size);
            }
            AccessKind::Store => {
                self.stats.stores += 1;
                self.stats.bytes_stored += u64::from(access.size);
            }
            AccessKind::Fetch => self.stats.fetches += 1,
        }
        self.accesses.push(access);
    }

    fn compute(&mut self, _cost: IterCost, iters: u64) {
        self.stats.compute_iters += iters;
    }

    fn barrier(&mut self) {
        self.stats.barriers += 1;
    }
}

impl Extend<MemAccess> for TraceBuffer {
    fn extend<T: IntoIterator<Item = MemAccess>>(&mut self, iter: T) {
        for a in iter {
            self.access(a);
        }
    }
}

impl FromIterator<MemAccess> for TraceBuffer {
    fn from_iter<T: IntoIterator<Item = MemAccess>>(iter: T) -> Self {
        let mut buf = Self::new();
        buf.extend(iter);
        buf
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = &'a MemAccess;
    type IntoIter = std::slice::Iter<'a, MemAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for TraceBuffer {
    type Item = MemAccess;
    type IntoIter = std::vec::IntoIter<MemAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut buf = TraceBuffer::new();
        buf.load(0, 8);
        buf.store(8, 8);
        buf.access(MemAccess::fetch(16, 4));
        let kinds: Vec<_> = buf.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AccessKind::Load, AccessKind::Store, AccessKind::Fetch]
        );
    }

    #[test]
    fn stats_track_each_kind() {
        let mut buf = TraceBuffer::new();
        buf.load(0, 8);
        buf.load(8, 4);
        buf.store(16, 8);
        buf.access(MemAccess::fetch(0x1000, 4));
        let s = buf.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.bytes_loaded, 12);
        assert_eq!(s.bytes_stored, 8);
        assert_eq!(s.data_refs(), 3);
        assert_eq!(s.bytes_total(), 20);
    }

    #[test]
    fn compute_and_barriers_are_counted() {
        let mut buf = TraceBuffer::new();
        buf.compute(IterCost::default(), 10);
        buf.barrier();
        buf.barrier();
        assert_eq!(buf.stats().compute_iters, 10);
        assert_eq!(buf.stats().barriers, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut buf = TraceBuffer::new();
        buf.load(0, 8);
        buf.barrier();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.stats(), TraceStats::default());
    }

    #[test]
    fn replay_preserves_sequence_and_stats() {
        let mut a = TraceBuffer::new();
        a.load(0, 8);
        a.store(64, 8);
        let mut b = TraceBuffer::new();
        a.replay_into(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.stats().bytes_total(), b.stats().bytes_total());
    }

    #[test]
    fn collects_from_iterator() {
        let buf: TraceBuffer = (0..8u64).map(|i| MemAccess::load(i * 64, 8)).collect();
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.stats().loads, 8);
    }

    #[test]
    fn into_iterator_round_trips() {
        let mut buf = TraceBuffer::new();
        buf.load(0, 8);
        buf.store(8, 8);
        let v: Vec<MemAccess> = buf.clone().into_iter().collect();
        assert_eq!(v.len(), 2);
        let borrowed: Vec<&MemAccess> = (&buf).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }

    #[test]
    fn with_capacity_preallocates() {
        let buf = TraceBuffer::with_capacity(1024);
        assert!(buf.is_empty());
    }
}
