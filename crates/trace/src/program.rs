//! The producer-side contract between kernels and the simulator.

use crate::TraceSink;
use serde::{Deserialize, Serialize};

/// Per-loop-iteration instruction budget, used by the simulator's core
/// timing model to charge compute cycles alongside memory references.
///
/// The counts describe *one* iteration of the innermost loop body as the
/// compiler would emit it for a scalar in-order machine: integer ALU ops
/// (address arithmetic, loop control), floating-point ops, and whether the
/// body is auto-vectorizable (contiguous, no loop-carried dependence) so
/// that wide machines can retire several iterations per issue group.
///
/// # Example
///
/// ```
/// use membound_trace::IterCost;
///
/// // STREAM triad: a[i] = b[i] + d * c[i]  — one FMA (2 flops), two loads,
/// // one store, ~2 int ops for addressing; vectorizable over f64 elements.
/// let cost = IterCost::new(2, 2).mem(2, 1).elem_bytes(8).vectorizable(true);
/// assert_eq!(cost.flops, 2);
/// assert_eq!(cost.loads, 2);
/// assert!(cost.vectorizable);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterCost {
    /// Integer/address ALU operations per iteration (loop control included).
    pub int_ops: u32,
    /// Floating-point operations per iteration (an FMA counts as 2).
    pub flops: u32,
    /// Load instructions issued per iteration.
    pub loads: u32,
    /// Store instructions issued per iteration.
    pub stores: u32,
    /// Width of the data element the loop processes, in bytes. Determines
    /// how many iterations a vector register covers on wide machines.
    pub elem_bytes: u32,
    /// Whether a vectorizing compiler would vectorize the loop body.
    pub vectorizable: bool,
}

impl Default for IterCost {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl IterCost {
    /// Create a cost with the given integer-op and flop counts and no
    /// memory operations, 8-byte elements, not vectorizable.
    #[must_use]
    pub fn new(int_ops: u32, flops: u32) -> Self {
        Self {
            int_ops,
            flops,
            loads: 0,
            stores: 0,
            elem_bytes: 8,
            vectorizable: false,
        }
    }

    /// Set the per-iteration load and store instruction counts.
    #[must_use]
    pub fn mem(mut self, loads: u32, stores: u32) -> Self {
        self.loads = loads;
        self.stores = stores;
        self
    }

    /// Set the element width in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn elem_bytes(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "element width must be nonzero");
        self.elem_bytes = bytes;
        self
    }

    /// Mark the loop body as (non-)vectorizable.
    #[must_use]
    pub fn vectorizable(mut self, yes: bool) -> Self {
        self.vectorizable = yes;
        self
    }

    /// Total scalar operations per iteration, memory ops included.
    #[must_use]
    pub fn total_ops(&self) -> u32 {
        self.int_ops + self.flops + self.loads + self.stores
    }
}

/// Description of how much memory a workload touches, used to size
/// simulated runs and to compute the paper's §3.3 bandwidth-utilization
/// metric (bytes that *must* move ÷ time ÷ STREAM bandwidth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadFootprint {
    /// Bytes of distinct data the kernel reads at least once.
    pub bytes_read: u64,
    /// Bytes of distinct data the kernel writes at least once.
    pub bytes_written: u64,
}

impl WorkloadFootprint {
    /// Create a footprint from distinct read and written byte counts.
    #[must_use]
    pub fn new(bytes_read: u64, bytes_written: u64) -> Self {
        Self {
            bytes_read,
            bytes_written,
        }
    }

    /// The compulsory DRAM traffic: every distinct byte read must be loaded
    /// once and every distinct byte written must be stored once.
    #[must_use]
    pub fn compulsory_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// A kernel variant that can emit its memory-reference stream.
///
/// Implementors must emit references in program order for a *single*
/// simulated thread; parallel kernels are traced per-core by the harness,
/// which partitions the iteration space with `membound-parallel` schedules
/// and calls [`TracedProgram::trace_range`] once per simulated core.
pub trait TracedProgram {
    /// Total number of outer-loop iterations in the kernel's parallel
    /// dimension. Sequential kernels return their single outer extent.
    fn outer_iterations(&self) -> u64;

    /// Emit the references performed by outer iterations `lo..hi`.
    fn trace_range<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64);

    /// Emit the whole kernel into `sink` as a single thread.
    fn trace_all<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        self.trace_range(sink, 0, self.outer_iterations());
    }

    /// The distinct-byte footprint of the kernel, for the §3.3 metric.
    fn footprint(&self) -> WorkloadFootprint;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    struct Fill {
        base: u64,
        n: u64,
    }

    impl TracedProgram for Fill {
        fn outer_iterations(&self) -> u64 {
            self.n
        }
        fn trace_range<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64) {
            for i in lo..hi {
                sink.store(self.base + i * 8, 8);
            }
            sink.compute(IterCost::new(1, 0), hi - lo);
        }
        fn footprint(&self) -> WorkloadFootprint {
            WorkloadFootprint::new(0, self.n * 8)
        }
    }

    #[test]
    fn trace_all_covers_every_iteration() {
        let p = Fill {
            base: 0x1000,
            n: 16,
        };
        let mut buf = TraceBuffer::new();
        p.trace_all(&mut buf);
        assert_eq!(buf.len(), 16);
        assert_eq!(buf.stats().bytes_stored, 128);
        assert_eq!(buf.stats().compute_iters, 16);
    }

    #[test]
    fn trace_range_is_a_contiguous_slice_of_trace_all() {
        let p = Fill { base: 0, n: 10 };
        let mut whole = TraceBuffer::new();
        p.trace_all(&mut whole);
        let mut part = TraceBuffer::new();
        p.trace_range(&mut part, 3, 7);
        assert_eq!(&whole.as_slice()[3..7], part.as_slice());
    }

    #[test]
    fn iter_cost_totals_and_builder() {
        let c = IterCost::new(3, 2).vectorizable(true);
        assert_eq!(c.total_ops(), 5);
        assert!(c.vectorizable);
        assert_eq!(IterCost::default().total_ops(), 0);
    }

    #[test]
    fn footprint_compulsory_traffic() {
        let f = WorkloadFootprint::new(100, 50);
        assert_eq!(f.compulsory_bytes(), 150);
    }
}
