//! Compact binary (de)serialization of traces.
//!
//! Recording a kernel's reference stream once and replaying it against
//! several device models is the simulator's cheapest workflow; this
//! module gives [`TraceBuffer`] a stable on-disk format for that:
//!
//! ```text
//! magic  b"MBTRACE1"
//! count  u64 LE
//! then per access: kind u8 (0 load / 1 store / 2 fetch),
//!                  size u32 LE, addr u64 LE
//! ```
//!
//! # Example
//!
//! ```
//! use membound_trace::{TraceBuffer, TraceSink};
//!
//! let mut buf = TraceBuffer::new();
//! buf.load(0x1000, 8);
//! buf.store(0x2000, 8);
//! let mut bytes = Vec::new();
//! buf.write_binary(&mut bytes)?;
//! let back = TraceBuffer::read_binary(&mut bytes.as_slice())?;
//! assert_eq!(buf.as_slice(), back.as_slice());
//! # Ok::<(), membound_trace::CodecError>(())
//! ```

use crate::{AccessKind, MemAccess, TraceBuffer, TraceSink};
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"MBTRACE1";

/// Errors from reading or writing binary traces.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the trace magic.
    BadMagic,
    /// An access record carries an unknown kind byte.
    BadKind(u8),
    /// The input ended before `count` records were read.
    Truncated,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace i/o failed: {e}"),
            CodecError::BadMagic => write!(f, "input is not a membound trace (bad magic)"),
            CodecError::BadKind(k) => write!(f, "unknown access kind byte {k}"),
            CodecError::Truncated => write!(f, "trace ended before the declared record count"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn kind_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Fetch => 2,
    }
}

fn byte_kind(b: u8) -> Result<AccessKind, CodecError> {
    match b {
        0 => Ok(AccessKind::Load),
        1 => Ok(AccessKind::Store),
        2 => Ok(AccessKind::Fetch),
        other => Err(CodecError::BadKind(other)),
    }
}

impl TraceBuffer {
    /// Write the recorded accesses in the binary trace format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for a in self.iter() {
            w.write_all(&[kind_byte(a.kind)])?;
            w.write_all(&a.size.to_le_bytes())?;
            w.write_all(&a.addr.to_le_bytes())?;
        }
        Ok(())
    }

    /// Read a binary trace produced by [`TraceBuffer::write_binary`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad magic, unknown kind bytes, or a
    /// truncated stream.
    pub fn read_binary<R: Read>(r: &mut R) -> Result<Self, CodecError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(|_| CodecError::BadMagic)?;
        if &magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut count_bytes = [0u8; 8];
        r.read_exact(&mut count_bytes)
            .map_err(|_| CodecError::Truncated)?;
        let count = u64::from_le_bytes(count_bytes);
        let mut buf = TraceBuffer::with_capacity(count.min(1 << 24) as usize);
        let mut rec = [0u8; 13];
        for _ in 0..count {
            r.read_exact(&mut rec).map_err(|_| CodecError::Truncated)?;
            let kind = byte_kind(rec[0])?;
            let size = u32::from_le_bytes(rec[1..5].try_into().expect("4 bytes"));
            let addr = u64::from_le_bytes(rec[5..13].try_into().expect("8 bytes"));
            buf.access(MemAccess::new(addr, size, kind));
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        buf.load(0, 8);
        buf.store(u64::MAX - 64, 64);
        buf.access(MemAccess::fetch(0x4000, 4));
        buf.load_range(100, 200);
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample();
        let mut bytes = Vec::new();
        original.write_binary(&mut bytes).unwrap();
        let back = TraceBuffer::read_binary(&mut bytes.as_slice()).unwrap();
        assert_eq!(original.as_slice(), back.as_slice());
        assert_eq!(original.stats(), back.stats());
    }

    #[test]
    fn empty_trace_round_trips() {
        let empty = TraceBuffer::new();
        let mut bytes = Vec::new();
        empty.write_binary(&mut bytes).unwrap();
        assert_eq!(bytes.len(), 16); // magic + count
        let back = TraceBuffer::read_binary(&mut bytes.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTATRACE_______".to_vec();
        match TraceBuffer::read_binary(&mut bytes.as_slice()) {
            Err(CodecError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut bytes = Vec::new();
        sample().write_binary(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        match TraceBuffer::read_binary(&mut bytes.as_slice()) {
            Err(CodecError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = Vec::new();
        sample().write_binary(&mut bytes).unwrap();
        bytes[16] = 7; // first record's kind byte
        match TraceBuffer::read_binary(&mut bytes.as_slice()) {
            Err(CodecError::BadKind(7)) => {}
            other => panic!("expected BadKind, got {other:?}"),
        }
    }

    #[test]
    fn record_size_is_13_bytes() {
        let mut one = TraceBuffer::new();
        one.load(42, 8);
        let mut bytes = Vec::new();
        one.write_binary(&mut bytes).unwrap();
        assert_eq!(bytes.len(), 16 + 13);
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::BadKind(9).to_string().contains('9'));
        assert!(CodecError::Truncated.to_string().contains("ended"));
    }
}
