//! FIG3: relative memory-bandwidth utilization (§3.3 metric) of the naïve
//! and the best optimized transposition, per device and matrix size.
//!
//! STREAM baselines and the transpose matrix both execute through the
//! parallel experiment engine; the run log carries every cell's
//! utilization. With `--cache-dir` (or `MEMBOUND_CACHE_DIR`) both cell
//! kinds memoize into the persistent result cache, so a warm re-run
//! reproduces the figure without simulating.

use membound_bench::{scale_banner, Args};
use membound_core::report::{to_json, TextTable};
use membound_core::runner::{Cell, ExperimentMatrix};
use membound_core::{TransposeConfig, TransposeVariant};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    panel_n: usize,
    device: String,
    stream_gbps: f64,
    naive_utilization: f64,
    best_variant: String,
    best_utilization: f64,
}

fn main() {
    let args = Args::parse("fig3_transpose_util");
    let (n1, n2) = args.transpose_sizes();
    let devices = args.devices();
    let engine = args.engine();
    println!("FIG3: relative memory-bandwidth utilization, transposition");
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    // The §3.3 denominator: each device's STREAM DRAM bandwidth,
    // measured in parallel.
    let baselines = engine.stream_baselines(
        &devices
            .iter()
            .map(|d| (d.label().to_string(), d.spec()))
            .collect::<Vec<_>>(),
    );

    let mut matrix = ExperimentMatrix::new("fig3_transpose_util");
    for (label, gbps) in &baselines {
        matrix.stream_baseline(label, *gbps);
    }
    for n in [n1, n2] {
        let cfg = TransposeConfig::new(n);
        for device in &devices {
            let spec = device.spec();
            for variant in TransposeVariant::all() {
                matrix.push(Cell::transpose(
                    n.to_string(),
                    device.label(),
                    &spec,
                    variant,
                    cfg,
                ));
            }
        }
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut rows = Vec::new();
    for n in [n1, n2] {
        println!("panel: {n} x {n}");
        let mut table = TextTable::new(
            [
                "device",
                "STREAM GB/s",
                "naive util",
                "best variant",
                "best util",
            ]
            .map(String::from)
            .to_vec(),
        );
        for device in &devices {
            let ladder: Vec<_> = results
                .cells
                .iter()
                .filter(|r| r.cell.panel == n.to_string() && r.cell.device == device.label())
                .collect();
            let stream = baselines
                .iter()
                .find(|(l, _)| l == device.label())
                .map(|(_, g)| *g)
                .unwrap_or(0.0);
            let naive = ladder
                .iter()
                .find(|r| r.cell.variant == "Naive")
                .and_then(|r| r.bandwidth_utilization);
            let Some(naive) = naive else {
                table.row(vec![
                    device.label().into(),
                    "-".into(),
                    "does not fit in memory".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            };
            let (best_variant, best) = ladder
                .iter()
                .skip(1)
                .filter_map(|r| r.bandwidth_utilization.map(|u| (r.cell.variant.clone(), u)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one optimized variant");
            table.row(vec![
                device.label().into(),
                format!("{stream:.2}"),
                format!("{naive:.3}"),
                best_variant.clone(),
                format!("{best:.3}"),
            ]);
            rows.push(Row {
                panel_n: n,
                device: device.label().into(),
                stream_gbps: stream,
                naive_utilization: naive,
                best_variant,
                best_utilization: best,
            });
        }
        println!("{}", table.render());
    }
    println!(
        "shape check (paper Fig. 3): optimization raises utilization on every\n\
         device; the StarFive reaches the highest relative utilization (its\n\
         DRAM is so slow that the optimized kernel saturates it); the Mango\n\
         Pi stays low (single cache level, modest L1)."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
