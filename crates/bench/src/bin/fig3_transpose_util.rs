//! FIG3: relative memory-bandwidth utilization (§3.3 metric) of the naïve
//! and the best optimized transposition, per device and matrix size.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::{simulate_transpose, stream_dram_gbps};
use membound_core::report::{to_json, TextTable};
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    panel_n: usize,
    device: String,
    stream_gbps: f64,
    naive_utilization: f64,
    best_variant: String,
    best_utilization: f64,
}

fn main() {
    let args = Args::parse("fig3_transpose_util");
    let (n1, n2) = args.transpose_sizes();
    println!("FIG3: relative memory-bandwidth utilization, transposition");
    println!("{}\n", scale_banner(args.full));

    let mut rows = Vec::new();
    for n in [n1, n2] {
        let cfg = TransposeConfig::new(n);
        println!("panel: {n} x {n}");
        let mut table = TextTable::new(
            ["device", "STREAM GB/s", "naive util", "best variant", "best util"]
                .map(String::from)
                .to_vec(),
        );
        for device in Device::all() {
            let spec = device.spec();
            if !spec.fits_in_memory(cfg.matrix_bytes()) {
                table.row(vec![
                    device.label().into(),
                    "-".into(),
                    "does not fit in memory".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let stream = stream_dram_gbps(&spec);
            let util = |variant| {
                simulate_transpose(&spec, variant, cfg)
                    .map(|r| r.bandwidth_utilization(cfg.nominal_bytes(), stream))
            };
            let naive = util(TransposeVariant::Naive).unwrap_or(0.0);
            let (best_variant, best) = TransposeVariant::all()
                .into_iter()
                .skip(1)
                .filter_map(|v| util(v).map(|u| (v, u)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one optimized variant");
            table.row(vec![
                device.label().into(),
                format!("{stream:.2}"),
                format!("{naive:.3}"),
                best_variant.label().into(),
                format!("{best:.3}"),
            ]);
            rows.push(Row {
                panel_n: n,
                device: device.label().into(),
                stream_gbps: stream,
                naive_utilization: naive,
                best_variant: best_variant.label().into(),
                best_utilization: best,
            });
        }
        println!("{}", table.render());
    }
    println!(
        "shape check (paper Fig. 3): optimization raises utilization on every\n\
         device; the StarFive reaches the highest relative utilization (its\n\
         DRAM is so slow that the optimized kernel saturates it); the Mango\n\
         Pi stays low (single cache level, modest L1)."
    );
    args.write_json(&to_json(&rows));
}
