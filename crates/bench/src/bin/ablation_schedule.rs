//! ABLATION: loop schedules on the triangular transpose loop.
//!
//! DESIGN.md §7: the paper introduces `schedule(dynamic)` to fix the
//! triangular imbalance. How do static, chunked-static, dynamic and
//! guided compare as the core count grows? (Pure schedule study: the
//! staged ManualBlocking kernel with each schedule, on the Xeon model.)

use membound_bench::{scale_banner, Args};
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::runner::resolve_jobs;
use membound_core::{TransposeConfig, TransposeTrace, TransposeVariant};
use membound_parallel::Schedule;
use membound_sim::{Device, JobBudget, Machine};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    schedule: String,
    threads: u32,
    seconds: f64,
    imbalance: f64,
}

fn main() {
    let args = Args::parse("ablation_schedule");
    let n = if args.full { 8192 } else { 2048 };
    let cfg = TransposeConfig::new(n);
    println!("ABLATION: schedules on the triangular block loop, Xeon model, n = {n}");
    println!("{}\n", scale_banner(args.full));

    let spec = Device::IntelXeon4310T.spec();
    let trace = TransposeTrace::new(cfg);
    let variant = TransposeVariant::ManualBlocking; // kernel fixed; schedule varies
    let total = trace.outer_iterations(variant);
    let schedules = [
        ("static", Schedule::Static),
        ("static,4", Schedule::StaticChunk(4)),
        ("dynamic,1", Schedule::Dynamic(1)),
        ("dynamic,4", Schedule::Dynamic(4)),
        ("guided", Schedule::Guided(1)),
    ];

    let mut table = TextTable::new(
        ["schedule", "threads", "time", "plan imbalance"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    // One shared budget: cells run serially here, so every slot is spare
    // for the per-core fan-out inside `Machine::simulate`.
    let budget = JobBudget::new(resolve_jobs(args.jobs));
    for threads in [2u32, 4, 10] {
        for (name, schedule) in schedules {
            let weight = |i: u64| trace.weight(variant, i);
            let plan = schedule.plan(total, threads, weight);
            let machine = Machine::new(spec.clone()).with_budget(budget.clone());
            let report = machine.simulate(threads, |tid, sink| {
                for range in &plan[tid as usize] {
                    trace.trace_outer(variant, sink, tid, range.start, range.end);
                }
            });
            let imbalance = schedule.imbalance(total, threads, weight);
            table.row(vec![
                name.into(),
                threads.to_string(),
                fmt_seconds(report.seconds),
                format!("{imbalance:.3}"),
            ]);
            rows.push(Row {
                schedule: name.into(),
                threads,
                seconds: report.seconds,
                imbalance,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: static's imbalance grows with the thread count (the\n\
         first thread owns the longest rows); dynamic and guided stay near\n\
         1.0 and win whenever the machine is not already bandwidth-bound."
    );
    args.write_json(&to_json(&rows));
}
