//! WHAT-IF: STREAM triad at n >> LLC — the analytic executor's headline case.
//!
//! The paper's figures stop at array sizes a workstation can replay
//! per element in seconds. This bench asks what the same pipeline
//! costs when n is pushed far past the last-level cache (the regime
//! the paper's bandwidth model actually targets): a single-pass
//! blocked triad a[i] = b[i] + s*c[i] over arrays of `--elements`
//! doubles, simulated twice on the same machine configuration —
//! once with the analytic trace-IR executor (the default), once with
//! it forced off (pure per-element replay) — and reports the honest
//! same-session wall-clock ratio plus the digest-identity proof that
//! both paths computed the *same* statistics.
//!
//! TLB translation is disabled (`DeviceSpec::without_tlb`): the
//! steady-state isomorphism the fast-forward rests on does not hold
//! under finite TLBs (DESIGN.md §15), which is also why fig2/fig6
//! run analytic-on at replay speed. Large-n bandwidth studies are
//! exactly the place where translation is routinely factored out.
//!
//! Devices whose modelled DRAM cannot hold the three arrays are
//! skipped with a note (the Mango Pi's 1 GB holds nothing at this
//! scale); the StarFive's random-replacement caches defeat the
//! periodicity proof, so it reports an honest ~1x with the analytic
//! ops counter at zero.

use std::time::Instant;

use membound_bench::{scale_banner, Args};
use membound_core::report::{fmt_seconds, fmt_speedup, to_json, TextTable};
use membound_sim::{Machine, SimReport};
use membound_trace::{IterCost, TraceSink};
use serde::Serialize;

/// Elements per emission block: 8 KiB per stream, so the recorder sees
/// three `Range` ops per block and folds the whole pass into one
/// `Repeat` instead of buffering per-line probes.
const BLOCK_ELEMS: u64 = 1024;

#[derive(Serialize)]
struct Row {
    device: String,
    elements: u64,
    array_mb: u64,
    analytic_seconds: f64,
    replay_seconds: f64,
    speedup: f64,
    digest: String,
    digests_match: bool,
    analytic_ops: u64,
    replay_fallback_ops: u64,
}

/// One single-pass blocked triad over three well-separated arrays.
struct LargeTriad {
    elements: u64,
    base_a: u64,
    base_b: u64,
    base_c: u64,
}

impl LargeTriad {
    fn new(elements: u64) -> Self {
        // Same placement rule as StreamTrace: regions far apart with a
        // 65-line skew so power-of-two bases don't collapse the three
        // streams onto one cache set.
        let stride = (elements * 8).next_power_of_two().max(1 << 20) + 65 * 64;
        Self {
            elements,
            base_a: 0x2000_0000_0000,
            base_b: 0x2000_0000_0000 + stride,
            base_c: 0x2000_0000_0000 + 2 * stride,
        }
    }

    fn bytes_per_array(&self) -> u64 {
        self.elements * 8
    }

    fn trace<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        let mut i = 0;
        while i < self.elements {
            let hi = (i + BLOCK_ELEMS).min(self.elements);
            let bytes = (hi - i) * 8;
            sink.load_range(self.base_b + i * 8, bytes);
            sink.load_range(self.base_c + i * 8, bytes);
            sink.store_range(self.base_a + i * 8, bytes);
            i = hi;
        }
        let cost = IterCost::new(2, 2)
            .mem(2, 1)
            .elem_bytes(8)
            .vectorizable(true);
        sink.compute(cost, self.elements);
    }
}

fn run(machine: &Machine, triad: &LargeTriad) -> (SimReport, f64) {
    let start = Instant::now();
    let report = machine.simulate(1, |_tid, sink| triad.trace(sink));
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::parse("whatif_large_n");
    let elements: u64 = if args.full { 1 << 30 } else { 1 << 28 };
    let devices = args.devices();
    let triad = LargeTriad::new(elements);
    println!("WHAT-IF: single-pass triad at n >> LLC, analytic vs forced replay");
    println!("{}", scale_banner(args.full));
    println!(
        "n = {} doubles ({} MiB per array, 3 arrays), TLB off, 1 core\n",
        elements,
        triad.bytes_per_array() >> 20
    );

    let mut rows = Vec::new();
    for device in &devices {
        let spec = device.spec().without_tlb();
        if !spec.fits_in_memory(3 * triad.bytes_per_array()) {
            println!(
                "{}: skipped — {} MiB working set exceeds modelled DRAM",
                device.label(),
                (3 * triad.bytes_per_array()) >> 20
            );
            continue;
        }
        let (analytic, analytic_seconds) = run(&Machine::new(spec.clone()), &triad);
        let (replay, replay_seconds) = run(&Machine::new(spec).with_analytic(false), &triad);
        let digests_match = analytic.stats_digest() == replay.stats_digest();
        assert!(
            digests_match,
            "{}: analytic digest {:016x} != replay digest {:016x}",
            device.label(),
            analytic.stats_digest(),
            replay.stats_digest()
        );
        rows.push(Row {
            device: device.label().to_string(),
            elements,
            array_mb: triad.bytes_per_array() >> 20,
            analytic_seconds,
            replay_seconds,
            speedup: replay_seconds / analytic_seconds,
            digest: format!("{:016x}", analytic.stats_digest()),
            digests_match,
            analytic_ops: analytic.analytic_ops,
            replay_fallback_ops: analytic.replay_fallback_ops,
        });
    }

    let mut table = TextTable::new(
        [
            "device", "analytic", "replay", "speedup", "digest", "ff ops",
        ]
        .map(String::from)
        .to_vec(),
    );
    for row in &rows {
        table.row(vec![
            row.device.clone(),
            fmt_seconds(row.analytic_seconds),
            fmt_seconds(row.replay_seconds),
            fmt_speedup(row.speedup),
            row.digest.clone(),
            row.analytic_ops.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "digest identity holds on every row; rows with ff ops = 0 fell back\n\
         to per-element replay (random replacement defeats the periodicity\n\
         proof) and their ~1x ratio is the honest cost of the attempt."
    );

    if let Some(dir) = args.json_path.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&args.json_path, to_json(&rows)).expect("write json");
    println!("\nwrote {}", args.json_path.display());
}
