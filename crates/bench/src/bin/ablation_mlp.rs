//! ABLATION: sensitivity of simulated times to the memory-level
//! parallelism (MLP) calibration parameter.
//!
//! DESIGN.md §7: MLP is the model's least-grounded knob (the paper gives
//! pipeline shapes but not miss-queue depths). This sweep shows which
//! conclusions are MLP-robust: the *ordering* of the transpose ladder
//! never changes, only the naive variant's absolute time scales.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::{simulate_transpose, simulate_transpose_budgeted};
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::runner::resolve_jobs;
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::{Device, JobBudget};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    mlp: f64,
    naive_seconds: f64,
    dynamic_seconds: f64,
    speedup: f64,
}

fn main() {
    let args = Args::parse("ablation_mlp");
    let n = if args.full { 8192 } else { 2048 };
    let cfg = TransposeConfig::new(n);
    println!("ABLATION: MLP sensitivity, transpose n = {n}");
    println!("{}\n", scale_banner(args.full));

    let mut table = TextTable::new(
        ["device", "MLP", "Naive", "Dynamic", "speedup"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    // Devices are walked serially; the budget feeds the multi-core
    // Dynamic-variant replay (Naive is single-core either way).
    let budget = JobBudget::new(resolve_jobs(args.jobs));
    for device in [Device::MangoPiMqPro, Device::RaspberryPi4] {
        let base_mlp = device.spec().core.mlp;
        for factor in [0.5, 1.0, 2.0, 4.0] {
            let mut spec = device.spec();
            spec.core.mlp = (base_mlp * factor).max(1.0);
            let naive = simulate_transpose(&spec, TransposeVariant::Naive, cfg)
                .expect("fits")
                .seconds;
            let dynamic =
                simulate_transpose_budgeted(&spec, TransposeVariant::Dynamic, cfg, &budget)
                    .expect("fits")
                    .seconds;
            table.row(vec![
                device.label().into(),
                format!("{:.1}", spec.core.mlp),
                fmt_seconds(naive),
                fmt_seconds(dynamic),
                format!("x{:.1}", naive / dynamic),
            ]);
            rows.push(Row {
                device: device.label().into(),
                mlp: spec.core.mlp,
                naive_seconds: naive,
                dynamic_seconds: dynamic,
                speedup: naive / dynamic,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: naive times shrink as MLP grows (more overlapped\n\
         misses) until bandwidth binds; the optimized variant barely moves,\n\
         so the ladder's ordering — the paper's claim — is MLP-robust."
    );
    args.write_json(&to_json(&rows));
}
