//! WHAT-IF: pass fusion beyond the paper's ladder.
//!
//! The paper's best blur ("Parallel") still pays a full scratch-image
//! round-trip. Production filters (the OpenCV gap the paper's footnote
//! mentions) fuse the two separable passes through a ring buffer of F
//! filtered rows. This bench compares the paper's Parallel variant with
//! the fused extension on every device — including the honest negative
//! result: at full image width the F-row ring (~290 KiB) fits the Xeon's
//! and the Pi's caches but not the RISC-V boards', so fusion helps
//! exactly where the cache hierarchy can hold the window.
//!
//! Both variants and the STREAM baselines execute through the parallel
//! experiment engine, and memoize into the persistent result cache when
//! `--cache-dir` (or `MEMBOUND_CACHE_DIR`) is set.

use membound_bench::{scale_banner, Args};
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::runner::{Cell, ExperimentMatrix};
use membound_core::BlurVariant;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    parallel_seconds: f64,
    fused_seconds: f64,
    fused_gain: f64,
    parallel_dram_mb: u64,
    fused_dram_mb: u64,
    parallel_util: f64,
    fused_util: f64,
}

fn main() {
    let args = Args::parse("whatif_fused");
    let cfg = args.blur_config();
    let devices = args.devices();
    let engine = args.engine();
    println!("WHAT-IF: fused separable blur vs the paper's Parallel variant");
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    let baselines = engine.stream_baselines(
        &devices
            .iter()
            .map(|d| (d.label().to_string(), d.spec()))
            .collect::<Vec<_>>(),
    );
    let panel = format!("{}x{}", cfg.height, cfg.width);
    let mut matrix = ExperimentMatrix::new("whatif_fused");
    for (label, gbps) in &baselines {
        matrix.stream_baseline(label, *gbps);
    }
    for device in &devices {
        let spec = device.spec();
        matrix.push(Cell::blur(
            panel.clone(),
            device.label(),
            &spec,
            BlurVariant::Parallel,
            cfg,
        ));
        matrix.push(Cell::fused_blur(
            panel.clone(),
            device.label(),
            &spec,
            cfg,
            spec.cores,
        ));
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut table = TextTable::new(
        [
            "device",
            "Parallel",
            "Fused",
            "gain",
            "DRAM MB (Par)",
            "DRAM MB (Fused)",
            "util (Par)",
            "util (Fused)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    for pair in results.cells.chunks(2) {
        // sim_summary() covers fresh and --resume restored cells alike.
        let parallel = pair[0].sim_summary().expect("parallel blur always runs");
        let fused = pair[1].sim_summary().expect("fused blur always runs");
        let gain = parallel.seconds / fused.seconds;
        let p_util = pair[0].bandwidth_utilization.unwrap_or(0.0);
        let f_util = pair[1].bandwidth_utilization.unwrap_or(0.0);
        let device = pair[0].cell.device.clone();
        table.row(vec![
            device.clone(),
            fmt_seconds(parallel.seconds),
            fmt_seconds(fused.seconds),
            format!("x{gain:.2}"),
            (parallel.dram_bytes_total >> 20).to_string(),
            (fused.dram_bytes_total >> 20).to_string(),
            format!("{p_util:.3}"),
            format!("{f_util:.3}"),
        ]);
        rows.push(Row {
            device,
            parallel_seconds: parallel.seconds,
            fused_seconds: fused.seconds,
            fused_gain: gain,
            parallel_dram_mb: parallel.dram_bytes_total >> 20,
            fused_dram_mb: fused.dram_bytes_total >> 20,
            parallel_util: p_util,
            fused_util: f_util,
        });
    }
    println!("{}", table.render());
    println!(
        "reading: fusion removes the tmp-image round-trip wherever the F-row\n\
         ring fits in cache (watch the DRAM column), and does little on the\n\
         boards whose hierarchies cannot hold the window — cache capacity,\n\
         again, is the watershed."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
