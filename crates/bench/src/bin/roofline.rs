//! ROOFLINE: quantify the paper's "memory-bound" premise.
//!
//! For every device × kernel pair, print arithmetic intensity, the
//! device's ridge point (using its *measured* STREAM bandwidth) and the
//! binding roof. Everything the paper benchmarks sits under the memory
//! roof except the naïve 2-D blur on the scalar boards — which is why
//! §4.3's ladder has to reduce arithmetic (1D_kernels) before memory
//! restructuring (Memory) pays off.

use membound_bench::Args;
use membound_core::experiment::stream_dram_gbps_budgeted;
use membound_core::report::{to_json, TextTable};
use membound_core::roofline::{DeviceRoofline, KernelIntensity};
use membound_core::runner::resolve_jobs;
use membound_core::{BlurConfig, StreamOp, TransposeConfig};
use membound_sim::{Device, JobBudget};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    kernel: String,
    intensity_flops_per_byte: f64,
    ridge: f64,
    attainable_gflops: f64,
    memory_bound: bool,
}

fn main() {
    let args = Args::parse("roofline");
    println!("ROOFLINE: device ridge points vs kernel intensities\n");

    let kernels = [
        KernelIntensity::stream(StreamOp::Copy),
        KernelIntensity::stream_triad(),
        KernelIntensity::transpose(TransposeConfig::new(8192)),
        KernelIntensity::blur_2d(&BlurConfig::paper()),
        KernelIntensity::blur_separable(&BlurConfig::paper()),
    ];

    let mut table = TextTable::new(
        [
            "device",
            "kernel",
            "I [flop/B]",
            "ridge",
            "attainable GF/s",
            "bound",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    // Devices are walked serially; the budget feeds the multi-core
    // STREAM measurement inside each device.
    let budget = JobBudget::new(resolve_jobs(args.jobs));
    for device in Device::paper() {
        let spec = device.spec();
        let stream = stream_dram_gbps_budgeted(&spec, &budget);
        let roof = DeviceRoofline::for_device(&spec, stream);
        for k in &kernels {
            let i = k.intensity();
            let memory_bound = roof.is_memory_bound(i);
            table.row(vec![
                device.label().into(),
                k.kernel.clone(),
                format!("{i:.3}"),
                format!("{:.2}", roof.ridge_intensity()),
                format!("{:.2}", roof.attainable_gflops(i)),
                if memory_bound {
                    "memory".into()
                } else {
                    "compute".into()
                },
            ]);
            rows.push(Row {
                device: device.label().into(),
                kernel: k.kernel.clone(),
                intensity_flops_per_byte: i,
                ridge: roof.ridge_intensity(),
                attainable_gflops: roof.attainable_gflops(i),
                memory_bound,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "reading: STREAM and the transposition sit at I <= 0.08 — memory-bound\n\
         everywhere, as the paper assumes. The naive 2-D blur carries enough\n\
         redundant arithmetic to cross the scalar boards' ridge; the\n\
         separable rewrite pushes it back under the memory roof, which is\n\
         why the \"Memory\" loop restructure is the step that pays."
    );
    args.write_json(&to_json(&rows));
}
