//! WHAT-IF: vectorization on the RISC-V boards.
//!
//! §3.1 notes the C906 implements 512-bit vector operations (RVV 0.7.1),
//! but the paper's GCC 12 binaries are scalar — §4.2 remarks that the
//! transposition "does not use vector instructions, which in many cases
//! can speed up calculations". This projection enables an ideal
//! RVV-autovectorizing compiler in the core model and re-runs the blur
//! ladder: how much of the Xeon's vectorization advantage would RVV
//! codegen recover?

use membound_bench::{scale_banner, Args};
use membound_core::experiment::simulate_blur;
use membound_core::report::{fmt_seconds, fmt_speedup, to_json, TextTable};
use membound_core::BlurVariant;
use membound_sim::{future, Device};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    vector_bits: u32,
    variant: String,
    seconds: f64,
    speedup_vs_scalar: f64,
}

fn main() {
    let args = Args::parse("whatif_rvv");
    let cfg = args.blur_config();
    println!("WHAT-IF: RVV vectorization on the RISC-V boards (blur ladder)");
    println!("{}\n", scale_banner(args.full));

    let mut table = TextTable::new(
        [
            "device",
            "vector",
            "1D_kernels",
            "Memory",
            "Memory speedup vs scalar",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    for device in [Device::MangoPiMqPro, Device::StarFiveVisionFive] {
        // The C906 documents a 512-bit vector unit; the U74 has none, so
        // we model a hypothetical 128-bit upgrade there.
        let widths: &[u32] = match device {
            Device::MangoPiMqPro => &[0, 64],
            _ => &[0, 16],
        };
        let mut scalar_memory = f64::NAN;
        for &vb in widths {
            let spec = future::with_vectorization(device.spec(), vb);
            let onedim = simulate_blur(&spec, BlurVariant::OneDimKernels, cfg).seconds;
            let memory = simulate_blur(&spec, BlurVariant::Memory, cfg).seconds;
            if vb == 0 {
                scalar_memory = memory;
            }
            table.row(vec![
                device.label().into(),
                if vb == 0 {
                    "scalar (as measured)".into()
                } else {
                    format!("{}-bit RVV", vb * 8)
                },
                fmt_seconds(onedim),
                fmt_seconds(memory),
                fmt_speedup(scalar_memory / memory),
            ]);
            for (variant, seconds) in [
                (BlurVariant::OneDimKernels, onedim),
                (BlurVariant::Memory, memory),
            ] {
                rows.push(Row {
                    device: device.label().into(),
                    vector_bits: vb * 8,
                    variant: variant.label().into(),
                    seconds,
                    speedup_vs_scalar: if variant == BlurVariant::Memory {
                        scalar_memory / seconds
                    } else {
                        f64::NAN
                    },
                });
            }
        }
    }
    println!("{}", table.render());
    println!(
        "reading: only the Memory variant is vectorizable (the paper's Xeon\n\
         x19 came from exactly this loop), so RVV codegen accelerates the\n\
         final ladder step until DRAM bandwidth binds — on the\n\
         bandwidth-starved StarFive the vector gain is smaller than on the\n\
         D1, mirroring the Unit-stride story."
    );
    args.write_json(&to_json(&rows));
}
