//! FIG1: the STREAM survey of Fig. 1 — Copy/Scale/Add/Triad bandwidth for
//! every memory level of every device.
//!
//! Private levels are measured sequentially and scaled by the core count;
//! shared levels and DRAM are measured with all cores, exactly as §4.1
//! describes. Every (device, level, op) measurement is one engine cell,
//! so the whole survey fans out across `--jobs` workers.

use membound_bench::{scale_banner, Args};
use membound_core::cache::CachedOutcome;
use membound_core::report::{to_json, TextTable};
use membound_core::runner::{Cell, CellOutcome, ExperimentMatrix};
use membound_core::StreamOp;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    level: String,
    private_scaled: bool,
    copy_gbps: f64,
    scale_gbps: f64,
    add_gbps: f64,
    triad_gbps: f64,
}

fn main() {
    let args = Args::parse("fig1_stream");
    let devices = args.devices();
    let engine = args.engine();
    println!("FIG1: STREAM bandwidth per memory level per device (GB/s)");
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    // One cell per (device, level, op); panel = level name.
    let mut matrix = ExperimentMatrix::new("fig1_stream");
    for device in &devices {
        let spec = device.spec();
        for (k, cache) in spec.caches.iter().enumerate() {
            for op in StreamOp::all() {
                matrix.push(Cell::stream(
                    cache.name.clone(),
                    device.label(),
                    &spec,
                    op,
                    Some(k),
                ));
            }
        }
        for op in StreamOp::all() {
            matrix.push(Cell::stream("DRAM", device.label(), &spec, op, None));
        }
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut table = TextTable::new(
        ["device", "level", "mode", "Copy", "Scale", "Add", "Triad"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    // Reassemble rows of four ops from the flat cell stream.
    for chunk in results.cells.chunks(StreamOp::all().len()) {
        let first = &chunk[0];
        let spec = &first.cell.spec;
        let private_scaled = spec
            .caches
            .iter()
            .any(|c| c.name == first.cell.panel && !c.shared);
        let gbps: Vec<f64> = chunk
            .iter()
            .map(|r| match &r.outcome {
                // A bandwidth served from the result cache must render
                // exactly like a fresh one — a catch-all here would
                // silently zero every cached STREAM bar.
                CellOutcome::Gbps(g) | CellOutcome::Cached(CachedOutcome::Gbps(g)) => *g,
                _ => 0.0,
            })
            .collect();
        table.row(vec![
            first.cell.device.clone(),
            first.cell.panel.clone(),
            if private_scaled {
                format!("seq x{}", spec.cores)
            } else {
                format!("{} threads", spec.cores)
            },
            format!("{:.2}", gbps[0]),
            format!("{:.2}", gbps[1]),
            format!("{:.2}", gbps[2]),
            format!("{:.2}", gbps[3]),
        ]);
        rows.push(Row {
            device: first.cell.device.clone(),
            level: first.cell.panel.clone(),
            private_scaled,
            copy_gbps: gbps[0],
            scale_gbps: gbps[1],
            add_gbps: gbps[2],
            triad_gbps: gbps[3],
        });
    }
    println!("{}", table.render());
    println!(
        "shape check (paper Fig. 1): Xeon dominates every level; the Mango Pi\n\
         has no L2 and a slow L1; the StarFive's DRAM bandwidth is the lowest\n\
         of all four devices."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
