//! FIG1: the STREAM survey of Fig. 1 — Copy/Scale/Add/Triad bandwidth for
//! every memory level of every device.
//!
//! Private levels are measured sequentially and scaled by the core count;
//! shared levels and DRAM are measured with all cores, exactly as §4.1
//! describes.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::{simulate_stream_survey, StreamLevelResult};
use membound_core::report::{to_json, TextTable};
use membound_sim::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    level: String,
    private_scaled: bool,
    copy_gbps: f64,
    scale_gbps: f64,
    add_gbps: f64,
    triad_gbps: f64,
}

fn main() {
    let args = Args::parse("fig1_stream");
    println!("FIG1: STREAM bandwidth per memory level per device (GB/s)");
    println!("{}\n", scale_banner(args.full));

    let mut table = TextTable::new(
        ["device", "level", "mode", "Copy", "Scale", "Add", "Triad"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    for device in Device::all() {
        let spec = device.spec();
        let survey: Vec<StreamLevelResult> = simulate_stream_survey(&spec);
        for level in survey {
            table.row(vec![
                device.label().into(),
                level.level.clone(),
                if level.private_scaled {
                    format!("seq x{}", spec.cores)
                } else {
                    format!("{} threads", spec.cores)
                },
                format!("{:.2}", level.gbps[0]),
                format!("{:.2}", level.gbps[1]),
                format!("{:.2}", level.gbps[2]),
                format!("{:.2}", level.gbps[3]),
            ]);
            rows.push(Row {
                device: device.label().into(),
                level: level.level,
                private_scaled: level.private_scaled,
                copy_gbps: level.gbps[0],
                scale_gbps: level.gbps[1],
                add_gbps: level.gbps[2],
                triad_gbps: level.gbps[3],
            });
        }
    }
    println!("{}", table.render());
    println!(
        "shape check (paper Fig. 1): Xeon dominates every level; the Mango Pi\n\
         has no L2 and a slow L1; the StarFive's DRAM bandwidth is the lowest\n\
         of all four devices."
    );
    args.write_json(&to_json(&rows));
}
