//! ABLATION: hardware prefetchers on vs off, per device.
//!
//! DESIGN.md §7: isolates the §4.3 "Unit-stride" anomaly — prefetching
//! helps devices whose DRAM has headroom and does nothing for the
//! bandwidth-starved StarFive ("low memory bandwidth does not allow data
//! to be prepared on time").

use membound_bench::{scale_banner, Args};
use membound_core::experiment::{simulate_blur, stream_dram_gbps_budgeted};
use membound_core::report::{to_json, TextTable};
use membound_core::runner::resolve_jobs;
use membound_core::BlurVariant;
use membound_sim::{Device, JobBudget};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    stream_gbps_with: f64,
    stream_gbps_without: f64,
    blur_unit_stride_with: f64,
    blur_unit_stride_without: f64,
}

fn main() {
    let args = Args::parse("ablation_prefetch");
    let cfg = if args.full {
        args.blur_config()
    } else {
        membound_core::BlurConfig::small(507, 636)
    };
    println!("ABLATION: prefetchers on/off");
    println!("{}\n", scale_banner(args.full));

    let mut table = TextTable::new(
        [
            "device",
            "STREAM GB/s (pf on)",
            "STREAM GB/s (pf off)",
            "Unit-stride blur s (on)",
            "Unit-stride blur s (off)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    // Devices are walked serially; the whole budget is spare for the
    // multi-core STREAM replays (the blur variant here is single-core).
    let budget = JobBudget::new(resolve_jobs(args.jobs));
    for device in Device::paper() {
        let with = device.spec();
        let without = device.spec().without_prefetchers();
        let stream_with = stream_dram_gbps_budgeted(&with, &budget);
        let stream_without = stream_dram_gbps_budgeted(&without, &budget);
        let blur_with = simulate_blur(&with, BlurVariant::UnitStride, cfg).seconds;
        let blur_without = simulate_blur(&without, BlurVariant::UnitStride, cfg).seconds;
        table.row(vec![
            device.label().into(),
            format!("{stream_with:.2}"),
            format!("{stream_without:.2}"),
            format!("{blur_with:.3}"),
            format!("{blur_without:.3}"),
        ]);
        rows.push(Row {
            device: device.label().into(),
            stream_gbps_with: stream_with,
            stream_gbps_without: stream_without,
            blur_unit_stride_with: blur_with,
            blur_unit_stride_without: blur_without,
        });
    }
    println!("{}", table.render());
    println!(
        "expectation: large STREAM drops without prefetch on the Xeon, the\n\
         Raspberry Pi and the Mango Pi; a negligible drop on the StarFive —\n\
         its DRAM channel is the constraint either way."
    );
    args.write_json(&to_json(&rows));
}
