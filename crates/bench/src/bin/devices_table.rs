//! TAB-DEV: the §3.1 device-configuration inventory, printed from the
//! simulator's presets so the modelled geometry is auditable against the
//! paper.

use membound_core::report::TextTable;
use membound_sim::Device;

fn main() {
    let mut t = TextTable::new(
        [
            "device",
            "ISA",
            "cores",
            "freq",
            "caches",
            "TLBs",
            "DRAM model",
            "RAM",
        ]
        .map(String::from)
        .to_vec(),
    );
    for device in Device::all() {
        let spec = device.spec();
        let caches = spec
            .caches
            .iter()
            .map(|c| {
                format!(
                    "{} {}KB {}w {}{}",
                    c.name,
                    c.size_bytes / 1024,
                    c.ways,
                    c.replacement,
                    if c.shared { " shared" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(" + ");
        let tlbs = match &spec.l2tlb {
            Some(l2) => format!(
                "{} {}e / {} {}e {}w",
                spec.dtlb.name, spec.dtlb.entries, l2.name, l2.entries, l2.ways
            ),
            None => format!("{} {}e", spec.dtlb.name, spec.dtlb.entries),
        };
        t.row(vec![
            device.label().into(),
            spec.isa.clone(),
            spec.cores.to_string(),
            format!("{:.1} GHz", spec.core.freq_ghz),
            caches,
            tlbs,
            format!(
                "{:.1} GB/s, {} ch, {} cy",
                spec.dram_gbps(),
                spec.dram.channels,
                spec.dram.latency_cycles
            ),
            format!("{} GB", spec.dram_capacity_bytes >> 30),
        ]);
    }
    println!("TAB-DEV: modelled device configurations (paper §3.1)\n");
    println!("{}", t.render());
}
