//! WHAT-IF: paper boards vs modern many-core RISC-V parts at 1/4/16/64
//! simulated cores, on DRAM STREAM (Triad) and the band-matrix `gbmv`
//! ladder.
//!
//! The question behind the figure: when RISC-V grows from the paper's
//! 1–4 core boards to the Sophon SG2044's 64 cores behind a shared LLC
//! and multi-channel DRAM, do memory-bound kernels scale with the core
//! count or with the memory system? Each device is re-simulated with its
//! core count clamped to every ladder point it can reach (the Mango Pi
//! only appears at 1 core, the Xeon up to its 10), so the columns
//! isolate "more cores" from "a different memory system".

use membound_bench::{scale_banner, Args};
use membound_core::cache::CachedOutcome;
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::runner::{Cell, CellOutcome, ExperimentMatrix};
use membound_core::{GbmvConfig, GbmvVariant, StreamOp};
use membound_sim::Device;
use serde::Serialize;

/// The core-count ladder of the comparison.
const CORE_LADDER: [u32; 4] = [1, 4, 16, 64];

#[derive(Serialize)]
struct Row {
    device: String,
    cores: u32,
    kernel: String,
    variant: String,
    /// Triad GB/s for stream rows, NaN otherwise.
    gbps: f64,
    /// Simulated seconds for gbmv rows, NaN otherwise.
    seconds: f64,
}

fn main() {
    let args = Args::parse("whatif_manycore");
    // Unlike the paper figures, this comparison defaults to the *whole*
    // inventory: its point is paper boards next to the many-core parts.
    let devices = match &args.device_filter {
        None => Device::all().to_vec(),
        Some(f) => Device::select(f).unwrap_or_else(|e| panic!("--device: {e}")),
    };
    let n = if args.full { 16384 } else { 4096 };
    let cfg = GbmvConfig::new(n);
    let engine = args.engine();
    println!("WHAT-IF: many-core scaling, paper boards vs SG2044/Monte Cimone");
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    let mut matrix = ExperimentMatrix::new("whatif_manycore");
    for device in &devices {
        let spec = device.spec();
        for &cores in CORE_LADDER.iter().filter(|&&c| c <= spec.cores) {
            let mut scaled = spec.clone();
            scaled.cores = cores;
            scaled.name = format!("{} @{cores}c", spec.name);
            let label = format!("{} @{cores}c", device.label());
            matrix.push(Cell::stream(
                cores.to_string(),
                &label,
                &scaled,
                StreamOp::Triad,
                None,
            ));
            for variant in GbmvVariant::all() {
                matrix.push(Cell::gbmv(cores.to_string(), &label, &scaled, variant, cfg));
            }
        }
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut table = TextTable::new(
        ["device", "cores", "Triad GB/s", "gbmv Naive", "gbmv Blocked", "gbmv Parallel"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    // Each (device, cores) point contributed 1 stream + 3 gbmv cells,
    // in matrix order.
    for chunk in results.cells.chunks(1 + GbmvVariant::all().len()) {
        let stream = &chunk[0];
        let cores: u32 = stream.cell.panel.parse().expect("panel is a core count");
        let gbps = match &stream.outcome {
            CellOutcome::Gbps(g) | CellOutcome::Cached(CachedOutcome::Gbps(g)) => *g,
            _ => f64::NAN,
        };
        rows.push(Row {
            device: stream.cell.device.clone(),
            cores,
            kernel: "stream".into(),
            variant: stream.cell.variant.clone(),
            gbps,
            seconds: f64::NAN,
        });
        let mut cols = vec![
            stream.cell.device.clone(),
            cores.to_string(),
            format!("{gbps:.2}"),
        ];
        for r in &chunk[1..] {
            let seconds = r.sim_summary().map(|s| s.seconds).unwrap_or(f64::NAN);
            cols.push(if seconds.is_nan() {
                "does not fit".into()
            } else {
                fmt_seconds(seconds)
            });
            rows.push(Row {
                device: r.cell.device.clone(),
                cores,
                kernel: "gbmv".into(),
                variant: r.cell.variant.clone(),
                gbps: f64::NAN,
                seconds,
            });
        }
        table.row(cols);
    }
    println!("{}", table.render());
    println!(
        "reading: Triad bandwidth and the unit-stride gbmv variants track\n\
         the memory system, not the core count — the SG2044 column stops\n\
         improving once its channels saturate, while the naïve\n\
         anti-diagonal walk keeps gaining from extra in-flight misses.\n\
         The paper boards replicate their Fig. 1/2 standings at every\n\
         core count they can reach."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
