//! WHAT-IF: the paper's kernels on plausible RISC-V successors.
//!
//! The conclusion of the paper argues RISC-V "shows a high potential for
//! further development". This projection runs the best transpose and blur
//! variants on the VisionFive 2 model (the direct successor of the
//! paper's board) and on a SonicBOOM-class out-of-order RISC-V server
//! model, against the paper's four devices.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::{
    simulate_blur_budgeted, simulate_transpose_budgeted, stream_dram_gbps_budgeted,
};
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::runner::resolve_jobs;
use membound_core::{BlurVariant, TransposeConfig, TransposeVariant};
use membound_sim::{future, Device, DeviceSpec, JobBudget};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    stream_gbps: f64,
    transpose_dynamic_seconds: f64,
    blur_parallel_seconds: f64,
}

fn main() {
    let args = Args::parse("whatif_future_devices");
    let (n, _) = args.transpose_sizes();
    let tcfg = TransposeConfig::new(n);
    let bcfg = args.blur_config();
    println!("WHAT-IF: best-variant kernels on RISC-V successors");
    println!("{}\n", scale_banner(args.full));

    let mut specs: Vec<DeviceSpec> = Device::paper().iter().map(|d| d.spec()).collect();
    specs.push(future::visionfive2());
    specs.push(future::with_vectorization(future::visionfive2(), 16));
    specs.push(future::riscv_server_class());

    let mut table = TextTable::new(
        [
            "device",
            "STREAM GB/s",
            "transpose Dynamic",
            "blur Parallel",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    // This binary walks devices serially, so the whole job budget is
    // spare for the simulator's per-core fan-out on each device.
    let budget = JobBudget::new(resolve_jobs(args.jobs));
    for spec in &specs {
        let stream = stream_dram_gbps_budgeted(spec, &budget);
        let transpose = simulate_transpose_budgeted(spec, TransposeVariant::Dynamic, tcfg, &budget)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN);
        let blur = simulate_blur_budgeted(spec, BlurVariant::Parallel, bcfg, &budget).seconds;
        table.row(vec![
            spec.name.clone(),
            format!("{stream:.2}"),
            fmt_seconds(transpose),
            fmt_seconds(blur),
        ]);
        rows.push(Row {
            device: spec.name.clone(),
            stream_gbps: stream,
            transpose_dynamic_seconds: transpose,
            blur_parallel_seconds: blur,
        });
    }
    println!("{}", table.render());
    println!(
        "reading: the VisionFive 2 model closes most of the gap to the\n\
         Raspberry Pi 4 (more cores, bigger L2, working DRAM), and the\n\
         SonicBOOM-class server model lands within striking distance of the\n\
         Xeon per-channel — microarchitecture and memory system, not the\n\
         ISA, set the pace. This is the quantified form of the paper's\n\
         concluding outlook."
    );
    args.write_json(&to_json(&rows));
}
