//! ABLATION: the U74's random replacement policy vs LRU.
//!
//! DESIGN.md §7: §3.1 reports that both VisionFive cache levels use a
//! random replacement policy ("RRP"). Does the transposition ladder's
//! shape change if the JH7100 had used LRU?

use membound_bench::{scale_banner, Args};
use membound_core::experiment::simulate_transpose;
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::{Device, ReplacementPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    variant: String,
    seconds: f64,
    l1_hit_rate: f64,
}

fn main() {
    let args = Args::parse("ablation_replacement");
    let n = if args.full { 8192 } else { 2048 };
    let cfg = TransposeConfig::new(n);
    println!("ABLATION: StarFive cache replacement policy, transpose n = {n}");
    println!("{}\n", scale_banner(args.full));

    let policies = [
        ReplacementPolicy::Random,
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Fifo,
    ];
    let mut table = TextTable::new(
        ["policy", "variant", "time", "L1 hit rate"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    for policy in policies {
        let mut spec = Device::StarFiveVisionFive.spec();
        for cache in &mut spec.caches {
            cache.replacement = policy;
        }
        for variant in [
            TransposeVariant::Naive,
            TransposeVariant::Blocking,
            TransposeVariant::ManualBlocking,
        ] {
            let report = simulate_transpose(&spec, variant, cfg).expect("fits");
            let hit_rate = report.cache_stats[0].hit_rate();
            table.row(vec![
                policy.to_string(),
                variant.label().into(),
                fmt_seconds(report.seconds),
                format!("{hit_rate:.4}"),
            ]);
            rows.push(Row {
                policy: policy.to_string(),
                variant: variant.label().into(),
                seconds: report.seconds,
                l1_hit_rate: hit_rate,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "expectation: random replacement softens the pathological\n\
         power-of-two conflict behaviour of the column walk (no fixed victim\n\
         pattern) but loses a little on the well-behaved blocked variants —\n\
         the ladder's overall shape is policy-robust."
    );
    args.write_json(&to_json(&rows));
}
