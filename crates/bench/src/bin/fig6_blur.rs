//! FIG6: computation time of the five Gaussian-blur variants on the four
//! devices, with the paper's naïve-seconds + speedup bar labels.
//!
//! The device × variant matrix executes through the parallel experiment
//! engine; per-cell telemetry lands in the JSONL run log. Pass
//! `--cache-dir` (or set `MEMBOUND_CACHE_DIR`) to memoize cells in the
//! persistent result cache and skip simulation on warm re-runs.

use membound_bench::{scale_banner, Args};
use membound_core::report::{fmt_seconds, fmt_speedup, to_json, BarChart, TextTable};
use membound_core::runner::{Cell, ExperimentMatrix};
use membound_core::BlurVariant;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    variant: String,
    threads: u32,
    seconds: f64,
    speedup_vs_naive: f64,
}

fn main() {
    let args = Args::parse("fig6_blur");
    let cfg = args.blur_config();
    let devices = args.devices();
    let engine = args.engine();
    println!(
        "FIG6: Gaussian blur ({}x{}x{} f32, F={}), five variants x four devices",
        cfg.height, cfg.width, cfg.channels, cfg.filter_size
    );
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    let panel = format!("{}x{}", cfg.height, cfg.width);
    let mut matrix = ExperimentMatrix::new("fig6_blur");
    for device in &devices {
        let spec = device.spec();
        for variant in BlurVariant::all() {
            matrix.push(Cell::blur(
                panel.clone(),
                device.label(),
                &spec,
                variant,
                cfg,
            ));
        }
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut table = TextTable::new(
        ["device", "variant", "threads", "time", "speedup"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    let mut chart = BarChart::new("simulated time, normalized per device");
    for r in &results.cells {
        // sim_summary() covers fresh and --resume restored cells alike.
        let sim = r.sim_summary().expect("blur cells always produce a report");
        let speedup = r.speedup_vs_naive.unwrap_or(0.0);
        table.row(vec![
            r.cell.device.clone(),
            r.cell.variant.clone(),
            sim.threads.to_string(),
            fmt_seconds(sim.seconds),
            fmt_speedup(speedup),
        ]);
        chart.bar(
            &r.cell.device,
            &r.cell.variant,
            sim.seconds,
            &if r.cell.variant == "Naive" {
                format!("{} s", fmt_seconds(sim.seconds))
            } else {
                fmt_speedup(speedup)
            },
        );
        rows.push(Row {
            device: r.cell.device.clone(),
            variant: r.cell.variant.clone(),
            threads: sim.threads,
            seconds: sim.seconds,
            speedup_vs_naive: speedup,
        });
    }
    println!("{}", table.render());
    println!("{}", chart.render(48));
    println!(
        "shape check (paper Fig. 6): Unit-stride helps modestly; 1D_kernels\n\
         helps less than its 19x work reduction suggests (excess memory\n\
         traffic); Memory delivers the big jump — dramatically so on the\n\
         Xeon, whose compiler vectorizes the row-accumulation loop; Parallel\n\
         gains are capped by memory channels."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
