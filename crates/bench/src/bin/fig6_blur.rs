//! FIG6: computation time of the five Gaussian-blur variants on the four
//! devices, with the paper's naïve-seconds + speedup bar labels.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::simulate_blur;
use membound_core::metrics::{attach_speedups, Measurement};
use membound_core::report::{fmt_seconds, fmt_speedup, to_json, BarChart, TextTable};
use membound_core::BlurVariant;
use membound_sim::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    variant: String,
    threads: u32,
    seconds: f64,
    speedup_vs_naive: f64,
}

fn main() {
    let args = Args::parse("fig6_blur");
    let cfg = args.blur_config();
    println!(
        "FIG6: Gaussian blur ({}x{}x{} f32, F={}), five variants x four devices",
        cfg.height, cfg.width, cfg.channels, cfg.filter_size
    );
    println!("{}\n", scale_banner(args.full));

    let mut table = TextTable::new(
        ["device", "variant", "threads", "time", "speedup"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    let mut chart = BarChart::new("simulated time, normalized per device");
    for device in Device::all() {
        let spec = device.spec();
        let mut ladder: Vec<Measurement> = Vec::new();
        for variant in BlurVariant::all() {
            let report = simulate_blur(&spec, variant, cfg);
            ladder.push(Measurement::new(
                variant.label(),
                device.label(),
                report.threads,
                report.seconds,
            ));
        }
        attach_speedups(&mut ladder);
        for m in &ladder {
            table.row(vec![
                m.device.clone(),
                m.variant.clone(),
                m.threads.to_string(),
                fmt_seconds(m.seconds),
                fmt_speedup(m.speedup_vs_naive),
            ]);
            chart.bar(
                &m.device,
                &m.variant,
                m.seconds,
                &if m.variant == "Naive" {
                    format!("{} s", fmt_seconds(m.seconds))
                } else {
                    fmt_speedup(m.speedup_vs_naive)
                },
            );
            rows.push(Row {
                device: m.device.clone(),
                variant: m.variant.clone(),
                threads: m.threads,
                seconds: m.seconds,
                speedup_vs_naive: m.speedup_vs_naive,
            });
        }
    }
    println!("{}", table.render());
    println!("{}", chart.render(48));
    println!(
        "shape check (paper Fig. 6): Unit-stride helps modestly; 1D_kernels\n\
         helps less than its 19x work reduction suggests (excess memory\n\
         traffic); Memory delivers the big jump — dramatically so on the\n\
         Xeon, whose compiler vectorizes the row-accumulation loop; Parallel\n\
         gains are capped by memory channels."
    );
    args.write_json(&to_json(&rows));
}
