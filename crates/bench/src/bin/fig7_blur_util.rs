//! FIG7: relative memory-bandwidth utilization of the three optimized
//! blur variants (1D_kernels, Memory, Parallel), with the improvement
//! labels computed against the 1D_kernels baseline exactly as the paper's
//! Fig. 7 caption specifies.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::{simulate_blur, stream_dram_gbps};
use membound_core::report::{to_json, TextTable};
use membound_core::BlurVariant;
use membound_sim::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    variant: String,
    utilization: f64,
    improvement_vs_1d: f64,
}

fn main() {
    let args = Args::parse("fig7_blur_util");
    let cfg = args.blur_config();
    println!("FIG7: relative memory-bandwidth utilization, Gaussian blur");
    println!("{}\n", scale_banner(args.full));

    let variants = [
        BlurVariant::OneDimKernels,
        BlurVariant::Memory,
        BlurVariant::Parallel,
    ];
    let mut table = TextTable::new(
        ["device", "variant", "utilization", "vs 1D_kernels"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    for device in Device::all() {
        let spec = device.spec();
        let stream = stream_dram_gbps(&spec);
        let utils: Vec<f64> = variants
            .iter()
            .map(|&v| {
                simulate_blur(&spec, v, cfg).bandwidth_utilization(cfg.nominal_bytes(), stream)
            })
            .collect();
        let baseline = utils[0];
        for (&variant, &u) in variants.iter().zip(&utils) {
            table.row(vec![
                device.label().into(),
                variant.label().into(),
                format!("{u:.3}"),
                format!("x{:.1}", if baseline > 0.0 { u / baseline } else { 0.0 }),
            ]);
            rows.push(Row {
                device: device.label().into(),
                variant: variant.label().into(),
                utilization: u,
                improvement_vs_1d: if baseline > 0.0 { u / baseline } else { 0.0 },
            });
        }
    }
    println!("{}", table.render());
    println!(
        "shape check (paper Fig. 7): the Mango Pi's missing L2 keeps its\n\
         utilization lowest; the StarFive trails the Raspberry Pi but stays\n\
         comparable; the Xeon's Parallel variant raises utilization further\n\
         thanks to its many memory channels."
    );
    args.write_json(&to_json(&rows));
}
