//! FIG7: relative memory-bandwidth utilization of the three optimized
//! blur variants (1D_kernels, Memory, Parallel), with the improvement
//! labels computed against the 1D_kernels baseline exactly as the paper's
//! Fig. 7 caption specifies.
//!
//! STREAM baselines and the blur cells run through the parallel
//! experiment engine; utilizations come attached to the engine results.
//! `--cache-dir` / `MEMBOUND_CACHE_DIR` memoizes both into the
//! persistent result cache for incremental re-runs.

use membound_bench::{scale_banner, Args};
use membound_core::report::{to_json, TextTable};
use membound_core::runner::{Cell, ExperimentMatrix};
use membound_core::BlurVariant;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    variant: String,
    utilization: f64,
    improvement_vs_1d: f64,
}

fn main() {
    let args = Args::parse("fig7_blur_util");
    let cfg = args.blur_config();
    let devices = args.devices();
    let engine = args.engine();
    println!("FIG7: relative memory-bandwidth utilization, Gaussian blur");
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    let variants = [
        BlurVariant::OneDimKernels,
        BlurVariant::Memory,
        BlurVariant::Parallel,
    ];

    let baselines = engine.stream_baselines(
        &devices
            .iter()
            .map(|d| (d.label().to_string(), d.spec()))
            .collect::<Vec<_>>(),
    );
    let panel = format!("{}x{}", cfg.height, cfg.width);
    let mut matrix = ExperimentMatrix::new("fig7_blur_util");
    for (label, gbps) in &baselines {
        matrix.stream_baseline(label, *gbps);
    }
    for device in &devices {
        let spec = device.spec();
        for variant in variants {
            matrix.push(Cell::blur(
                panel.clone(),
                device.label(),
                &spec,
                variant,
                cfg,
            ));
        }
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut table = TextTable::new(
        ["device", "variant", "utilization", "vs 1D_kernels"]
            .map(String::from)
            .to_vec(),
    );
    let mut rows = Vec::new();
    for device in &devices {
        let utils: Vec<(String, f64)> = results
            .cells
            .iter()
            .filter(|r| r.cell.device == device.label())
            .map(|r| {
                (
                    r.cell.variant.clone(),
                    r.bandwidth_utilization.unwrap_or(0.0),
                )
            })
            .collect();
        let baseline = utils.first().map(|(_, u)| *u).unwrap_or(0.0);
        for (variant, u) in utils {
            let improvement = if baseline > 0.0 { u / baseline } else { 0.0 };
            table.row(vec![
                device.label().into(),
                variant.clone(),
                format!("{u:.3}"),
                format!("x{improvement:.1}"),
            ]);
            rows.push(Row {
                device: device.label().into(),
                variant,
                utilization: u,
                improvement_vs_1d: improvement,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "shape check (paper Fig. 7): the Mango Pi's missing L2 keeps its\n\
         utilization lowest; the StarFive trails the Raspberry Pi but stays\n\
         comparable; the Xeon's Parallel variant raises utilization further\n\
         thanks to its many memory channels."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
