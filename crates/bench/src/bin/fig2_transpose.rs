//! FIG2: computation time of the five transposition variants on the four
//! devices, for both matrix sizes (Fig. 2's two panels). Bar labels show
//! the naïve time in seconds and each optimized variant's speedup, as in
//! the paper.
//!
//! The full panel × device × variant matrix is executed through the
//! parallel experiment engine (`--jobs`), and the per-cell telemetry is
//! written as a JSONL run log next to the JSON rows.

use membound_bench::{scale_banner, Args};
use membound_core::cache::CachedOutcome;
use membound_core::report::{fmt_seconds, fmt_speedup, to_json, BarChart, TextTable};
use membound_core::runner::{Cell, CellOutcome, ExperimentMatrix};
use membound_core::{TransposeConfig, TransposeVariant};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    panel_n: usize,
    device: String,
    variant: String,
    threads: u32,
    seconds: f64,
    speedup_vs_naive: f64,
    fits_in_memory: bool,
}

fn main() {
    let args = Args::parse("fig2_transpose");
    let (n1, n2) = args.transpose_sizes();
    let devices = args.devices();
    let engine = args.engine();
    println!("FIG2: in-place matrix transposition, five variants x four devices");
    println!("{}", scale_banner(args.full));
    println!("engine: {} jobs\n", engine.jobs());

    let mut matrix = ExperimentMatrix::new("fig2_transpose");
    for n in [n1, n2] {
        let cfg = TransposeConfig::new(n);
        for device in &devices {
            let spec = device.spec();
            for variant in TransposeVariant::all() {
                matrix.push(Cell::transpose(
                    n.to_string(),
                    device.label(),
                    &spec,
                    variant,
                    cfg,
                ));
            }
        }
    }
    let results = args.run_matrix(&engine, &matrix);

    let mut rows = Vec::new();
    let mut cells = results.cells.iter().peekable();
    for n in [n1, n2] {
        let cfg = TransposeConfig::new(n);
        println!(
            "panel: {n} x {n} doubles ({} MiB matrix)",
            cfg.matrix_bytes() >> 20
        );
        let mut table = TextTable::new(
            ["device", "variant", "threads", "time", "speedup"]
                .map(String::from)
                .to_vec(),
        );
        let mut chart = BarChart::new("simulated time, normalized per device");
        while let Some(r) = cells.peek() {
            if r.cell.panel != n.to_string() {
                break;
            }
            let r = cells.next().expect("peeked");
            // sim_summary() serves freshly simulated and --resume
            // restored cells alike.
            if let Some(sim) = r.sim_summary() {
                let speedup = r.speedup_vs_naive.unwrap_or(0.0);
                table.row(vec![
                    r.cell.device.clone(),
                    r.cell.variant.clone(),
                    sim.threads.to_string(),
                    fmt_seconds(sim.seconds),
                    fmt_speedup(speedup),
                ]);
                chart.bar(
                    &r.cell.device,
                    &r.cell.variant,
                    sim.seconds,
                    &if r.cell.variant == "Naive" {
                        format!("{} s", fmt_seconds(sim.seconds))
                    } else {
                        fmt_speedup(speedup)
                    },
                );
                rows.push(Row {
                    panel_n: n,
                    device: r.cell.device.clone(),
                    variant: r.cell.variant.clone(),
                    threads: sim.threads,
                    seconds: sim.seconds,
                    speedup_vs_naive: speedup,
                    fits_in_memory: true,
                });
            } else {
                let note = match &r.outcome {
                    // Same text fresh or cached: a warm run's table must
                    // be byte-identical to the cold run that filled the
                    // cache.
                    CellOutcome::DoesNotFit | CellOutcome::Cached(CachedOutcome::DoesNotFit) => {
                        "does not fit in memory".to_string()
                    }
                    CellOutcome::Panicked(msg) => format!("panicked: {msg}"),
                    CellOutcome::Failed(msg) => format!("failed: {msg}"),
                    CellOutcome::TimedOut(msg) => format!("timed out: {msg}"),
                    CellOutcome::Report(_)
                    | CellOutcome::Restored(_)
                    | CellOutcome::Gbps(_)
                    | CellOutcome::Cached(_) => {
                        // Report-bearing outcomes took the sim_summary
                        // branch above; STREAM outcomes cannot occur in
                        // a transpose matrix.
                        unreachable!()
                    }
                };
                table.row(vec![
                    r.cell.device.clone(),
                    r.cell.variant.clone(),
                    "-".into(),
                    note,
                    "-".into(),
                ]);
                rows.push(Row {
                    panel_n: n,
                    device: r.cell.device.clone(),
                    variant: r.cell.variant.clone(),
                    threads: 0,
                    seconds: f64::NAN,
                    speedup_vs_naive: f64::NAN,
                    fits_in_memory: false,
                });
            }
        }
        println!("{}", table.render());
        println!("{}", chart.render(48));
    }
    println!(
        "shape check (paper Fig. 2): every optimization step helps on every\n\
         device; the {n2}-panel has no Mango Pi bars (matrix exceeds 1 GB);\n\
         Dynamic beats plain Manual_blocking via better load balance."
    );
    args.write_json(&to_json(&rows));
    args.write_run_log(&results);
}
