//! FIG2: computation time of the five transposition variants on the four
//! devices, for both matrix sizes (Fig. 2's two panels). Bar labels show
//! the naïve time in seconds and each optimized variant's speedup, as in
//! the paper.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::simulate_transpose;
use membound_core::metrics::{attach_speedups, Measurement};
use membound_core::report::{fmt_seconds, fmt_speedup, to_json, BarChart, TextTable};
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    panel_n: usize,
    device: String,
    variant: String,
    threads: u32,
    seconds: f64,
    speedup_vs_naive: f64,
    fits_in_memory: bool,
}

fn main() {
    let args = Args::parse("fig2_transpose");
    let (n1, n2) = args.transpose_sizes();
    println!("FIG2: in-place matrix transposition, five variants x four devices");
    println!("{}\n", scale_banner(args.full));

    let mut rows = Vec::new();
    for n in [n1, n2] {
        let cfg = TransposeConfig::new(n);
        println!(
            "panel: {n} x {n} doubles ({} MiB matrix)",
            cfg.matrix_bytes() >> 20
        );
        let mut table = TextTable::new(
            ["device", "variant", "threads", "time", "speedup"]
                .map(String::from)
                .to_vec(),
        );
        let mut chart = BarChart::new("simulated time, normalized per device");
        for device in Device::all() {
            let spec = device.spec();
            let mut ladder: Vec<Measurement> = Vec::new();
            for variant in TransposeVariant::all() {
                match simulate_transpose(&spec, variant, cfg) {
                    Some(report) => {
                        ladder.push(Measurement::new(
                            variant.label(),
                            device.label(),
                            report.threads,
                            report.seconds,
                        ));
                    }
                    None => {
                        table.row(vec![
                            device.label().into(),
                            variant.label().into(),
                            "-".into(),
                            "does not fit in memory".into(),
                            "-".into(),
                        ]);
                        rows.push(Row {
                            panel_n: n,
                            device: device.label().into(),
                            variant: variant.label().into(),
                            threads: 0,
                            seconds: f64::NAN,
                            speedup_vs_naive: f64::NAN,
                            fits_in_memory: false,
                        });
                    }
                }
            }
            attach_speedups(&mut ladder);
            for m in &ladder {
                table.row(vec![
                    m.device.clone(),
                    m.variant.clone(),
                    m.threads.to_string(),
                    fmt_seconds(m.seconds),
                    fmt_speedup(m.speedup_vs_naive),
                ]);
                chart.bar(
                    &m.device,
                    &m.variant,
                    m.seconds,
                    &if m.variant == "Naive" {
                        format!("{} s", fmt_seconds(m.seconds))
                    } else {
                        fmt_speedup(m.speedup_vs_naive)
                    },
                );
                rows.push(Row {
                    panel_n: n,
                    device: m.device.clone(),
                    variant: m.variant.clone(),
                    threads: m.threads,
                    seconds: m.seconds,
                    speedup_vs_naive: m.speedup_vs_naive,
                    fits_in_memory: true,
                });
            }
        }
        println!("{}", table.render());
        println!("{}", chart.render(48));
    }
    println!(
        "shape check (paper Fig. 2): every optimization step helps on every\n\
         device; the {n2}-panel has no Mango Pi bars (matrix exceeds 1 GB);\n\
         Dynamic beats plain Manual_blocking via better load balance."
    );
    args.write_json(&to_json(&rows));
}
