//! ABLATION: block-size sweep for the blocked transposition variants.
//!
//! DESIGN.md §7: how sensitive are `Blocking` and `Manual_blocking` to the
//! block parameter on each device? The sweet spot balances cache fit (the
//! staging buffer is `block² × 8` bytes) against loop overhead.

use membound_bench::{scale_banner, Args};
use membound_core::experiment::simulate_transpose;
use membound_core::report::{fmt_seconds, to_json, TextTable};
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    variant: String,
    block: usize,
    seconds: f64,
}

fn main() {
    let args = Args::parse("ablation_block_size");
    let n = if args.full { 8192 } else { 2048 };
    println!("ABLATION: transpose block-size sweep, n = {n}");
    println!("{}\n", scale_banner(args.full));

    let blocks = [16usize, 32, 64, 128, 256];
    let mut rows = Vec::new();
    for variant in [TransposeVariant::Blocking, TransposeVariant::ManualBlocking] {
        println!("{}:", variant.label());
        let mut table = TextTable::new(
            std::iter::once("device".to_owned())
                .chain(blocks.iter().map(|b| format!("blk={b}")))
                .collect(),
        );
        for device in Device::paper() {
            let spec = device.spec();
            let mut cells = vec![device.label().to_owned()];
            for &block in &blocks {
                let cfg = TransposeConfig::with_block(n, block);
                let seconds = simulate_transpose(&spec, variant, cfg)
                    .expect("matrix fits")
                    .seconds;
                cells.push(fmt_seconds(seconds));
                rows.push(Row {
                    device: device.label().into(),
                    variant: variant.label().into(),
                    block,
                    seconds,
                });
            }
            table.row(cells);
        }
        println!("{}", table.render());
    }
    println!(
        "expectation: Manual_blocking degrades at blk=256 (a 512 KiB staging\n\
         buffer thrashes every modelled L1/L2) and at blk=16 (per-block\n\
         overhead); mid-size blocks win."
    );
    args.write_json(&to_json(&rows));
}
