//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index): it prints a text table with the
//! same rows/series the paper plots, and writes machine-readable JSON
//! next to it under `results/`.

#![warn(missing_docs)]

use membound_core::BlurConfig;
use std::path::PathBuf;

/// Common command-line options of the figure binaries.
///
/// * `--full` — run the paper's full workload sizes (8192²/16384²
///   matrices, the 2544×2027 image). Defaults to scaled-down workloads
///   that finish in seconds while preserving every qualitative effect
///   (all working sets still exceed every modelled cache).
/// * `--json <path>` — where to write the JSON rows (defaults to
///   `results/<name>.json`).
#[derive(Debug, Clone)]
pub struct Args {
    /// Run the paper's full workload sizes.
    pub full: bool,
    /// Output path for JSON rows.
    pub json_path: PathBuf,
}

impl Args {
    /// Parse from `std::env::args`, with `name` naming the default JSON
    /// output file.
    ///
    /// # Panics
    ///
    /// Panics on an unknown flag (with a usage message).
    #[must_use]
    pub fn parse(name: &str) -> Self {
        let mut full = false;
        let mut json_path = PathBuf::from(format!("results/{name}.json"));
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => full = true,
                "--json" => {
                    json_path = PathBuf::from(
                        args.next().expect("--json requires a path argument"),
                    );
                }
                "--help" | "-h" => {
                    println!("usage: {name} [--full] [--json <path>]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; usage: {name} [--full] [--json <path>]"),
            }
        }
        Self { full, json_path }
    }

    /// The two matrix sizes of Fig. 2/3: the paper's 8192/16384 under
    /// `--full`, otherwise 2048/4096 (both far beyond every modelled
    /// cache, so the ladder shapes are preserved).
    #[must_use]
    pub fn transpose_sizes(&self) -> (usize, usize) {
        if self.full {
            (8192, 16384)
        } else {
            (2048, 4096)
        }
    }

    /// The blur workload of Fig. 6/7: the paper's 2544×2027 image under
    /// `--full`, otherwise the same aspect at half resolution.
    #[must_use]
    pub fn blur_config(&self) -> BlurConfig {
        if self.full {
            BlurConfig::paper()
        } else {
            BlurConfig::small(1013, 1272)
        }
    }

    /// Write JSON rows (creating the parent directory), and report where.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_json(&self, json: &str) {
        if let Some(dir) = self.json_path.parent() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
        std::fs::write(&self.json_path, json).expect("write JSON results");
        println!("\n[json rows written to {}]", self.json_path.display());
    }
}

/// The workload-scale note printed at the top of every figure.
#[must_use]
pub fn scale_banner(full: bool) -> &'static str {
    if full {
        "workload: paper-scale (--full)"
    } else {
        "workload: scaled-down default (pass --full for paper-scale sizes)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_are_scaled_down() {
        let args = Args {
            full: false,
            json_path: PathBuf::from("x.json"),
        };
        assert_eq!(args.transpose_sizes(), (2048, 4096));
        assert_eq!(args.blur_config().width, 1272);
    }

    #[test]
    fn full_sizes_match_the_paper() {
        let args = Args {
            full: true,
            json_path: PathBuf::from("x.json"),
        };
        assert_eq!(args.transpose_sizes(), (8192, 16384));
        let cfg = args.blur_config();
        assert_eq!((cfg.height, cfg.width), (2027, 2544));
    }

    #[test]
    fn banners_differ() {
        assert_ne!(scale_banner(true), scale_banner(false));
    }
}
