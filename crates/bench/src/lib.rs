//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index): it prints a text table with the
//! same rows/series the paper plots, and writes machine-readable JSON
//! next to it under `results/`. The figure binaries additionally execute
//! their experiment matrices through `membound_core::runner::Engine` and
//! write a versioned JSONL run log (`membound_core::telemetry`).

#![warn(missing_docs)]

use membound_core::cache::ResultCache;
use membound_core::runner::{resolve_jobs, Engine, ExperimentMatrix, RunOptions, RunResults};
use membound_core::telemetry::parse_partial_run_log;
use membound_core::BlurConfig;
use membound_parallel::Failpoint;
use membound_sim::Device;
use std::path::PathBuf;

/// Common command-line options of the figure binaries.
///
/// * `--full` — run the paper's full workload sizes (8192²/16384²
///   matrices, the 2544×2027 image). Defaults to scaled-down workloads
///   that finish in seconds while preserving every qualitative effect
///   (all working sets still exceed every modelled cache).
/// * `--json <path>` — where to write the JSON rows (defaults to
///   `results/<name>.json`).
/// * `--jobs <N>` — worker threads for the experiment engine (defaults
///   to `MEMBOUND_JOBS`, then the host's core count). Any job count
///   produces identical simulated results; only wall time changes.
/// * `--device <label>` — restrict the device axis to one device
///   (label or a case-insensitive prefix, e.g. `visionfive`).
/// * `--run-log <path>` — where to write the JSONL telemetry run log
///   (defaults to `results/<name>.jsonl`). The log is *streamed*: each
///   cell's line is appended and synced as the cell finishes, so a
///   killed run leaves a valid truncated log.
/// * `--resume <run-log>` — restore finished cells from a (possibly
///   truncated) run log of the same figure and re-simulate only the
///   missing ones. The resumed run's digest-bearing fields are
///   byte-identical to an uninterrupted run's.
/// * `--retries <N>` — re-run a panicking cell up to N times before
///   recording it as `failed` (default 0: a panic is recorded directly).
/// * `--cell-deadline <seconds>` — discard any cell attempt that
///   finishes past this wall-clock budget and record the cell as
///   `timed_out` (checked at attempt boundaries).
/// * `--cache-dir <dir>` — persistent content-addressed result cache
///   (DESIGN.md §12; the `MEMBOUND_CACHE_DIR` environment variable is
///   the fallback): cells whose configuration was simulated before are
///   restored instead of re-simulated, byte-identically in every
///   digest-bearing field; fresh results are inserted for next time.
#[derive(Debug, Clone)]
pub struct Args {
    /// Run the paper's full workload sizes.
    pub full: bool,
    /// Output path for JSON rows.
    pub json_path: PathBuf,
    /// Explicit `--jobs` value, if given.
    pub jobs: Option<u32>,
    /// Device filter, if given.
    pub device_filter: Option<String>,
    /// Output path for the JSONL run log.
    pub run_log_path: PathBuf,
    /// Partial run log to resume from, if given.
    pub resume: Option<PathBuf>,
    /// Per-cell retry budget for panicking cells.
    pub retries: u32,
    /// Per-cell wall-clock deadline in seconds, if given.
    pub cell_deadline: Option<f64>,
    /// Result-cache directory, if given (`--cache-dir`, else the
    /// `MEMBOUND_CACHE_DIR` environment variable).
    pub cache_dir: Option<PathBuf>,
}

impl Args {
    /// Parse from `std::env::args`, with `name` naming the default JSON
    /// output file.
    ///
    /// # Panics
    ///
    /// Panics on an unknown flag (with a usage message).
    #[must_use]
    pub fn parse(name: &str) -> Self {
        let usage = format!(
            "usage: {name} [--full] [--json <path>] [--jobs <N>] [--device <label>] \
             [--run-log <path>] [--resume <run-log>] [--retries <N>] \
             [--cell-deadline <seconds>] [--cache-dir <dir>]"
        );
        let mut full = false;
        let mut json_path = PathBuf::from(format!("results/{name}.json"));
        let mut jobs = None;
        let mut device_filter = None;
        let mut run_log_path = PathBuf::from(format!("results/{name}.jsonl"));
        let mut resume = None;
        let mut retries = 0;
        let mut cell_deadline = None;
        let mut cache_dir = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => full = true,
                "--json" => {
                    json_path =
                        PathBuf::from(args.next().expect("--json requires a path argument"));
                }
                "--jobs" => {
                    let v = args.next().expect("--jobs requires a thread count");
                    jobs = Some(v.parse().unwrap_or_else(|_| {
                        panic!("--jobs requires a positive integer, got {v:?}")
                    }));
                }
                "--device" => {
                    device_filter = Some(args.next().expect("--device requires a device label"));
                }
                "--run-log" => {
                    run_log_path =
                        PathBuf::from(args.next().expect("--run-log requires a path argument"));
                }
                "--resume" => {
                    resume = Some(PathBuf::from(
                        args.next()
                            .expect("--resume requires the path of a partial run log"),
                    ));
                }
                "--retries" => {
                    let v = args.next().expect("--retries requires a count");
                    retries = v.parse().unwrap_or_else(|_| {
                        panic!("--retries requires a non-negative integer, got {v:?}")
                    });
                }
                "--cell-deadline" => {
                    let v = args.next().expect("--cell-deadline requires seconds");
                    let seconds: f64 = v
                        .parse()
                        .unwrap_or_else(|_| panic!("--cell-deadline requires seconds, got {v:?}"));
                    assert!(
                        seconds > 0.0,
                        "--cell-deadline requires positive seconds, got {v:?}"
                    );
                    cell_deadline = Some(seconds);
                }
                "--cache-dir" => {
                    cache_dir = Some(PathBuf::from(
                        args.next().expect("--cache-dir requires a directory"),
                    ));
                }
                "--help" | "-h" => {
                    println!("{usage}");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; {usage}"),
            }
        }
        Self {
            full,
            json_path,
            jobs,
            device_filter,
            run_log_path,
            resume,
            retries,
            cell_deadline,
            cache_dir,
        }
    }

    /// The result cache these options select, opened at `--cache-dir`
    /// or the `MEMBOUND_CACHE_DIR` environment variable (the flag
    /// wins); `None` when neither is set.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be opened as a cache (e.g. its
    /// index file belongs to something else).
    #[must_use]
    pub fn cache(&self) -> Option<ResultCache> {
        let dir = self.cache_dir.clone().or_else(|| {
            std::env::var_os("MEMBOUND_CACHE_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        })?;
        Some(
            ResultCache::open(&dir)
                .unwrap_or_else(|e| panic!("--cache-dir {}: {e}", dir.display())),
        )
    }

    /// The experiment engine these options select: `--jobs`, else
    /// `MEMBOUND_JOBS`, else the host core count.
    #[must_use]
    pub fn engine(&self) -> Engine {
        Engine::new(resolve_jobs(self.jobs))
    }

    /// Execute `matrix` under this invocation's fault-tolerance policy:
    /// streaming telemetry to the `--run-log` path, `--resume` /
    /// `--retries` / `--cell-deadline`, and any `MEMBOUND_FAILPOINT`
    /// fault injection.
    ///
    /// # Panics
    ///
    /// Panics (with the underlying message) when the `--resume` log
    /// cannot be read, is corrupt, or does not describe `matrix`, and on
    /// a malformed `MEMBOUND_FAILPOINT` spec.
    #[must_use]
    pub fn run_matrix(&self, engine: &Engine, matrix: &ExperimentMatrix) -> RunResults {
        let resume = self.resume.as_ref().map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("--resume {}: {e}", path.display()));
            let partial = parse_partial_run_log(&text)
                .unwrap_or_else(|e| panic!("--resume {}: {e}", path.display()));
            println!(
                "[resuming from {}: {} of {} cell records present{}]",
                path.display(),
                partial.records.len(),
                partial.header.cells,
                if partial.truncated_tail {
                    ", torn final line dropped"
                } else {
                    ""
                }
            );
            partial
        });
        let cache = self.cache();
        let options = RunOptions {
            resume,
            retries: self.retries,
            cell_deadline: self.cell_deadline,
            stream_log: Some(self.run_log_path.clone()),
            failpoint: Failpoint::from_env(),
            cache,
        };
        let results = engine
            .run_with(matrix, &options)
            .unwrap_or_else(|e| panic!("{e}"));
        if results.restored > 0 {
            println!(
                "[restored {} cells from the resume log; re-simulated {}]",
                results.restored,
                results.cells.len() as u64 - results.restored
            );
        }
        if let Some(cache) = &options.cache {
            let misses = results.cells.len() as u64 - results.cached - results.restored;
            println!(
                "[result cache: hits={} misses={} at {}]",
                results.cached,
                misses,
                cache.dir().display()
            );
        }
        results
    }

    /// The devices the run covers: the four paper boards (the canonical
    /// figure digests are pinned to that sweep), or the set picked by
    /// `--device` via [`Device::select`] — matched case-insensitively
    /// as a substring of the device label or preset name (`visionfive`
    /// selects the StarFive VisionFive), with commas for an intentional
    /// multi-select (`--device mango,sg2044`).
    ///
    /// # Panics
    ///
    /// Panics when the filter matches no device or is ambiguous,
    /// listing the candidates.
    #[must_use]
    pub fn devices(&self) -> Vec<Device> {
        let Some(filter) = &self.device_filter else {
            return Device::paper().to_vec();
        };
        Device::select(filter).unwrap_or_else(|e| panic!("--device: {e}"))
    }

    /// The two matrix sizes of Fig. 2/3: the paper's 8192/16384 under
    /// `--full`, otherwise 2048/4096 (both far beyond every modelled
    /// cache, so the ladder shapes are preserved).
    #[must_use]
    pub fn transpose_sizes(&self) -> (usize, usize) {
        if self.full {
            (8192, 16384)
        } else {
            (2048, 4096)
        }
    }

    /// The blur workload of Fig. 6/7: the paper's 2544×2027 image under
    /// `--full`, otherwise the same aspect at half resolution.
    #[must_use]
    pub fn blur_config(&self) -> BlurConfig {
        if self.full {
            BlurConfig::paper()
        } else {
            BlurConfig::small(1013, 1272)
        }
    }

    /// Write JSON rows (creating the parent directory), and report where.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_json(&self, json: &str) {
        if let Some(dir) = self.json_path.parent() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
        std::fs::write(&self.json_path, json).expect("write JSON results");
        println!("\n[json rows written to {}]", self.json_path.display());
    }

    /// Write an engine run's JSONL telemetry log, and report where.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_run_log(&self, results: &membound_core::runner::RunResults) {
        results
            .write_run_log(&self.run_log_path)
            .expect("write run log");
        println!(
            "[run log ({} cells, jobs={}, digest {}) written to {}]",
            results.cells.len(),
            results.jobs,
            results.combined_digest(),
            self.run_log_path.display()
        );
    }
}

/// The workload-scale note printed at the top of every figure.
#[must_use]
pub fn scale_banner(full: bool) -> &'static str {
    if full {
        "workload: paper-scale (--full)"
    } else {
        "workload: scaled-down default (pass --full for paper-scale sizes)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(full: bool) -> Args {
        Args {
            full,
            json_path: PathBuf::from("x.json"),
            jobs: None,
            device_filter: None,
            run_log_path: PathBuf::from("x.jsonl"),
            resume: None,
            retries: 0,
            cell_deadline: None,
            cache_dir: None,
        }
    }

    #[test]
    fn default_sizes_are_scaled_down() {
        let a = args(false);
        assert_eq!(a.transpose_sizes(), (2048, 4096));
        assert_eq!(a.blur_config().width, 1272);
    }

    #[test]
    fn full_sizes_match_the_paper() {
        let a = args(true);
        assert_eq!(a.transpose_sizes(), (8192, 16384));
        let cfg = a.blur_config();
        assert_eq!((cfg.height, cfg.width), (2027, 2544));
    }

    #[test]
    fn banners_differ() {
        assert_ne!(scale_banner(true), scale_banner(false));
    }

    #[test]
    fn device_filter_selects_by_loose_substring() {
        let mut a = args(false);
        // No filter: the four paper boards, never the what-if presets.
        assert_eq!(a.devices(), Device::paper().to_vec());
        a.device_filter = Some("visionfive".into());
        let picked = a.devices();
        assert_eq!(picked, vec![Device::StarFiveVisionFive]);
    }

    #[test]
    fn device_filter_exact_set_multi_selects() {
        let mut a = args(false);
        a.device_filter = Some("mango,sg2044".into());
        assert_eq!(
            a.devices(),
            vec![Device::MangoPiMqPro, Device::SophonSG2044]
        );
    }

    #[test]
    #[should_panic(expected = "no device matches")]
    fn unknown_device_filter_panics() {
        let mut a = args(false);
        a.device_filter = Some("cray-1".into());
        let _ = a.devices();
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn ambiguous_device_filter_panics() {
        let mut a = args(false);
        // "pi" is a substring of both Mango Pi MQ-Pro and Raspberry
        // Pi 4 — silently sweeping both used to corrupt single-device
        // figure runs.
        a.device_filter = Some("pi".into());
        let _ = a.devices();
    }

    #[test]
    fn engine_respects_explicit_jobs() {
        let mut a = args(false);
        a.jobs = Some(3);
        assert_eq!(a.engine().jobs(), 3);
    }
}
