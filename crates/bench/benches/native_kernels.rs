//! Criterion micro-benchmarks of the *native* kernel ladders on the host
//! machine — the NATIVE experiment of DESIGN.md: the paper's methodology
//! applied to the one machine we physically have.
//!
//! Run with `cargo bench -p membound-bench --bench native_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use membound_core::{
    blur_native, run_native_stream, transpose_native, BlurConfig, BlurVariant, SquareMatrix,
    StreamOp, TransposeConfig, TransposeVariant,
};
use membound_image::generate;
use membound_parallel::Pool;

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_native");
    let elements = 1 << 21; // 16 MiB per array: beyond typical L2
    group.throughput(Throughput::Bytes(
        StreamOp::Triad.nominal_bytes(elements as u64),
    ));
    let pool = Pool::host();
    for op in StreamOp::all() {
        group.bench_with_input(BenchmarkId::from_parameter(op.label()), &op, |b, &op| {
            b.iter(|| run_native_stream(op, elements, 1, &pool));
        });
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose_native_1024");
    let cfg = TransposeConfig::new(1024);
    group.throughput(Throughput::Bytes(cfg.nominal_bytes()));
    group.sample_size(20);
    let pool = Pool::host();
    for variant in TransposeVariant::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                let mut m = SquareMatrix::indexed(cfg.n);
                b.iter(|| transpose_native(&mut m, variant, cfg, &pool));
            },
        );
    }
    group.finish();
}

fn bench_transpose_block_sizes(c: &mut Criterion) {
    // The DESIGN.md block-size ablation, natively: how sensitive is
    // Manual_blocking to its block parameter on the host?
    let mut group = c.benchmark_group("transpose_native_block_sweep");
    group.sample_size(20);
    let pool = Pool::host();
    for block in [16usize, 32, 64, 128] {
        let cfg = TransposeConfig::with_block(1024, block);
        group.bench_with_input(BenchmarkId::from_parameter(block), &cfg, |b, &cfg| {
            let mut m = SquareMatrix::indexed(cfg.n);
            b.iter(|| transpose_native(&mut m, TransposeVariant::ManualBlocking, cfg, &pool));
        });
    }
    group.finish();
}

fn bench_blur(c: &mut Criterion) {
    let mut group = c.benchmark_group("blur_native_317x397");
    let cfg = BlurConfig::small(317, 397);
    group.throughput(Throughput::Bytes(cfg.nominal_bytes()));
    group.sample_size(10);
    let pool = Pool::host();
    let src = generate::test_pattern(cfg.height, cfg.width, cfg.channels);
    for variant in BlurVariant::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| blur_native(&src, variant, &cfg, &pool));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stream,
    bench_transpose,
    bench_transpose_block_sizes,
    bench_blur
);
criterion_main!(benches);
