//! Criterion benchmarks of the *simulator itself*: reference-replay
//! throughput per device model, and end-to-end simulated-kernel runtimes
//! at a reduced scale. These guard against performance regressions in the
//! cache/TLB/prefetcher pipeline (the figure binaries replay hundreds of
//! millions of probes, so simulator speed is a feature).
//!
//! Run with `cargo bench -p membound-bench --bench simulated_devices`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use membound_core::experiment::{simulate_blur, simulate_transpose};
use membound_core::{BlurConfig, BlurVariant, TransposeConfig, TransposeVariant};
use membound_sim::{Device, Machine};
use membound_trace::TraceSink;

/// Replay a fixed streaming+strided probe mix through one core.
fn replay_mix(machine: &Machine, probes: u64) {
    machine.simulate(1, |_tid, sink| {
        for i in 0..probes / 2 {
            sink.load(i * 64, 64); // sequential stream
            sink.load((i * 8192) % (1 << 30), 8); // strided walk
        }
    });
}

fn bench_replay_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_replay_throughput");
    let probes = 200_000u64;
    group.throughput(Throughput::Elements(probes));
    for device in Device::all() {
        let machine = Machine::new(device.spec());
        group.bench_with_input(
            BenchmarkId::from_parameter(device.label()),
            &machine,
            |b, machine| b.iter(|| replay_mix(machine, probes)),
        );
    }
    group.finish();
}

fn bench_simulated_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_transpose_512");
    group.sample_size(10);
    let cfg = TransposeConfig::new(512);
    for device in [Device::MangoPiMqPro, Device::IntelXeon4310T] {
        for variant in [TransposeVariant::Naive, TransposeVariant::Dynamic] {
            let id = format!("{}/{}", device.label(), variant.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                let spec = device.spec();
                b.iter(|| simulate_transpose(&spec, variant, cfg));
            });
        }
    }
    group.finish();
}

fn bench_simulated_blur(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_blur_127x159");
    group.sample_size(10);
    let cfg = BlurConfig::small(127, 159);
    for device in [Device::StarFiveVisionFive, Device::RaspberryPi4] {
        for variant in [BlurVariant::Naive, BlurVariant::Memory] {
            let id = format!("{}/{}", device.label(), variant.label());
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                let spec = device.spec();
                b.iter(|| simulate_blur(&spec, variant, cfg));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_replay_throughput,
    bench_simulated_transpose,
    bench_simulated_blur
);
criterion_main!(benches);
