//! Criterion benchmarks of the simulation hot path: the repeat-line
//! short-circuit and the batched `access_range` probe loop in
//! `CorePipeline`, measured against reference machines built with
//! [`Machine::without_fastpath`]. These are the paper's actual access
//! patterns — unit-stride sweeps and same-line repeat touches — so the
//! `fast/` vs `reference/` pairs put a number on what the fast path buys.
//!
//! Run with `cargo bench -p membound-bench --bench sim_hotpath`; the CI
//! `bench-smoke` job runs the same suite in `--test` mode. The committed
//! `BENCH_sim.json` at the repo root records the wall-clock baseline the
//! CI regression gate compares against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use membound_core::experiment::simulate_transpose;
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::{Device, Machine};
use membound_trace::TraceSink;

/// Same-line repeat touches: the pattern the armed-line short-circuit
/// turns into bare counter increments.
fn replay_repeat_touch(machine: &Machine, touches: u64) {
    machine.simulate(1, |_tid, sink| {
        for i in 0..touches / 8 {
            let line = (i % 4) * 64;
            for e in 0..8 {
                sink.load(line + e * 8, 8);
            }
        }
    });
}

/// Unit-stride per-element sweep: every line is touched 8 times by
/// consecutive 8-byte references before moving on.
fn replay_unit_stride(machine: &Machine, elems: u64) {
    machine.simulate(1, |_tid, sink| {
        for i in 0..elems {
            sink.load(i * 8, 8);
        }
    });
}

/// The same sweep expressed as bulk ranges: one `access_range` call per
/// 4 KiB page, exercising the per-page translation amortization.
fn replay_ranges(machine: &Machine, bytes: u64) {
    machine.simulate(1, |_tid, sink| {
        for page in 0..bytes / 4096 {
            sink.load_range(page * 4096, 4096);
        }
    });
}

fn fast_and_reference(device: Device) -> [(&'static str, Machine); 2] {
    [
        ("fast", Machine::new(device.spec())),
        ("reference", Machine::new(device.spec()).without_fastpath()),
    ]
}

fn bench_repeat_touch(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_repeat_touch");
    let touches = 400_000u64;
    group.throughput(Throughput::Elements(touches));
    for device in [Device::MangoPiMqPro, Device::IntelXeon4310T] {
        for (mode, machine) in fast_and_reference(device) {
            let id = format!("{mode}/{}", device.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &machine, |b, machine| {
                b.iter(|| replay_repeat_touch(machine, touches));
            });
        }
    }
    group.finish();
}

fn bench_unit_stride(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_unit_stride");
    let elems = 400_000u64;
    group.throughput(Throughput::Elements(elems));
    for device in [Device::MangoPiMqPro, Device::IntelXeon4310T] {
        for (mode, machine) in fast_and_reference(device) {
            let id = format!("{mode}/{}", device.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &machine, |b, machine| {
                b.iter(|| replay_unit_stride(machine, elems));
            });
        }
    }
    group.finish();
}

/// Strided column walk expressed as `access_strided` batches: one batch
/// per column of a 512×512 doubles matrix (stride = one 4096-byte row),
/// the access pattern the transpose column side and the blur vertical
/// pass emit. The `reference/` leg dispatches each batch element by
/// element through the trait defaults.
fn replay_strided_batches(machine: &Machine, cols: u64, rows: u64) {
    machine.simulate(1, |_tid, sink| {
        for col in 0..cols {
            sink.access_strided(col * 8, (cols * 8) as i64, rows, 8, false);
        }
    });
}

/// The same walk as read-modify-write batches — the in-place transpose
/// column side (load + store per element against one armed line).
fn replay_strided_rmw(machine: &Machine, cols: u64, rows: u64) {
    machine.simulate(1, |_tid, sink| {
        for col in 0..cols {
            sink.access_strided_rmw(col * 8, (cols * 8) as i64, rows, 8);
        }
    });
}

fn bench_strided(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_strided");
    let (cols, rows) = (512u64, 512u64);
    group.throughput(Throughput::Elements(cols * rows));
    for device in [Device::MangoPiMqPro, Device::IntelXeon4310T] {
        for (mode, machine) in fast_and_reference(device) {
            let id = format!("{mode}/{}", device.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &machine, |b, machine| {
                b.iter(|| replay_strided_batches(machine, cols, rows));
            });
            let id = format!("rmw_{mode}/{}", device.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &machine, |b, machine| {
                b.iter(|| replay_strided_rmw(machine, cols, rows));
            });
        }
    }
    group.finish();
}

fn bench_range_vs_elements(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_range_sweep");
    let bytes = 8u64 << 20;
    group.throughput(Throughput::Bytes(bytes));
    for device in [Device::MangoPiMqPro, Device::IntelXeon4310T] {
        for (mode, machine) in fast_and_reference(device) {
            let id = format!("{mode}/{}", device.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &machine, |b, machine| {
                b.iter(|| replay_ranges(machine, bytes));
            });
        }
    }
    group.finish();
}

/// The fig2 hot loop at reduced scale: serial naive transpose on the
/// MangoPi preset — the cell the CI wall-time gate times at full scale.
fn bench_fig2_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_fig2_transpose_512");
    group.sample_size(10);
    let cfg = TransposeConfig::new(512);
    let spec = Device::MangoPiMqPro.spec();
    group.bench_function(BenchmarkId::from_parameter("mango/naive"), |b| {
        b.iter(|| simulate_transpose(&spec, TransposeVariant::Naive, cfg));
    });
    group.finish();
}

/// Blocked single-pass triad (the `whatif_large_n` kernel at reduced
/// scale) on the TLB-off Xeon preset: the analytic executor's headline
/// shape. `analytic/` fast-forwards the steady state after warm-up;
/// `replay/` forces full per-line replay of the identical trace, so the
/// pair puts a number on what steady-state extrapolation buys at a size
/// (2^24 elements, 128 MiB/array — the smallest size whose ~100 fold
/// chunks leave room for the w=16 warm-up the shared L3 needs) that the
/// suite can still afford to replay.
fn replay_blocked_triad(machine: &Machine, elements: u64) {
    const BLOCK: u64 = 1024;
    let stride = (elements * 8).next_power_of_two().max(1 << 20) + 65 * 64;
    let (a, b, c) = (1u64 << 41, (1 << 41) + stride, (1 << 41) + 2 * stride);
    machine.simulate(1, |_tid, sink| {
        for blk in 0..elements / BLOCK {
            let off = blk * BLOCK * 8;
            sink.load_range(b + off, BLOCK * 8);
            sink.load_range(c + off, BLOCK * 8);
            sink.store_range(a + off, BLOCK * 8);
        }
    });
}

fn bench_analytic(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_analytic");
    group.sample_size(10);
    let elements = 1u64 << 24;
    group.throughput(Throughput::Elements(elements));
    let spec = Device::IntelXeon4310T.spec().without_tlb();
    let modes = [
        ("analytic", Machine::new(spec.clone())),
        ("replay", Machine::new(spec).with_analytic(false)),
    ];
    for (mode, machine) in modes {
        let id = format!("{mode}/xeon_triad_4m");
        group.bench_with_input(BenchmarkId::from_parameter(id), &machine, |b, machine| {
            b.iter(|| replay_blocked_triad(machine, elements));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repeat_touch,
    bench_unit_stride,
    bench_strided,
    bench_range_vs_elements,
    bench_fig2_cell,
    bench_analytic
);
criterion_main!(benches);
