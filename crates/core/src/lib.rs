//! `membound-core` — the kernel suite of *"Case Study for Running
//! Memory-Bound Kernels on RISC-V CPUs"* (PACT 2023).
//!
//! Four memory-bound kernels, each as a ladder of progressively
//! optimized variants:
//!
//! * **STREAM** (§4.1) — [`StreamOp`]: Copy/Scale/Add/Triad, sized per
//!   memory level;
//! * **in-place matrix transposition** (§4.2) — [`TransposeVariant`]:
//!   Naive → Parallel → Blocking → Manual_blocking → Dynamic;
//! * **Gaussian blur** (§4.3) — [`BlurVariant`]: Naive → Unit-stride →
//!   1D_kernels → Memory → Parallel;
//! * **band-matrix `gbmv`** (the group's band-BLAS follow-up) —
//!   [`GbmvVariant`]: Naive → Blocked → Parallel.
//!
//! Every variant has two execution paths:
//!
//! 1. **native** — really runs on the host
//!    ([`transpose_native`], [`blur_native`], [`run_native_stream`]),
//!    parallelized with `membound-parallel`'s OpenMP-style pool;
//! 2. **simulated** — replayed as a memory-reference trace against the
//!    device models of `membound-sim` (the [`experiment`] module), which
//!    is how the paper's cross-device figures are regenerated without
//!    RISC-V hardware.
//!
//! The [`metrics`] module implements §3.3's measures (speedup over naïve,
//! relative memory-bandwidth utilization), and [`report`] renders the
//! figure tables.
//!
//! # Quick example
//!
//! ```
//! use membound_core::{experiment, TransposeConfig, TransposeVariant};
//! use membound_sim::Device;
//!
//! // How long does a blocked 1024x1024 transpose take on a simulated
//! // Mango Pi MQ-Pro, and how much DRAM traffic does it cause?
//! let cfg = TransposeConfig::new(1024);
//! let report = experiment::simulate_transpose(
//!     &Device::MangoPiMqPro.spec(),
//!     TransposeVariant::Blocking,
//!     cfg,
//! )
//! .unwrap();
//! assert!(report.seconds > 0.0);
//! assert!(report.dram.bytes_read >= cfg.matrix_bytes());
//! ```

#![warn(missing_docs)]

mod blur;
pub mod cache;
pub mod experiment;
mod gbmv;
mod matrix;
pub mod metrics;
pub mod report;
pub mod roofline;
pub mod runner;
mod stream;
pub mod telemetry;
mod transpose;

pub use blur::{
    blur_fused_native, blur_native, BlurConfig, BlurTrace, BlurVariant, FusedBlurTrace,
};
pub use gbmv::{gbmv_native, traced::GbmvTrace, BandMatrix, GbmvConfig, GbmvVariant};
pub use matrix::SquareMatrix;
pub use stream::{run_native as run_native_stream, NativeStreamResult, StreamOp, StreamTrace};
pub use transpose::{traced::TransposeTrace, transpose_native, TransposeConfig, TransposeVariant};
