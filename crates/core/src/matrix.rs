//! Square row-major `f64` matrices for the transposition benchmark.

use std::fmt;

/// A dense square matrix of `f64`, row-major, exactly the layout of the
/// paper's `double* mat` with `mat[i][j] = data[i * n + j]`.
///
/// # Example
///
/// ```
/// use membound_core::SquareMatrix;
///
/// let mut m = SquareMatrix::indexed(4);
/// assert_eq!(m.get(1, 2), (1 * 4 + 2) as f64);
/// m.transpose_naive();
/// assert_eq!(m.get(1, 2), (2 * 4 + 1) as f64);
/// ```
#[derive(Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl fmt::Debug for SquareMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SquareMatrix {{ n: {} }}", self.n)
    }
}

impl SquareMatrix {
    /// An `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix size must be nonzero");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The matrix with `m[i][j] = i * n + j` — every element distinct, so
    /// misplaced elements are detectable.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn indexed(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = (i * n + j) as f64;
            }
        }
        m
    }

    /// Side length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size of the backing buffer in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Set element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = v;
    }

    /// The backing row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reference transposition used as the test oracle (simple and
    /// obviously correct).
    pub fn transpose_naive(&mut self) {
        for i in 0..self.n {
            for j in i + 1..self.n {
                self.data.swap(i * self.n + j, j * self.n + i);
            }
        }
    }

    /// Whether `self` equals the transpose of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    #[must_use]
    pub fn is_transpose_of(&self, other: &SquareMatrix) -> bool {
        assert_eq!(self.n, other.n, "size mismatch");
        for i in 0..self.n {
            for j in 0..self.n {
                if self.get(i, j) != other.get(j, i) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_matrix_has_distinct_elements() {
        let m = SquareMatrix::indexed(5);
        let mut seen = std::collections::HashSet::new();
        for &v in m.as_slice() {
            assert!(seen.insert(v.to_bits()));
        }
    }

    #[test]
    fn naive_transpose_is_correct_and_involutive() {
        let orig = SquareMatrix::indexed(7);
        let mut m = orig.clone();
        m.transpose_naive();
        assert!(m.is_transpose_of(&orig));
        m.transpose_naive();
        assert_eq!(m, orig);
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = SquareMatrix::zeros(3);
        m.set(2, 1, 4.5);
        assert_eq!(m.get(2, 1), 4.5);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn size_bytes_counts_f64s() {
        assert_eq!(SquareMatrix::zeros(10).size_bytes(), 800);
    }

    #[test]
    fn one_by_one_matrix_transposes_trivially() {
        let mut m = SquareMatrix::indexed(1);
        m.transpose_naive();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        let _ = SquareMatrix::zeros(0);
    }

    #[test]
    fn debug_is_compact_even_for_large_matrices() {
        let m = SquareMatrix::zeros(64);
        assert_eq!(format!("{m:?}"), "SquareMatrix { n: 64 }");
    }
}
