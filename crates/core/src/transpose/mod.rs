//! The in-place dense matrix-transposition ladder (§4.2 of the paper).
//!
//! Five variants, each building on the previous one:
//!
//! | Variant | Paper listing | What changes |
//! |---|---|---|
//! | [`TransposeVariant::Naive`] | Listing 1 | row/column element swaps, sequential |
//! | [`TransposeVariant::Parallel`] | §4.2 "Parallelization" | outer loop across threads (static) |
//! | [`TransposeVariant::Blocking`] | Listing 2 | block traversal for cache reuse |
//! | [`TransposeVariant::ManualBlocking`] | Listing 3 | blocks staged through a local buffer |
//! | [`TransposeVariant::Dynamic`] | §4.2 "Dynamic scheduling" | manual blocking + `schedule(dynamic)` |
//!
//! Every variant exists natively (really transposes a [`SquareMatrix`] on
//! the host) and as a trace generator for the device simulator
//! ([`traced`]).

mod native;
pub mod traced;

pub use native::transpose_native;

use membound_parallel::Schedule;

/// The five §4.2 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransposeVariant {
    /// Listing 1: sequential element swaps over the upper triangle.
    Naive,
    /// The naïve loops with the outer loop statically parallelized.
    Parallel,
    /// Listing 2: block traversal, parallel over block-rows.
    Blocking,
    /// Listing 3: blocks staged through an in-cache buffer.
    ManualBlocking,
    /// Manual blocking with dynamic scheduling of block-rows.
    Dynamic,
}

impl TransposeVariant {
    /// All five variants in the paper's presentation order.
    #[must_use]
    pub fn all() -> [TransposeVariant; 5] {
        [
            TransposeVariant::Naive,
            TransposeVariant::Parallel,
            TransposeVariant::Blocking,
            TransposeVariant::ManualBlocking,
            TransposeVariant::Dynamic,
        ]
    }

    /// The paper's bar label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TransposeVariant::Naive => "Naive",
            TransposeVariant::Parallel => "Parallel",
            TransposeVariant::Blocking => "Blocking",
            TransposeVariant::ManualBlocking => "Manual_blocking",
            TransposeVariant::Dynamic => "Dynamic",
        }
    }

    /// Whether the variant uses more than one thread when available.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        !matches!(self, TransposeVariant::Naive)
    }

    /// The OpenMP-style schedule the variant uses for its parallel loop.
    #[must_use]
    pub fn schedule(self) -> Schedule {
        match self {
            TransposeVariant::Dynamic => Schedule::Dynamic(1),
            _ => Schedule::Static,
        }
    }
}

impl std::fmt::Display for TransposeVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload parameters for one transposition experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransposeConfig {
    /// Matrix side length (the paper uses 8192 and 16384).
    pub n: usize,
    /// Block side length for the blocked variants (elements).
    pub block: usize,
}

impl TransposeConfig {
    /// A configuration with the given side length and a 64-element block
    /// (64 × 64 doubles = 32 KiB per block buffer).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `block` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_block(n, 64)
    }

    /// A configuration with an explicit block size.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `block` is zero.
    #[must_use]
    pub fn with_block(n: usize, block: usize) -> Self {
        assert!(n > 0, "matrix size must be nonzero");
        assert!(block > 0, "block size must be nonzero");
        Self { n, block }
    }

    /// Matrix footprint in bytes.
    #[must_use]
    pub fn matrix_bytes(&self) -> u64 {
        (self.n * self.n * 8) as u64
    }

    /// Bytes that must move between CPU and DRAM: every element is read
    /// once and written once (the §3.3 metric's numerator).
    #[must_use]
    pub fn nominal_bytes(&self) -> u64 {
        2 * self.matrix_bytes()
    }

    /// Number of block-rows for the blocked variants.
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.n.div_ceil(self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = TransposeVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Naive",
                "Parallel",
                "Blocking",
                "Manual_blocking",
                "Dynamic"
            ]
        );
    }

    #[test]
    fn only_dynamic_uses_dynamic_schedule() {
        for v in TransposeVariant::all() {
            match v {
                TransposeVariant::Dynamic => assert_eq!(v.schedule(), Schedule::Dynamic(1)),
                _ => assert_eq!(v.schedule(), Schedule::Static),
            }
        }
    }

    #[test]
    fn naive_is_the_only_sequential_variant() {
        assert!(!TransposeVariant::Naive.is_parallel());
        assert!(TransposeVariant::Parallel.is_parallel());
        assert!(TransposeVariant::Dynamic.is_parallel());
    }

    #[test]
    fn config_accounting() {
        let cfg = TransposeConfig::new(8192);
        assert_eq!(cfg.matrix_bytes(), 512 * 1024 * 1024);
        assert_eq!(cfg.nominal_bytes(), 1024 * 1024 * 1024);
        assert_eq!(cfg.block_rows(), 128);
        let odd = TransposeConfig::with_block(100, 32);
        assert_eq!(odd.block_rows(), 4);
    }

    #[test]
    #[should_panic(expected = "block size must be nonzero")]
    fn zero_block_rejected() {
        let _ = TransposeConfig::with_block(8, 0);
    }
}
