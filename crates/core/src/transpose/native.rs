//! Host-native implementations of the five transposition variants.

use super::{TransposeConfig, TransposeVariant};
use crate::matrix::SquareMatrix;
use membound_parallel::{Pool, Schedule, SharedSlice};
use std::time::{Duration, Instant};

/// Transpose `m` in place with the given variant and thread pool,
/// returning the elapsed wall-clock time.
///
/// The `Naive` variant ignores the pool size and runs sequentially (as on
/// the single-core Mango Pi, where §4.2 notes parallel variants cannot
/// help).
///
/// # Panics
///
/// Panics if `cfg.n` does not match the matrix size.
///
/// # Example
///
/// ```
/// use membound_core::{transpose_native, SquareMatrix, TransposeConfig, TransposeVariant};
/// use membound_parallel::Pool;
///
/// let mut m = SquareMatrix::indexed(64);
/// let expected = {
///     let mut t = m.clone();
///     t.transpose_naive();
///     t
/// };
/// let cfg = TransposeConfig::with_block(64, 16);
/// transpose_native(&mut m, TransposeVariant::Dynamic, cfg, &Pool::new(2));
/// assert_eq!(m, expected);
/// ```
pub fn transpose_native(
    m: &mut SquareMatrix,
    variant: TransposeVariant,
    cfg: TransposeConfig,
    pool: &Pool,
) -> Duration {
    assert_eq!(m.n(), cfg.n, "config/matrix size mismatch");
    let start = Instant::now();
    match variant {
        TransposeVariant::Naive => naive(m),
        TransposeVariant::Parallel => parallel(m, pool),
        TransposeVariant::Blocking => blocking(m, cfg.block, pool),
        TransposeVariant::ManualBlocking => {
            manual_blocking(m, cfg.block, pool, Schedule::Static);
        }
        TransposeVariant::Dynamic => {
            manual_blocking(m, cfg.block, pool, Schedule::Dynamic(1));
        }
    }
    start.elapsed()
}

/// Listing 1 (with the swap the pseudocode implies: the paper's
/// `mat[i][j] = mat[j][i]` alone would lose the upper triangle).
fn naive(m: &mut SquareMatrix) {
    let n = m.n();
    let data = m.as_mut_slice();
    for i in 0..n {
        for j in i + 1..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// The naïve loops with the outer loop statically parallelized, as OpenMP's
/// `#pragma omp parallel for` would.
fn parallel(m: &mut SquareMatrix, pool: &Pool) {
    let n = m.n();
    let shared = SharedSlice::new(m.as_mut_slice());
    pool.parallel_for(0..n as u64, Schedule::Static, |i| {
        let i = i as usize;
        for j in i + 1..n {
            // SAFETY: thread owning row-index i touches only (i, j) and
            // (j, i) with j > i; element sets of distinct i are disjoint
            // (see membound-parallel's SharedSlice docs).
            unsafe { shared.swap(i * n + j, j * n + i) };
        }
    });
}

/// Listing 2: block traversal of the upper triangle, parallel over
/// block-rows.
fn blocking(m: &mut SquareMatrix, block: usize, pool: &Pool) {
    let n = m.n();
    let nblk = n.div_ceil(block) as u64;
    let shared = SharedSlice::new(m.as_mut_slice());
    pool.parallel_for(0..nblk, Schedule::Static, |bi| {
        let bi = bi as usize;
        let (i0, i1) = (bi * block, ((bi + 1) * block).min(n));
        for bj in bi..n.div_ceil(block) {
            let (j0, j1) = (bj * block, ((bj + 1) * block).min(n));
            for i in i0..i1 {
                let jstart = if bi == bj { (i + 1).max(j0) } else { j0 };
                for j in jstart..j1 {
                    // SAFETY: disjoint per block-row, as in `parallel`.
                    unsafe { shared.swap(i * n + j, j * n + i) };
                }
            }
        }
    });
}

/// Listing 3: stage each block through an in-cache buffer — load block
/// (bi, bj), transpose it locally, swap it with block (bj, bi), transpose
/// again, store back — so all matrix traffic is row-sequential.
fn manual_blocking(m: &mut SquareMatrix, block: usize, pool: &Pool, schedule: Schedule) {
    let n = m.n();
    let nblk = n.div_ceil(block) as u64;
    let shared = SharedSlice::new(m.as_mut_slice());
    pool.parallel_for_chunks(0..nblk, schedule, |chunk| {
        let mut buf = vec![0.0f64; block * block];
        for bi in chunk {
            let bi = bi as usize;
            let (i0, i1) = (bi * block, ((bi + 1) * block).min(n));
            let bh = i1 - i0;
            for bj in bi..n.div_ceil(block) {
                let (j0, j1) = (bj * block, ((bj + 1) * block).min(n));
                let bw = j1 - j0;
                if bi == bj {
                    // Diagonal block: transpose in place.
                    for i in i0..i1 {
                        for j in (i + 1).max(j0)..j1 {
                            // SAFETY: disjoint per block-row.
                            unsafe { shared.swap(i * n + j, j * n + i) };
                        }
                    }
                    continue;
                }
                // load_block_to_cache(bi, bj): buf[r][c] = mat[i0+r][j0+c]
                for r in 0..bh {
                    for c in 0..bw {
                        // SAFETY: reads within this thread's block pair.
                        buf[r * block + c] = unsafe { shared.read((i0 + r) * n + (j0 + c)) };
                    }
                }
                // transpose_block_in_cache(): buf now holds (bi,bj)^T laid
                // out as a bw x bh block.
                transpose_buf(&mut buf, block, bh, bw);
                // swap_block(bj, bi): exchange buf with mat block (bj, bi).
                for r in 0..bw {
                    for c in 0..bh {
                        let idx = (j0 + r) * n + (i0 + c);
                        // SAFETY: this block pair belongs to this thread.
                        let old = unsafe { shared.read(idx) };
                        unsafe { shared.write(idx, buf[r * block + c]) };
                        buf[r * block + c] = old;
                    }
                }
                // transpose_block_in_cache(): buf holds old (bj,bi); make
                // it (bj,bi)^T, a bh x bw block.
                transpose_buf(&mut buf, block, bw, bh);
                // store_block(bi, bj)
                for r in 0..bh {
                    for c in 0..bw {
                        // SAFETY: writes within this thread's block pair.
                        unsafe { shared.write((i0 + r) * n + (j0 + c), buf[r * block + c]) };
                    }
                }
            }
        }
    });
}

/// Out-of-place-style transpose of the `rows × cols` prefix of a
/// `stride × stride` scratch buffer (result is `cols × rows`).
fn transpose_buf(buf: &mut [f64], stride: usize, rows: usize, cols: usize) {
    if rows == cols {
        for r in 0..rows {
            for c in r + 1..cols {
                buf.swap(r * stride + c, c * stride + r);
            }
        }
    } else {
        // Rectangular edge blocks: go through a temporary.
        let mut tmp = vec![0.0f64; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                tmp[c * rows + r] = buf[r * stride + c];
            }
        }
        for c in 0..cols {
            for r in 0..rows {
                buf[c * stride + r] = tmp[c * rows + r];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(n: usize) -> (SquareMatrix, SquareMatrix) {
        let orig = SquareMatrix::indexed(n);
        let mut t = orig.clone();
        t.transpose_naive();
        (orig, t)
    }

    fn check(variant: TransposeVariant, n: usize, block: usize, threads: u32) {
        let (orig, expected) = reference(n);
        let mut m = orig.clone();
        let cfg = TransposeConfig::with_block(n, block);
        transpose_native(&mut m, variant, cfg, &Pool::new(threads));
        assert_eq!(
            m, expected,
            "{variant} failed for n={n} block={block} threads={threads}"
        );
    }

    #[test]
    fn all_variants_transpose_correctly() {
        for variant in TransposeVariant::all() {
            for (n, block) in [(8, 4), (16, 8), (64, 16), (100, 32)] {
                for threads in [1, 4] {
                    check(variant, n, block, threads);
                }
            }
        }
    }

    #[test]
    fn non_divisible_block_sizes_work() {
        for variant in [
            TransposeVariant::Blocking,
            TransposeVariant::ManualBlocking,
            TransposeVariant::Dynamic,
        ] {
            check(variant, 37, 8, 3);
            check(variant, 65, 64, 2);
            check(variant, 63, 64, 2); // single partial block
        }
    }

    #[test]
    fn block_larger_than_matrix_degrades_gracefully() {
        check(TransposeVariant::ManualBlocking, 10, 128, 2);
    }

    #[test]
    fn double_transpose_is_identity() {
        let (orig, _) = reference(50);
        let mut m = orig.clone();
        let cfg = TransposeConfig::with_block(50, 16);
        let pool = Pool::new(4);
        transpose_native(&mut m, TransposeVariant::Dynamic, cfg, &pool);
        transpose_native(&mut m, TransposeVariant::Blocking, cfg, &pool);
        assert_eq!(m, orig);
    }

    #[test]
    fn transpose_buf_square_and_rect() {
        let stride = 4;
        let mut buf: Vec<f64> = (0..16).map(f64::from).collect();
        transpose_buf(&mut buf, stride, 2, 3);
        // Original 2x3 prefix: [0 1 2; 4 5 6] -> 3x2: [0 4; 1 5; 2 6].
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[1], 4.0);
        assert_eq!(buf[stride], 1.0);
        assert_eq!(buf[stride + 1], 5.0);
        assert_eq!(buf[2 * stride], 2.0);
        assert_eq!(buf[2 * stride + 1], 6.0);
    }

    #[test]
    fn timing_is_reported() {
        let mut m = SquareMatrix::indexed(128);
        let cfg = TransposeConfig::new(128);
        let d = transpose_native(&mut m, TransposeVariant::Naive, cfg, &Pool::new(1));
        assert!(d.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn config_mismatch_rejected() {
        let mut m = SquareMatrix::indexed(8);
        let cfg = TransposeConfig::new(16);
        let _ = transpose_native(&mut m, TransposeVariant::Naive, cfg, &Pool::new(1));
    }
}
