//! Trace generators for the transposition variants.
//!
//! Each variant emits the cache-line-level reference stream its native
//! counterpart performs. Contiguous (row-side) accesses are emitted at
//! line granularity (one probe per 64-byte line — see
//! `membound_trace::TraceSink::load_range`); strided (column-side)
//! accesses are emitted as constant-stride batches
//! (`membound_trace::TraceSink::access_strided_rmw`, one call per run of
//! pure load+store pairs between row-line boundaries) whose per-element
//! expansion is identical to the old per-element emission. Instruction
//! issue cost is charged separately via [`membound_trace::IterCost`], so
//! probe coarsening does not distort timing.

use super::{TransposeConfig, TransposeVariant};
use membound_trace::{IterCost, TraceSink};

/// Line size assumed by probe coarsening (all four devices use 64 B).
const LINE: u64 = 64;

/// Trace generator for one transposition workload.
///
/// The harness drives it one *outer iteration range* at a time: rows for
/// the element-wise variants, block-rows for the blocked ones. Iteration
/// ranges map to simulated cores via `membound_parallel::Schedule::plan`.
#[derive(Debug, Clone, Copy)]
pub struct TransposeTrace {
    cfg: TransposeConfig,
    /// Base virtual address of the matrix.
    base: u64,
}

/// Virtual address region for per-thread block buffers (distinct from the
/// matrix and the page-table region).
const BUF_REGION: u64 = 0x6000_0000_0000;

impl TransposeTrace {
    /// A trace generator for `cfg`, placing the matrix at a fixed base
    /// address.
    #[must_use]
    pub fn new(cfg: TransposeConfig) -> Self {
        Self {
            cfg,
            base: 0x1000_0000_0000,
        }
    }

    /// The workload this generator traces.
    #[must_use]
    pub fn config(&self) -> TransposeConfig {
        self.cfg
    }

    /// Number of outer iterations of `variant`'s parallel loop.
    #[must_use]
    pub fn outer_iterations(&self, variant: TransposeVariant) -> u64 {
        match variant {
            TransposeVariant::Naive | TransposeVariant::Parallel => self.cfg.n as u64,
            _ => self.cfg.block_rows() as u64,
        }
    }

    /// Relative cost of outer iteration `i` — the triangular weight that
    /// makes static schedules imbalanced (§4.2's motivation for dynamic
    /// scheduling).
    #[must_use]
    pub fn weight(&self, variant: TransposeVariant, i: u64) -> f64 {
        let total = self.outer_iterations(variant);
        (total - i) as f64
    }

    fn addr(&self, i: u64, j: u64) -> u64 {
        self.base + (i * self.cfg.n as u64 + j) * 8
    }

    /// Emit outer iterations `lo..hi` of `variant` as simulated thread
    /// `tid` (the thread id selects the block-buffer address region for
    /// the manual variants).
    pub fn trace_outer<S: TraceSink + ?Sized>(
        &self,
        variant: TransposeVariant,
        sink: &mut S,
        tid: u32,
        lo: u64,
        hi: u64,
    ) {
        match variant {
            TransposeVariant::Naive | TransposeVariant::Parallel => {
                for i in lo..hi {
                    self.trace_row_swaps(sink, i, i + 1, self.cfg.n as u64);
                }
            }
            TransposeVariant::Blocking => {
                let nblk = self.cfg.block_rows() as u64;
                for bi in lo..hi {
                    for bj in bi..nblk {
                        self.trace_block_swaps(sink, bi, bj);
                    }
                }
            }
            TransposeVariant::ManualBlocking | TransposeVariant::Dynamic => {
                let nblk = self.cfg.block_rows() as u64;
                for bi in lo..hi {
                    for bj in bi..nblk {
                        self.trace_block_manual(sink, tid, bi, bj);
                    }
                }
            }
        }
    }

    /// Element swaps of row `i` against column `i`, for `j` in
    /// `jlo..jhi`: the column side is emitted as constant-stride
    /// load+store batches (one `access_strided_rmw` per run of pure pairs
    /// between row-line boundaries), the row side once per line.
    fn trace_row_swaps<S: TraceSink + ?Sized>(&self, sink: &mut S, i: u64, jlo: u64, jhi: u64) {
        let col_stride = self.cfg.n as u64 * 8;
        let mut last_row_line = u64::MAX;
        let mut j = jlo;
        while j < jhi {
            let row_addr = self.addr(i, j);
            let col_addr = self.addr(j, i);
            let row_line = row_addr / LINE;
            if row_line != last_row_line {
                // Row-line boundary: the row side's new line is refreshed
                // between this element's column halves, exactly as the
                // per-element loop interleaved them.
                sink.load(col_addr, 8);
                // Element-aligned 8-byte ranges never straddle a line, so
                // these emit exactly the probes `load`/`store` would while
                // letting simulating sinks take their batched-range path.
                sink.load_range(row_addr, 8);
                sink.store_range(row_addr, 8);
                last_row_line = row_line;
                sink.store(col_addr, 8);
                j += 1;
                continue;
            }
            // Pure column pairs until the row side crosses into a new
            // line: one strided batch. `row_addr` is 8-aligned, so the
            // division is exact and at least one element remains.
            let until_line_end = (LINE - row_addr % LINE) / 8;
            let run = until_line_end.min(jhi - j);
            sink.access_strided_rmw(col_addr, col_stride as i64, run, 8);
            j += run;
        }
        let iters = jhi.saturating_sub(jlo);
        sink.compute(IterCost::new(4, 0).mem(2, 2).elem_bytes(8), iters);
    }

    fn block_bounds(&self, b: u64) -> (u64, u64) {
        let n = self.cfg.n as u64;
        let blk = self.cfg.block as u64;
        (b * blk, ((b + 1) * blk).min(n))
    }

    /// Listing 2's element swaps within block pair `(bi, bj)`.
    fn trace_block_swaps<S: TraceSink + ?Sized>(&self, sink: &mut S, bi: u64, bj: u64) {
        let (i0, i1) = self.block_bounds(bi);
        let (j0, j1) = self.block_bounds(bj);
        for i in i0..i1 {
            let jstart = if bi == bj { (i + 1).max(j0) } else { j0 };
            self.trace_row_swaps(sink, i, jstart, j1);
        }
    }

    /// Listing 3's staged block exchange: all matrix traffic is emitted as
    /// row-sequential line probes; the in-cache buffer transposes are
    /// emitted as buffer sweeps (the buffer is L1-resident by design, so
    /// the sweep order is immaterial to traffic).
    fn trace_block_manual<S: TraceSink + ?Sized>(&self, sink: &mut S, tid: u32, bi: u64, bj: u64) {
        let (i0, i1) = self.block_bounds(bi);
        let (j0, j1) = self.block_bounds(bj);
        let bh = i1 - i0;
        let bw = j1 - j0;
        if bi == bj {
            self.trace_block_swaps(sink, bi, bj);
            return;
        }
        let blk = self.cfg.block as u64;
        let buf = BUF_REGION + u64::from(tid) * (1 << 24);
        let buf_row = |r: u64| buf + r * blk * 8;

        // load_block_to_cache(bi, bj)
        for r in 0..bh {
            sink.load_range(self.addr(i0 + r, j0), bw * 8);
            sink.store_range(buf_row(r), bw * 8);
        }
        // transpose_block_in_cache()
        for r in 0..bh.max(bw) {
            sink.load_range(buf_row(r), blk * 8);
            sink.store_range(buf_row(r), blk * 8);
        }
        // swap_block(bj, bi)
        for r in 0..bw {
            sink.load_range(self.addr(j0 + r, i0), bh * 8);
            sink.load_range(buf_row(r), bh * 8);
            sink.store_range(self.addr(j0 + r, i0), bh * 8);
            sink.store_range(buf_row(r), bh * 8);
        }
        // transpose_block_in_cache()
        for r in 0..bh.max(bw) {
            sink.load_range(buf_row(r), blk * 8);
            sink.store_range(buf_row(r), blk * 8);
        }
        // store_block(bi, bj)
        for r in 0..bh {
            sink.load_range(buf_row(r), bw * 8);
            sink.store_range(self.addr(i0 + r, j0), bw * 8);
        }

        // Per-element issue cost of the whole staged exchange: two block
        // copies, one swap and two in-buffer transposes.
        let elems = bh * bw;
        sink.compute(IterCost::new(6, 0).mem(4, 4).elem_bytes(8), elems);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_trace::TraceBuffer;

    fn trace_all(variant: TransposeVariant, cfg: TransposeConfig) -> TraceBuffer {
        let t = TransposeTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        t.trace_outer(variant, &mut buf, 0, 0, t.outer_iterations(variant));
        buf
    }

    /// Distinct matrix lines touched must be identical across variants:
    /// they all transpose the same matrix.
    #[test]
    fn all_variants_touch_the_same_matrix_lines() {
        let cfg = TransposeConfig::with_block(64, 16);
        let t = TransposeTrace::new(cfg);
        let matrix_end = t.base + cfg.matrix_bytes();
        let lines = |variant| -> std::collections::BTreeSet<u64> {
            trace_all(variant, cfg)
                .iter()
                .filter(|a| a.addr >= t.base && a.addr < matrix_end)
                .map(|a| a.addr / LINE)
                .collect()
        };
        let naive = lines(TransposeVariant::Naive);
        for v in TransposeVariant::all() {
            assert_eq!(lines(v), naive, "{v}");
        }
        // Every matrix line except those of untouched diagonal interiors…
        // for n=64 every row participates, so all 64*64*8/64 lines appear.
        assert_eq!(naive.len(), (64 * 64 * 8 / 64) as usize);
    }

    #[test]
    fn naive_trace_is_triangular() {
        let cfg = TransposeConfig::new(8);
        let t = TransposeTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        // Last row has no work.
        t.trace_outer(TransposeVariant::Naive, &mut buf, 0, 7, 8);
        assert!(buf.is_empty() || buf.stats().compute_iters == 0);
        buf.clear();
        // First row swaps against the whole first column.
        t.trace_outer(TransposeVariant::Naive, &mut buf, 0, 0, 1);
        assert_eq!(buf.stats().compute_iters, 7);
    }

    #[test]
    fn column_side_is_per_element_row_side_per_line() {
        let n = 64u64; // one row = 512 B = 8 lines
        let cfg = TransposeConfig::new(n as usize);
        let t = TransposeTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        t.trace_outer(TransposeVariant::Naive, &mut buf, 0, 0, 1);
        // Row 0: 63 column loads+stores, 8 row-line loads+stores.
        assert_eq!(buf.stats().loads, 63 + 8);
        assert_eq!(buf.stats().stores, 63 + 8);
    }

    #[test]
    fn manual_blocking_emits_buffer_traffic() {
        let cfg = TransposeConfig::with_block(32, 8);
        let buf = trace_all(TransposeVariant::ManualBlocking, cfg);
        let buffer_probes = buf.iter().filter(|a| a.addr >= BUF_REGION).count();
        assert!(buffer_probes > 0, "staged variant must touch its buffer");
    }

    #[test]
    fn blocking_emits_no_buffer_traffic() {
        let cfg = TransposeConfig::with_block(32, 8);
        let buf = trace_all(TransposeVariant::Blocking, cfg);
        assert!(buf.iter().all(|a| a.addr < BUF_REGION));
    }

    #[test]
    fn distinct_tids_use_distinct_buffers() {
        let cfg = TransposeConfig::with_block(32, 8);
        let t = TransposeTrace::new(cfg);
        let mut b0 = TraceBuffer::new();
        let mut b1 = TraceBuffer::new();
        t.trace_outer(TransposeVariant::ManualBlocking, &mut b0, 0, 0, 1);
        t.trace_outer(TransposeVariant::ManualBlocking, &mut b1, 1, 0, 1);
        let bufs0: std::collections::BTreeSet<u64> = b0
            .iter()
            .filter(|a| a.addr >= BUF_REGION)
            .map(|a| a.addr)
            .collect();
        let bufs1: std::collections::BTreeSet<u64> = b1
            .iter()
            .filter(|a| a.addr >= BUF_REGION)
            .map(|a| a.addr)
            .collect();
        assert!(bufs0.is_disjoint(&bufs1));
    }

    #[test]
    fn ranges_compose_to_the_whole() {
        let cfg = TransposeConfig::with_block(48, 16);
        for v in TransposeVariant::all() {
            let t = TransposeTrace::new(cfg);
            let total = t.outer_iterations(v);
            let mut whole = TraceBuffer::new();
            t.trace_outer(v, &mut whole, 0, 0, total);
            let mut parts = TraceBuffer::new();
            t.trace_outer(v, &mut parts, 0, 0, total / 2);
            t.trace_outer(v, &mut parts, 0, total / 2, total);
            assert_eq!(whole.as_slice(), parts.as_slice(), "{v}");
        }
    }

    #[test]
    fn weights_are_triangular() {
        let cfg = TransposeConfig::new(16);
        let t = TransposeTrace::new(cfg);
        assert!(t.weight(TransposeVariant::Parallel, 0) > t.weight(TransposeVariant::Parallel, 15));
    }

    #[test]
    fn compute_iters_match_swap_count() {
        // Upper triangle of n=16: 120 swaps.
        let cfg = TransposeConfig::new(16);
        for v in [TransposeVariant::Naive, TransposeVariant::Blocking] {
            let buf = trace_all(v, cfg);
            assert_eq!(buf.stats().compute_iters, 120, "{v}");
        }
    }
}
